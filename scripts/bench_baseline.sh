#!/usr/bin/env bash
# Measures the headline hot-path medians (graph build, corner-to-corner route,
# geographic-gossip tick at n ∈ {1024, 4096}, plus the tick speedup over the
# preserved pre-CSR implementation) and records them in BENCH_baseline.json —
# the repository's performance trajectory.
#
# The classic baseline section is only (re)generated when the output file does
# not exist yet; every plain invocation then APPENDS a dyn-dispatch vs
# generic-path tick measurement to the file's `dyn_dispatch` array (the
# scenario redesign's object-safe protocol trait adds a `dyn RngCore` vtable
# to the hot path; this keeps its overhead measured over time without
# overwriting history).
#
# With `--append-build`, the script instead APPENDS large-n graph-construction
# rows (n ∈ {65 536, 262 144, 1 048 576}: two-pass parallel build vs the
# preserved sequential reference) to the file's `graph_build` array — same
# never-clobber-history discipline, so the build trajectory accumulates
# alongside the tick trajectory. Expect this mode to take a few minutes: the
# largest row times several million-node builds.
#
# With `--append-tick-large`, it APPENDS overhauled-vs-pre-overhaul engine
# tick-loop medians at n ∈ {65 536, 262 144} to the `tick_loop_large` array
# (whole fixed-budget geographic-gossip runs, reports asserted identical).
# With `--append-trial`, it APPENDS whole-trial wall clock and ticks/sec for
# every member of scenarios/large_n.json to the `trial_wall_clock` array —
# expect minutes (a 262 144-node scenario runs to convergence).
# With `--append-net`, it APPENDS message-passing-scheduler vs shared-memory
# engine tick medians at n ∈ {1024, 4096} (geographic gossip on the instant
# schedule, reports asserted bit-identical) to the `net_runtime` array.
# With `--append-intra`, it APPENDS parallel-engine vs sequential-engine
# whole-loop medians at n ∈ {65 536, 262 144} (intra-trial parallelism on the
# work-stealing pool, thread count recorded per row, reports asserted
# bit-identical) to the `intra_trial` array.
# With `--append-telemetry`, it APPENDS probe-attached vs probe-absent
# whole-loop medians at n ∈ {1024, 4096} (counting probe on the engine loop,
# reports asserted bit-identical — a probe observes, never steers) to the
# `telemetry_overhead` array.
#
# `--smoke` shrinks every mode to seconds-scale for CI; it requires an
# explicit scratch output path and must never target the committed JSON.
#
# Usage: scripts/bench_baseline.sh [--append-build] [--append-tick-large]
#        [--append-trial] [--append-net] [--append-intra] [--append-telemetry]
#        [--smoke] [output.json]
#        (default output: BENCH_baseline.json)
# Force a fresh classic baseline by deleting the file first.
#
# `cargo bench -p geogossip-bench` prints the same quantities interactively
# through the criterion harness; this script uses the dedicated binary so the
# result is a single machine-readable file.
set -euo pipefail
cd "$(dirname "$0")/.."

# Note: expansions of the possibly-empty arrays use the `${arr[@]+...}`
# guard so `set -u` stays happy on bash < 4.4 (macOS ships 3.2).
MODES=()
SMOKE=()
OUT="BENCH_baseline.json"
for arg in "$@"; do
    case "$arg" in
        --append-build | --append-tick-large | --append-trial | --append-net | --append-intra | --append-telemetry) MODES+=("$arg") ;;
        --smoke) SMOKE=(--smoke) ;;
        -*)
            echo "unknown flag \`$arg\` (supported: --append-build, --append-tick-large, --append-trial, --append-net, --append-intra, --append-telemetry, --smoke)" >&2
            exit 2
            ;;
        *) OUT="$arg" ;;
    esac
done

if [ "${#MODES[@]}" -gt 0 ]; then
    for mode in "${MODES[@]}"; do
        cargo run --release -p geogossip-bench --bin bench_baseline -- "$mode" ${SMOKE[@]+"${SMOKE[@]}"} "$OUT"
    done
    exit 0
fi

if [ ! -f "$OUT" ]; then
    cargo run --release -p geogossip-bench --bin bench_baseline -- ${SMOKE[@]+"${SMOKE[@]}"} "$OUT"
fi
cargo run --release -p geogossip-bench --bin bench_baseline -- --append-dyn ${SMOKE[@]+"${SMOKE[@]}"} "$OUT"
