#!/usr/bin/env bash
# Measures the headline hot-path medians (graph build, corner-to-corner route,
# geographic-gossip tick at n ∈ {1024, 4096}, plus the tick speedup over the
# preserved pre-CSR implementation) and writes them to BENCH_baseline.json —
# the first point of the repository's performance trajectory.
#
# Usage: scripts/bench_baseline.sh [output.json]   (default BENCH_baseline.json)
#
# `cargo bench -p geogossip-bench` prints the same quantities interactively
# through the criterion harness; this script uses the dedicated binary so the
# result is a single machine-readable file.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_baseline.json}"
cargo run --release -p geogossip-bench --bin bench_baseline -- "$OUT"
