#!/usr/bin/env bash
# Measures the headline hot-path medians (graph build, corner-to-corner route,
# geographic-gossip tick at n ∈ {1024, 4096}, plus the tick speedup over the
# preserved pre-CSR implementation) and records them in BENCH_baseline.json —
# the repository's performance trajectory.
#
# The classic baseline section is only (re)generated when the output file does
# not exist yet; every invocation then APPENDS a dyn-dispatch vs generic-path
# tick measurement to the file's `dyn_dispatch` array (the scenario redesign's
# object-safe protocol trait adds a `dyn RngCore` vtable to the hot path; this
# keeps its overhead measured over time without overwriting history).
#
# Usage: scripts/bench_baseline.sh [output.json]   (default BENCH_baseline.json)
# Force a fresh classic baseline by deleting the file first.
#
# `cargo bench -p geogossip-bench` prints the same quantities interactively
# through the criterion harness; this script uses the dedicated binary so the
# result is a single machine-readable file.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_baseline.json}"
if [ ! -f "$OUT" ]; then
    cargo run --release -p geogossip-bench --bin bench_baseline -- "$OUT"
fi
cargo run --release -p geogossip-bench --bin bench_baseline -- --append-dyn "$OUT"
