#!/usr/bin/env bash
# Measures the headline hot-path medians (graph build, corner-to-corner route,
# geographic-gossip tick at n ∈ {1024, 4096}, plus the tick speedup over the
# preserved pre-CSR implementation) and records them in BENCH_baseline.json —
# the repository's performance trajectory.
#
# The classic baseline section is only (re)generated when the output file does
# not exist yet; every plain invocation then APPENDS a dyn-dispatch vs
# generic-path tick measurement to the file's `dyn_dispatch` array (the
# scenario redesign's object-safe protocol trait adds a `dyn RngCore` vtable
# to the hot path; this keeps its overhead measured over time without
# overwriting history).
#
# With `--append-build`, the script instead APPENDS large-n graph-construction
# rows (n ∈ {65 536, 262 144, 1 048 576}: two-pass parallel build vs the
# preserved sequential reference) to the file's `graph_build` array — same
# never-clobber-history discipline, so the build trajectory accumulates
# alongside the tick trajectory. Expect this mode to take a few minutes: the
# largest row times several million-node builds.
#
# Usage: scripts/bench_baseline.sh [--append-build] [output.json]
#        (default output: BENCH_baseline.json)
# Force a fresh classic baseline by deleting the file first.
#
# `cargo bench -p geogossip-bench` prints the same quantities interactively
# through the criterion harness; this script uses the dedicated binary so the
# result is a single machine-readable file.
set -euo pipefail
cd "$(dirname "$0")/.."

APPEND_BUILD=0
OUT="BENCH_baseline.json"
for arg in "$@"; do
    case "$arg" in
        --append-build) APPEND_BUILD=1 ;;
        -*)
            echo "unknown flag \`$arg\` (only --append-build is supported)" >&2
            exit 2
            ;;
        *) OUT="$arg" ;;
    esac
done

if [ "$APPEND_BUILD" -eq 1 ]; then
    cargo run --release -p geogossip-bench --bin bench_baseline -- --append-build "$OUT"
    exit 0
fi

if [ ! -f "$OUT" ]; then
    cargo run --release -p geogossip-bench --bin bench_baseline -- "$OUT"
fi
cargo run --release -p geogossip-bench --bin bench_baseline -- --append-dyn "$OUT"
