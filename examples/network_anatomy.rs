//! Anatomy of a deployment: hierarchy, routing, and leader structure.
//!
//! Walks through the building blocks the paper's protocol is assembled from:
//! the geometric random graph, the hierarchical square partition with its
//! leaders (Definition 1), greedy geographic routing between leaders, and the
//! cell-restricted flooding used by `Activate.square`. Useful for getting a
//! feel for what the protocol's control plane actually does.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example network_anatomy
//! ```

use geogossip::core::affine::Hierarchy;
use geogossip::geometry::{PartitionConfig, Point};
use geogossip::routing::flood::flood_cell;
use geogossip::routing::greedy::{route_to_node, route_to_position};
use geogossip::sim::scenario::{RadiusSpec, TopologySpec};
use geogossip::sim::SeedStream;

fn main() {
    let n = 2048;
    let seeds = SeedStream::new(5);

    // The sensor deployment, described as scenario topology data (uniform
    // placement at radius 2·sqrt(log n / n) on the plain unit square).
    let mut topology = TopologySpec::standard(n);
    topology.radius = RadiusSpec::ConnectivityConstant(2.0);
    let network = topology.build(&seeds, 0);
    let degrees = network.degree_summary();
    println!("== geometric random graph ==");
    println!(
        "n = {n}, r = {:.4} ({})",
        network.radius(),
        network.topology()
    );
    println!(
        "edges = {}, degree min/mean/max = {}/{:.1}/{}, connected = {}",
        network.edge_count(),
        degrees.min,
        degrees.mean,
        degrees.max,
        network.is_connected()
    );

    // The hierarchical partition and its leaders.
    let hierarchy = Hierarchy::build(&network, PartitionConfig::practical(n))
        .expect("standard deployment always yields a usable hierarchy");
    println!();
    println!("== hierarchical square partition ==");
    println!("levels ℓ = {}", hierarchy.levels());
    for depth in 0..hierarchy.levels() {
        let cells = hierarchy.populated_cells_at_depth(depth);
        if cells.is_empty() {
            continue;
        }
        let avg_members: f64 = cells
            .iter()
            .map(|&c| hierarchy.members(c).len() as f64)
            .sum::<f64>()
            / cells.len() as f64;
        println!(
            "depth {depth}: {} populated cells, avg population {:.1}, expected {:.1}, max occupancy deviation {:.2}",
            cells.len(),
            avg_members,
            hierarchy.expected_count(cells[0]),
            hierarchy.max_occupancy_deviation(depth)
        );
    }
    println!(
        "leader conflicts (one sensor leading two squares): {}",
        hierarchy.leader_conflicts()
    );

    // Greedy geographic routing between two far-apart leaders.
    println!();
    println!("== greedy geographic routing ==");
    let top_cells = hierarchy.populated_cells_at_depth(1);
    let a = hierarchy
        .leader(top_cells[0])
        .expect("populated cell has a leader");
    let b = hierarchy
        .leader(*top_cells.last().expect("at least two top cells"))
        .expect("populated cell has a leader");
    let route = route_to_node(&network, a, b);
    println!(
        "leader {} -> leader {}: {} hops, delivered = {} (straight-line distance {:.3})",
        a,
        b,
        route.hops,
        route.delivered,
        network.position(a).distance(network.position(b))
    );
    let corner_route = route_to_position(
        &network,
        network
            .nearest_node(Point::new(0.02, 0.02))
            .expect("non-empty network"),
        Point::new(0.98, 0.98),
    );
    println!(
        "corner-to-corner: {} hops (√(n/log n) ≈ {:.0})",
        corner_route.hops,
        (n as f64 / (n as f64).ln()).sqrt()
    );

    // Activation flooding inside one leaf square.
    println!();
    println!("== Activate.square flooding ==");
    let leaf = hierarchy.leaf_of(a);
    let members: Vec<usize> = hierarchy.members(leaf).to_vec();
    let outcome = flood_cell(
        &network,
        &members,
        hierarchy.leader(leaf).expect("leaf has a leader"),
    );
    println!(
        "leaf square of leader {}: {} members, flood reached {} of them in {} transmissions",
        a,
        members.len(),
        outcome.reached.len(),
        outcome.transmissions
    );
}
