//! Compare the averaging protocols on the same network instance.
//!
//! Reproduces, on one seeded instance, the comparison the paper makes
//! analytically (Section 1): nearest-neighbor gossip (Boyd et al.),
//! geographic gossip (Dimakis et al.), and the hierarchical affine protocol
//! of this paper (both the round-based form and the literal asynchronous
//! state machine), all described as [`ScenarioSpec`]s and executed in one
//! parallel batch. Specs sharing a seed and topology run on **identical**
//! networks and fields — only the protocol differs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compare_protocols
//! ```

use geogossip::core::registry::builtin_runner;
use geogossip::core::ProtocolError;
use geogossip::sim::field::{Field, InitialCondition};
use geogossip::sim::scenario::{reports_table, ScenarioSpec};

fn main() -> Result<(), ProtocolError> {
    let n = 512;
    let epsilon = 0.05;
    let seed = 7;

    let spike = Field::Condition(InitialCondition::Spike);
    let mut specs: Vec<ScenarioSpec> = ["pairwise", "geographic", "affine-idealized"]
        .iter()
        .map(|&protocol| {
            ScenarioSpec::standard(protocol, n, epsilon)
                .with_seed(seed)
                .with_field(spike)
        })
        .collect();
    // The literal asynchronous protocol is run to a looser target: with the
    // practical schedule its long-range exchanges are deliberately rare (that
    // is the paper's stability mechanism), so driving it to the same ε as the
    // round-based form takes far more simulated time than an example should.
    let mut machine = ScenarioSpec::standard("affine-state-machine", n, 0.2)
        .with_seed(seed)
        .with_field(spike);
    machine.stop = machine.stop.with_max_ticks(5_000_000);
    specs.push(machine);

    let reports = builtin_runner().run_all(&specs)?;
    println!("instance: n = {n}, standard radius, spike field, target ε = {epsilon}");
    println!("(state machine runs to its own ε = 0.2; see the doc comment)\n");
    println!("{}", reports_table(&reports).to_markdown());
    println!("note: the affine protocol's advantage is asymptotic (in the scaling exponent);");
    println!("      run `cargo run --release -p geogossip-bench --bin e4_scaling_exponents`");
    println!("      to see the fitted exponents across network sizes.");
    Ok(())
}
