//! Compare the three averaging protocols on the same network instance.
//!
//! Reproduces, on one seeded instance, the comparison the paper makes
//! analytically (Section 1): nearest-neighbor gossip (Boyd et al.),
//! geographic gossip (Dimakis et al.), and the hierarchical affine protocol
//! of this paper, all run to the same accuracy on the same geometric random
//! graph with the same initial measurements.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compare_protocols
//! ```

use geogossip::analysis::Table;
use geogossip::core::prelude::*;
use geogossip::geometry::sampling::sample_unit_square;
use geogossip::graph::GeometricGraph;
use geogossip::sim::{AsyncEngine, SeedStream, StopCondition};

fn main() -> Result<(), ProtocolError> {
    let n = 512;
    let epsilon = 0.05;
    let seeds = SeedStream::new(7);

    let positions = sample_unit_square(n, &mut seeds.stream("placement"));
    let network = GeometricGraph::build_at_connectivity_radius(positions, 2.0);
    let values = InitialCondition::Spike.generate(n, &mut seeds.stream("values"));
    println!(
        "instance: n = {n}, radius {:.4}, connected = {}, target ε = {epsilon}",
        network.radius(),
        network.is_connected()
    );
    println!();

    let mut table = Table::new(vec![
        "protocol",
        "converged",
        "final rel. error",
        "rounds/ticks",
        "transmissions",
        "tx per node",
    ]);

    // --- Boyd et al.: pairwise nearest-neighbor gossip. -------------------
    let mut pairwise = PairwiseGossip::new(&network, values.clone())?;
    let report = AsyncEngine::new(n).run(
        &mut pairwise,
        StopCondition::at_epsilon(epsilon).with_max_ticks(20_000_000),
        &mut seeds.stream("pairwise"),
    );
    table.add_row(vec![
        "pairwise (Boyd et al.)".into(),
        report.converged().to_string(),
        format!("{:.3}", report.final_error),
        report.ticks.to_string(),
        report.transmissions.total().to_string(),
        format!("{:.1}", report.transmissions.total() as f64 / n as f64),
    ]);

    // --- Dimakis et al.: geographic gossip. --------------------------------
    let mut geographic = GeographicGossip::new(&network, values.clone())?;
    let report = AsyncEngine::new(n).run(
        &mut geographic,
        StopCondition::at_epsilon(epsilon).with_max_ticks(20_000_000),
        &mut seeds.stream("geographic"),
    );
    table.add_row(vec![
        "geographic (Dimakis et al.)".into(),
        report.converged().to_string(),
        format!("{:.3}", report.final_error),
        report.ticks.to_string(),
        report.transmissions.total().to_string(),
        format!("{:.1}", report.transmissions.total() as f64 / n as f64),
    ]);

    // --- This paper: hierarchical affine gossip (round-based). -------------
    let mut affine =
        RoundBasedAffineGossip::new(&network, values.clone(), RoundBasedConfig::idealized(n))?;
    let report = affine.run_until(epsilon, &mut seeds.stream("affine"));
    table.add_row(vec![
        "affine hierarchy (this paper, idealised local avg)".into(),
        report.converged.to_string(),
        format!("{:.3}", report.final_error),
        report.stats.top_rounds.to_string(),
        report.transmissions.total().to_string(),
        format!("{:.1}", report.transmissions.total() as f64 / n as f64),
    ]);

    // --- This paper, faithful asynchronous state machine. ------------------
    // The literal protocol is run to a looser target: with the practical
    // schedule its long-range exchanges are deliberately rare (that is the
    // paper's stability mechanism), so driving it to the same ε as the
    // round-based form takes far more simulated time than an example should.
    let machine_epsilon = 0.2;
    let mut machine = AffineStateMachine::practical(&network, values)?;
    let report = AsyncEngine::new(n).run(
        &mut machine,
        StopCondition::at_epsilon(machine_epsilon).with_max_ticks(5_000_000),
        &mut seeds.stream("machine"),
    );
    table.add_row(vec![
        format!("affine hierarchy (state machine, practical schedule, ε = {machine_epsilon})"),
        report.converged().to_string(),
        format!("{:.3}", report.final_error),
        report.ticks.to_string(),
        report.transmissions.total().to_string(),
        format!("{:.1}", report.transmissions.total() as f64 / n as f64),
    ]);

    println!("{}", table.to_markdown());
    println!("note: the affine protocol's advantage is asymptotic (in the scaling exponent);");
    println!("      run `cargo run --release -p geogossip-bench --bin e4_scaling_exponents`");
    println!("      to see the fitted exponents across network sizes.");
    Ok(())
}
