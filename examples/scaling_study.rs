//! Small scaling study: how the cost of each protocol grows with `n` — now
//! expressed as a **sweep** through the lab instead of a hand-written
//! scenario loop.
//!
//! A lighter-weight version of experiment E4 (the full version lives in
//! `crates/bench/src/bin/e4_scaling_exponents.rs`) and of the committed
//! `scenarios/sweeps/scaling_headline.json` campaign: declare the
//! protocol × size grid as a [`SweepSpec`], run it in memory through
//! [`run_sweep`] (no checkpoint log — pass a path to get resumable
//! execution), and let the lab's aggregation fit the power law
//! `cost ≈ C·n^k` per protocol, with a 95% confidence interval around each
//! exponent. The paper predicts `k ≈ 2` for pairwise gossip, `k ≈ 1.5` for
//! geographic gossip and `k → 1` for the affine hierarchy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use geogossip::analysis::Table;
use geogossip::core::registry::builtin_runner;
use geogossip::core::ProtocolError;
use geogossip::lab::{run_sweep, SweepAggregator, SweepOptions, SweepReport};
use geogossip::sim::scenario::{ProtocolSpec, SweepSpec};

fn main() -> Result<(), ProtocolError> {
    let sweep = SweepSpec::new(
        "scaling-study",
        vec![128, 256, 512, 1024],
        vec![
            ProtocolSpec::named("pairwise"),
            ProtocolSpec::named("geographic"),
            ProtocolSpec::named("affine-idealized"),
        ],
    )
    .with_trials(3)
    .with_seed(99);

    let runner = builtin_runner();
    let outcome = run_sweep(&runner, &sweep, None, &SweepOptions::default(), |_| {})?;

    let mut aggregator = SweepAggregator::new();
    for record in &outcome.records {
        aggregator.push(record);
    }
    let report = SweepReport::new(sweep.name.clone(), sweep.cell_count(), aggregator.finish());

    // Cost ladder, one row per size (the historical table shape).
    let mut costs = Table::new(vec!["n", "pairwise tx", "geographic tx", "affine tx"]);
    for &n in &sweep.sizes {
        let mut row = vec![n.to_string()];
        for protocol in &sweep.protocols {
            let cell = report
                .aggregate
                .cells
                .iter()
                .find(|c| c.n == n && c.protocol == protocol.name)
                .expect("every grid cell ran");
            row.push(format!("{:.0}", cell.mean_transmissions));
        }
        costs.add_row(row);
    }
    println!("{}", costs.to_markdown());

    // Fitted exponents with confidence intervals, plus the paper's claims.
    let paper = [
        ("pairwise", "≈ 2"),
        ("geographic", "≈ 1.5"),
        ("affine-idealized", "1 + o(1)"),
    ];
    let mut fits = Table::new(vec![
        "protocol",
        "fitted exponent k",
        "95% CI",
        "R²",
        "paper's prediction",
    ]);
    for fit in &report.aggregate.fits {
        let prediction = paper
            .iter()
            .find(|(name, _)| *name == fit.protocol)
            .map(|(_, p)| *p)
            .unwrap_or("—");
        fits.add_row(vec![
            fit.protocol.clone(),
            format!("{:.2}", fit.detail.fit.exponent),
            format!("[{:.2}, {:.2}]", fit.interval.lower, fit.interval.upper),
            format!("{:.3}", fit.detail.fit.r_squared),
            prediction.into(),
        ]);
    }
    println!("{}", fits.to_markdown());

    for verdict in &report.aggregate.verdicts {
        println!(
            "{} {} — {}",
            if verdict.holds { "PASS" } else { "FAIL" },
            verdict.claim,
            verdict.details
        );
    }
    Ok(())
}
