//! Small scaling study: how the cost of each protocol grows with `n`.
//!
//! A lighter-weight version of experiment E4 (the full version lives in
//! `crates/bench/src/bin/e4_scaling_exponents.rs`): run every protocol on a
//! ladder of network sizes, record transmissions to reach the accuracy target,
//! and fit a power law `cost ≈ C·n^k`. The paper predicts `k ≈ 2` for pairwise
//! gossip, `k ≈ 1.5` for geographic gossip and `k → 1` for the affine
//! hierarchy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use geogossip::analysis::{fit_power_law, Table};
use geogossip::core::prelude::*;
use geogossip::geometry::sampling::sample_unit_square;
use geogossip::graph::GeometricGraph;
use geogossip::sim::{AsyncEngine, SeedStream, StopCondition};

/// The field being averaged: every sensor measures its own x-coordinate, so
/// averaging requires moving mass across the whole unit square (the regime
/// where long-range exchanges pay off; a position-independent field can be
/// averaged mostly locally and understates the gap between the protocols).
fn gradient_field(network: &GeometricGraph) -> Vec<f64> {
    network.positions().iter().map(|p| p.x).collect()
}

fn main() -> Result<(), ProtocolError> {
    let sizes = [128usize, 256, 512, 1024];
    let epsilon = 0.05;
    let seeds = SeedStream::new(99);

    let mut table = Table::new(vec!["n", "pairwise tx", "geographic tx", "affine tx"]);
    let mut pairwise_costs = Vec::new();
    let mut geographic_costs = Vec::new();
    let mut affine_costs = Vec::new();

    for &n in &sizes {
        let positions = sample_unit_square(n, &mut seeds.trial("placement", n as u64));
        // Radius just above the connectivity threshold, as the paper assumes.
        let network = GeometricGraph::build_at_connectivity_radius(positions, 1.5);
        let values = gradient_field(&network);

        let mut pairwise = PairwiseGossip::new(&network, values.clone())?;
        let pw = AsyncEngine::new(n).run(
            &mut pairwise,
            StopCondition::at_epsilon(epsilon).with_max_ticks(50_000_000),
            &mut seeds.trial("pairwise", n as u64),
        );

        let mut geographic = GeographicGossip::new(&network, values.clone())?;
        let geo = AsyncEngine::new(n).run(
            &mut geographic,
            StopCondition::at_epsilon(epsilon).with_max_ticks(50_000_000),
            &mut seeds.trial("geographic", n as u64),
        );

        let mut affine =
            RoundBasedAffineGossip::new(&network, values, RoundBasedConfig::idealized(n))?;
        let aff = affine.run_until(epsilon, &mut seeds.trial("affine", n as u64));

        pairwise_costs.push(pw.transmissions.total() as f64);
        geographic_costs.push(geo.transmissions.total() as f64);
        affine_costs.push(aff.transmissions.total() as f64);
        table.add_row(vec![
            n.to_string(),
            pw.transmissions.total().to_string(),
            geo.transmissions.total().to_string(),
            aff.transmissions.total().to_string(),
        ]);
        eprintln!("finished n = {n}");
    }

    println!("{}", table.to_markdown());

    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let mut fits = Table::new(vec![
        "protocol",
        "fitted exponent k",
        "R²",
        "paper's prediction",
    ]);
    for (name, costs, paper) in [
        ("pairwise", &pairwise_costs, "≈ 2"),
        ("geographic", &geographic_costs, "≈ 1.5"),
        ("affine hierarchy", &affine_costs, "1 + o(1)"),
    ] {
        if let Some(fit) = fit_power_law(&xs, costs) {
            fits.add_row(vec![
                name.into(),
                format!("{:.2}", fit.exponent),
                format!("{:.3}", fit.r_squared),
                paper.into(),
            ]);
        }
    }
    println!("{}", fits.to_markdown());
    Ok(())
}
