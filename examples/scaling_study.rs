//! Small scaling study: how the cost of each protocol grows with `n`.
//!
//! A lighter-weight version of experiment E4 (the full version lives in
//! `crates/bench/src/bin/e4_scaling_exponents.rs`): run every protocol on a
//! ladder of network sizes, record transmissions to reach the accuracy target,
//! and fit a power law `cost ≈ C·n^k`. The paper predicts `k ≈ 2` for pairwise
//! gossip, `k ≈ 1.5` for geographic gossip and `k → 1` for the affine
//! hierarchy.
//!
//! The whole ladder is a list of [`ScenarioSpec`]s run as one parallel batch;
//! the east–west gradient field (the scenario default) makes the protocols
//! move mass across the whole unit square, the regime where long-range
//! exchanges pay off.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use geogossip::analysis::{fit_power_law, Table};
use geogossip::core::registry::builtin_runner;
use geogossip::core::ProtocolError;
use geogossip::sim::scenario::{ScenarioReport, ScenarioSpec};

fn main() -> Result<(), ProtocolError> {
    let sizes = [128usize, 256, 512, 1024];
    let protocols = ["pairwise", "geographic", "affine-idealized"];
    let epsilon = 0.05;

    let specs: Vec<ScenarioSpec> = protocols
        .iter()
        .flat_map(|&protocol| {
            sizes
                .iter()
                .map(move |&n| ScenarioSpec::standard(protocol, n, epsilon).with_seed(99))
        })
        .collect();
    let reports = builtin_runner().run_all(&specs)?;
    let report_for =
        |p_idx: usize, n_idx: usize| -> &ScenarioReport { &reports[p_idx * sizes.len() + n_idx] };

    let mut table = Table::new(vec!["n", "pairwise tx", "geographic tx", "affine tx"]);
    for (n_idx, &n) in sizes.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (p_idx, _) in protocols.iter().enumerate() {
            row.push(format!(
                "{:.0}",
                report_for(p_idx, n_idx).summary.mean_transmissions
            ));
        }
        table.add_row(row);
    }
    println!("{}", table.to_markdown());

    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let mut fits = Table::new(vec![
        "protocol",
        "fitted exponent k",
        "R²",
        "paper's prediction",
    ]);
    for (p_idx, (name, paper)) in [
        ("pairwise", "≈ 2"),
        ("geographic", "≈ 1.5"),
        ("affine hierarchy", "1 + o(1)"),
    ]
    .iter()
    .enumerate()
    {
        let costs: Vec<f64> = (0..sizes.len())
            .map(|n_idx| report_for(p_idx, n_idx).summary.mean_transmissions)
            .collect();
        if let Some(fit) = fit_power_law(&xs, &costs) {
            fits.add_row(vec![
                (*name).into(),
                format!("{:.2}", fit.exponent),
                format!("{:.3}", fit.r_squared),
                (*paper).into(),
            ]);
        }
    }
    println!("{}", fits.to_markdown());
    Ok(())
}
