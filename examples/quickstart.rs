//! Quickstart: average a sensor field with the paper's protocol.
//!
//! Describes the whole experiment as **data** — a [`ScenarioSpec`] composing
//! a 1 024-node geometric random graph at the standard connectivity radius, a
//! spike field, and the hierarchical affine-combination protocol run until
//! the ℓ₂ error falls below 1% — and hands it to the scenario [`Runner`].
//! The same JSON printed below can be saved and replayed with
//! `cargo run --release --bin geogossip -- run spec.json`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use geogossip::core::registry::builtin_runner;
use geogossip::core::ProtocolError;
use geogossip::sim::field::{Field, InitialCondition};
use geogossip::sim::scenario::ScenarioSpec;

fn main() -> Result<(), ProtocolError> {
    // 1. The scenario, as data: n sensors uniform in the unit square at
    //    radius 1.5·sqrt(log n / n), a single-spike measurement field, the
    //    paper's protocol (round-based form, idealised local averaging), 1%
    //    accuracy target.
    let spec = ScenarioSpec::standard("affine-idealized", 1024, 0.01)
        .with_field(Field::Condition(InitialCondition::Spike))
        .with_seed(2024);
    println!("scenario spec (replayable via `geogossip run <file>`):\n");
    println!("{}\n", spec.to_json());

    // 2. Execute it.
    let report = builtin_runner().run(&spec)?;
    let trial = &report.trials[0];

    // 3. Report the cost breakdown the paper's analysis is about.
    let metric = |key: &str| trial.metric(key).unwrap_or(0.0);
    println!("protocol:             {}", report.protocol_label);
    println!("converged:            {}", trial.converged);
    println!("final relative error: {:.2e}", trial.final_error);
    println!("top-level rounds:     {}", trial.rounds);
    println!("long-range exchanges: {}", metric("long_range_exchanges"));
    println!("transmissions:        {}", trial.transmissions.total());
    println!("  routing (Far):      {}", trial.transmissions.routing());
    println!("  local (Near):       {}", trial.transmissions.local());
    println!("  control (floods):   {}", trial.transmissions.control());
    println!(
        "transmissions per sensor: {:.1}",
        trial.transmissions.total() as f64 / spec.topology.n as f64
    );
    Ok(())
}
