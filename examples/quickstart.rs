//! Quickstart: average a sensor field with the paper's protocol.
//!
//! Builds a 1 024-node geometric random graph at the standard connectivity
//! radius, gives every sensor a measurement, and runs the hierarchical
//! affine-combination protocol until the ℓ₂ error falls below 1% — printing
//! the cost breakdown the paper's analysis is about.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use geogossip::core::prelude::*;
use geogossip::geometry::sampling::sample_unit_square;
use geogossip::graph::GeometricGraph;
use geogossip::sim::SeedStream;

fn main() -> Result<(), ProtocolError> {
    let n = 1024;
    let epsilon = 0.01;
    let seeds = SeedStream::new(2024);

    // 1. Deploy the sensor network: n uniform positions, radio radius
    //    r = 2·sqrt(log n / n) (comfortably above the connectivity threshold).
    let positions = sample_unit_square(n, &mut seeds.stream("placement"));
    let network = GeometricGraph::build_at_connectivity_radius(positions, 2.0);
    println!("network: n = {n}, radius = {:.4}", network.radius());
    println!(
        "         {} edges, mean degree {:.1}, connected: {}",
        network.edge_count(),
        network.degree_summary().mean,
        network.is_connected()
    );

    // 2. Initial measurements: a single sensor observed an event (spike).
    let values = InitialCondition::Spike.generate(n, &mut seeds.stream("values"));

    // 3. Run the paper's protocol (round-based form, idealised local
    //    averaging) until the relative ℓ₂ error is below 1%.
    let mut protocol =
        RoundBasedAffineGossip::new(&network, values, RoundBasedConfig::idealized(n))?;
    println!(
        "hierarchy: {} levels, {} cells, {} leader conflicts",
        protocol.hierarchy().levels(),
        protocol.hierarchy().partition().num_cells(),
        protocol.hierarchy().leader_conflicts()
    );

    let report = protocol.run_until(epsilon, &mut seeds.stream("run"));

    // 4. Report.
    println!();
    println!("converged:            {}", report.converged);
    println!("final relative error: {:.2e}", report.final_error);
    println!("top-level rounds:     {}", report.stats.top_rounds);
    println!(
        "long-range exchanges: {}",
        report.stats.long_range_exchanges
    );
    println!("transmissions:        {}", report.transmissions.total());
    println!("  routing (Far):      {}", report.transmissions.routing());
    println!("  local (Near):       {}", report.transmissions.local());
    println!("  control (floods):   {}", report.transmissions.control());
    println!(
        "transmissions per sensor: {:.1}",
        report.transmissions.total() as f64 / n as f64
    );
    println!(
        "value at sensor 0 after averaging: {:.6} (true mean {:.6})",
        protocol.state().values()[0],
        protocol.state().mean()
    );
    Ok(())
}
