//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (RFC 8439 quarter-rounds,
//! 8 rounds) behind the same `ChaCha8Rng` name and the vendored
//! [`rand::SeedableRng`] / [`rand::RngCore`] traits. Streams are
//! deterministic, high-quality, and stable across platforms; they are not
//! guaranteed to be bit-identical to upstream `rand_chacha` (upstream applies
//! its word stream in a different order), which is irrelevant here — every
//! reproducibility contract in the workspace is defined against this vendored
//! generator.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Stream id (state words 14..16); always 0 here.
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means "refill needed".
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CHACHA_CONSTANTS[0],
            CHACHA_CONSTANTS[1],
            CHACHA_CONSTANTS[2],
            CHACHA_CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // One double round: 4 column rounds then 4 diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn floats_are_uniform_enough() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn word_stream_has_no_short_cycle() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
