//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small slice of rayon's API the workspace uses —
//! `into_par_iter()` on ranges and vectors, `map`, and order-preserving
//! `collect` — on top of `std::thread::scope`. Items are split into one
//! contiguous chunk per available core; results are reassembled in input
//! order, so `collect::<Vec<_>>()` is deterministic regardless of thread
//! scheduling (the property the bench crate's determinism tests rely on).

/// The traits users import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator: a recipe that can be executed across threads into an
/// ordered `Vec`.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;

    /// Executes the recipe, returning the results in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each element through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects into any `FromIterator` container, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run().into_iter().collect()
    }

    /// Number of elements.
    fn count(self) -> usize {
        self.run().len()
    }
}

/// A materialised sequence pending parallel execution.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = VecIter<$t>;
            fn into_par_iter(self) -> VecIter<$t> {
                VecIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(usize, u64, u32, i64, i32);

/// The `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_map_ordered(self.base.run(), &self.f)
    }
}

/// Maps `items` through `f` across threads, preserving order.
fn par_map_ordered<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    })
}

/// Returns the number of worker threads the stand-in will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_source_works() {
        let v = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = (0..0u64).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }
}
