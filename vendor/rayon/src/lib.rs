//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small slice of rayon's API the workspace uses —
//! `into_par_iter()` on ranges and vectors, `map`, and order-preserving
//! `collect` — on top of a **persistent work-stealing pool**:
//!
//! - One global pool of worker threads is spawned lazily on first use and
//!   reused for the life of the process (no per-call thread spawn).
//! - The worker count honours `RAYON_NUM_THREADS` (read once, at pool
//!   initialisation) and falls back to `std::thread::available_parallelism`.
//! - Each worker owns a deque; it pops its own work front-first and steals
//!   from the back of other workers' deques (or the shared injector) when
//!   idle. Threads that are not pool workers submit through the injector.
//! - The submitting thread *participates*: while waiting for its batch it
//!   executes queued tasks instead of blocking, so nested parallelism
//!   (e.g. a parallel engine batch inside a parallel trial map) cannot
//!   deadlock on pool capacity.
//! - [`with_max_threads`] installs a thread-local cap consulted by the map
//!   splitter: with a cap of `t` a batch is split into at most `t` tasks,
//!   so at most `t` threads ever work on it — and a cap of 1 runs inline
//!   on the caller with no pool involvement at all.
//!
//! Determinism contract (relied on by the bench crate and the simulation
//! engine's parallel path): `map` applies a pure function and `collect`
//! reassembles results in input order, so outputs are bit-identical for
//! every worker count, cap, and steal schedule. Worker panics are caught,
//! forwarded to the submitting thread, and re-raised there.
//!
//! This crate is the one place in the workspace allowed to use `unsafe`:
//! task closures borrow the submitting caller's stack frame and are
//! lifetime-erased before entering the queues. This is sound because the
//! caller blocks (helping) until the batch latch counts every task complete
//! — the borrowed frame outlives every task, even a stolen one.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// The traits users import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator: a recipe that can be executed across threads into an
/// ordered `Vec`.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;

    /// Executes the recipe, returning the results in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each element through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects into any `FromIterator` container, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run().into_iter().collect()
    }

    /// Number of elements.
    fn count(self) -> usize {
        self.run().len()
    }
}

/// A materialised sequence pending parallel execution.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = VecIter<$t>;
            fn into_par_iter(self) -> VecIter<$t> {
                VecIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(usize, u64, u32, i64, i32);

/// The `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        par_map_ordered(self.base.run(), &self.f)
    }
}

// ---------------------------------------------------------------------------
// Pool plumbing
// ---------------------------------------------------------------------------

/// A unit of queued work. The boxed closure has been lifetime-erased from the
/// submitting caller's frame to `'static`; see the module docs for why this
/// is sound (the caller waits on the batch latch before its frame unwinds).
struct Task {
    run: Box<dyn FnOnce() + Send + 'static>,
}

impl Task {
    fn execute(self) {
        (self.run)();
    }
}

/// State shared between the workers and submitting threads.
struct Shared {
    /// Queue for tasks submitted from outside the pool.
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques: the owner pops the front, thieves pop the back.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Idle workers park here (paired with the `injector` mutex). Waits use
    /// a timeout so a push-then-notify that races a worker's emptiness check
    /// costs at most one timeout period, never a lost task.
    wakeup: Condvar,
}

impl Shared {
    /// Finds one task to run: own deque first (front), then the injector,
    /// then stealing from the back of every other worker's deque.
    /// `own` is `None` for threads that are not pool workers.
    fn find_task(&self, own: Option<usize>) -> Option<Task> {
        if let Some(i) = own {
            if let Some(task) = self.locals[i].lock().unwrap().pop_front() {
                return Some(task);
            }
        }
        if let Some(task) = self.injector.lock().unwrap().pop_front() {
            return Some(task);
        }
        for (i, local) in self.locals.iter().enumerate() {
            if own == Some(i) {
                continue;
            }
            if let Some(task) = local.lock().unwrap().pop_back() {
                return Some(task);
            }
        }
        None
    }

    /// Enqueues a batch: onto the submitting worker's own deque when called
    /// from inside the pool (classic work-stealing), otherwise onto the
    /// shared injector. Wakes every parked worker.
    fn submit(&self, tasks: Vec<Task>) {
        match current_worker() {
            Some(i) => self.locals[i].lock().unwrap().extend(tasks),
            None => self.injector.lock().unwrap().extend(tasks),
        }
        self.wakeup.notify_all();
    }
}

/// Counts outstanding tasks of one submitted batch; the submitting thread
/// helps execute pool work until the count reaches zero.
struct Latch {
    remaining: AtomicUsize,
    mutex: Mutex<()>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(count),
            mutex: Mutex::new(()),
            done: Condvar::new(),
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.mutex.lock().unwrap();
            self.done.notify_all();
        }
    }
}

/// The global pool: worker threads plus the shared queues.
struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

impl Pool {
    fn start(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            wakeup: Condvar::new(),
        });
        for index in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("geogossip-pool-{index}"))
                .spawn(move || worker_loop(shared, index))
                .expect("failed to spawn pool worker");
        }
        Pool { shared, workers }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    loop {
        if let Some(task) = shared.find_task(Some(index)) {
            task.execute();
        } else {
            let guard = shared.injector.lock().unwrap();
            if guard.is_empty() {
                let _ = shared.wakeup.wait_timeout(guard, Duration::from_millis(50));
            }
        }
    }
}

thread_local! {
    /// Index of the pool worker running on this thread (`None` elsewhere).
    static WORKER_INDEX: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
    /// Thread-local cap installed by [`with_max_threads`].
    static THREAD_CAP: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

fn current_worker() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn global_pool() -> &'static Pool {
    POOL.get_or_init(|| Pool::start(configured_threads()))
}

/// Worker count for the global pool: `RAYON_NUM_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
fn configured_threads() -> usize {
    let fallback = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    parse_thread_env(std::env::var("RAYON_NUM_THREADS").ok().as_deref(), fallback)
}

/// Pure parsing rule for `RAYON_NUM_THREADS`: positive integers are taken
/// verbatim; zero, garbage, and absence fall back.
fn parse_thread_env(value: Option<&str>, fallback: usize) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => fallback,
    }
}

/// Runs `f` with parallel maps on this thread capped at `limit` concurrent
/// tasks (a limit of 1 executes inline with no pool involvement). The cap is
/// thread-local and restored on exit, so nested caps compose: the innermost
/// one wins for work submitted inside it.
pub fn with_max_threads<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    let limit = limit.max(1);
    let previous = THREAD_CAP.with(|c| c.replace(Some(limit)));
    let result = f();
    THREAD_CAP.with(|c| c.set(previous));
    result
}

fn effective_threads() -> usize {
    let cap = THREAD_CAP.with(|c| c.get()).unwrap_or(usize::MAX);
    current_num_threads().min(cap)
}

/// Maps `items` through `f` across the pool, preserving input order.
///
/// The batch is split into at most `effective_threads()` contiguous chunks;
/// each chunk is one task, so a [`with_max_threads`] cap of `t` structurally
/// bounds the batch's concurrency at `t`. Results are written into per-chunk
/// slots and reassembled in input order, making the output independent of
/// which thread ran which chunk.
fn par_map_ordered<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let len = items.len();
    let threads = effective_threads();
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let pool = global_pool();
    let chunk_count = threads.min(len);
    let chunk_len = len.div_ceil(chunk_count);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(chunk_count);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }

    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
    let latch = Arc::new(Latch::new(chunks.len()));
    let panic_slot: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>> = Arc::new(Mutex::new(None));

    let tasks: Vec<Task> = chunks
        .into_iter()
        .zip(slots.iter())
        .map(|(chunk, slot)| {
            let latch = Arc::clone(&latch);
            let panic_slot = Arc::clone(&panic_slot);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    chunk.into_iter().map(f).collect::<Vec<R>>()
                }));
                match outcome {
                    Ok(results) => *slot.lock().unwrap() = Some(results),
                    Err(payload) => {
                        let mut first = panic_slot.lock().unwrap();
                        if first.is_none() {
                            *first = Some(payload);
                        }
                    }
                }
                latch.complete_one();
            });
            // SAFETY: the closure borrows `f` and `slots` from this frame;
            // `help_until` below does not return until the latch has counted
            // every task, so the borrows outlive every execution of the job
            // — including on worker threads — before this frame unwinds.
            let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
            Task { run: job }
        })
        .collect();

    pool.shared.submit(tasks);
    help_until_done(pool, &latch);

    if let Some(payload) = panic_slot.lock().unwrap().take() {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .flat_map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("pool chunk finished without a result")
        })
        .collect()
}

/// The submitting thread's wait loop: run queued tasks until the batch latch
/// is done, parking briefly only when the queues are empty (its own tasks may
/// still be running on workers).
fn help_until_done(pool: &Pool, latch: &Latch) {
    let own = current_worker();
    while !latch.is_done() {
        if let Some(task) = pool.shared.find_task(own) {
            task.execute();
        } else {
            let guard = latch.mutex.lock().unwrap();
            if !latch.is_done() {
                let _ = latch.done.wait_timeout(guard, Duration::from_millis(1));
            }
        }
    }
}

/// Returns the global pool's worker count: `RAYON_NUM_THREADS` when set,
/// otherwise the machine's available parallelism. Initialises the pool on
/// first call so the reported count is the actual worker count.
pub fn current_num_threads() -> usize {
    global_pool().workers
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{parse_thread_env, with_max_threads};

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_source_works() {
        let v = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = (0..0u64).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Repeated batches must not exhaust anything (the old stand-in
        // spawned fresh threads every call; the pool spawns once).
        for round in 0..200u64 {
            let out: Vec<u64> = (0..64u64).into_par_iter().map(|i| i + round).collect();
            assert_eq!(out[0], round);
            assert_eq!(out[63], 63 + round);
        }
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let out: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..100usize).into_par_iter().map(|j| i * j).collect();
                inner.iter().sum()
            })
            .collect();
        let expected: Vec<usize> = (0..8).map(|i| (0..100).map(|j| i * j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn max_threads_cap_preserves_results() {
        let unlimited: Vec<u64> = (0..500u64).into_par_iter().map(|i| i * i).collect();
        for cap in [1, 2, 7] {
            let capped: Vec<u64> =
                with_max_threads(cap, || (0..500u64).into_par_iter().map(|i| i * i).collect());
            assert_eq!(capped, unlimited, "cap {cap} changed results");
        }
    }

    #[test]
    fn max_threads_cap_is_restored_after_use() {
        with_max_threads(1, || {
            let _: Vec<u64> = (0..10u64).into_par_iter().map(|i| i).collect();
        });
        // Outside the closure the cap is gone; a large batch still works.
        let out: Vec<u64> = (0..1000u64).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u64> = (0..100u64)
                .into_par_iter()
                .map(|i| {
                    if i == 57 {
                        panic!("boom at {i}");
                    }
                    i
                })
                .collect();
        });
        assert!(result.is_err(), "panic inside a task must reach the caller");
        // The pool must remain usable afterwards.
        let out: Vec<u64> = (0..100u64).into_par_iter().map(|i| i).collect();
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn thread_env_parsing_rules() {
        assert_eq!(parse_thread_env(Some("4"), 8), 4);
        assert_eq!(parse_thread_env(Some(" 2 "), 8), 2);
        assert_eq!(parse_thread_env(Some("0"), 8), 8);
        assert_eq!(parse_thread_env(Some("nope"), 8), 8);
        assert_eq!(parse_thread_env(None, 8), 8);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
