//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for API
//! compatibility, but nothing in the build environment actually serializes
//! through serde (JSON output is hand-rendered in `geogossip-analysis`).
//! These derive macros therefore expand to nothing: the types stay derivable,
//! no impls are generated, and no code depends on the missing impls.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
