//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, API-compatible subset of `rand` 0.8: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits and the uniform sampling paths the simulation
//! actually exercises (`gen::<f64>()`, `gen::<u64>()`, `gen_range(a..b)` on
//! integers, `gen_bool`). Distributions follow the same constructions as
//! upstream (53-bit mantissa floats, Lemire rejection for integer ranges), so
//! streams are uniform and unbiased, but the exact bit-streams are **not**
//! guaranteed to match upstream `rand` — all reproducibility guarantees in
//! this workspace are relative to this vendored implementation.

pub mod distributions;

pub use distributions::{Distribution, Standard};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open integer ranges and `f64`
    /// ranges are supported).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random generator that can be constructed from a fixed seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// exactly once per seed word (the same construction upstream uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used only to expand `u64` seeds into full seed arrays.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_range_and_hits_everything() {
        let mut rng = Counter(2);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.gen_range(0..7usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = Counter(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(4);
        let _ = rng.gen_range(3..3usize);
    }
}
