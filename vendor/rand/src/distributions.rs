//! The standard-uniform and range distributions used by the workspace.

use crate::RngCore;

/// A distribution over values of type `T`, mirroring
/// `rand::distributions::Distribution`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform `[0, 1)` for floats, uniform over the
/// whole range for integers.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → uniform multiples of 2^-53 in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled from uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, n)` by Lemire's multiply-and-reject method.
fn uniform_below<R: RngCore + ?Sized>(n: u64, rng: &mut R) -> u64 {
    debug_assert!(n > 0);
    let mut m = (rng.next_u64() as u128).wrapping_mul(n as u128);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            m = (rng.next_u64() as u128).wrapping_mul(n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(span, rng) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn uniform_below_is_roughly_uniform() {
        let mut rng = Lcg(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[uniform_below(10, &mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "count {c} far from 10000"
            );
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = Lcg(8);
        for _ in 0..1000 {
            let x = (2.0..5.0).sample_single(&mut rng);
            assert!((2.0..5.0).contains(&x));
        }
    }
}
