//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`) backed by a simple wall-clock
//! harness: each benchmark is warmed up, then timed over enough iterations to
//! fill a fixed measurement budget, and the per-iteration **median** over the
//! collected samples is printed. No statistical analysis, plotting, or
//! baseline storage — just honest medians on stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `name` parameterised by `parameter`.
    pub fn new<N: std::fmt::Display, P: std::fmt::Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One timing result, exposed so callers can post-process medians.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/benchmark` label.
    pub id: String,
    /// Median wall-clock time per iteration.
    pub median: Duration,
    /// Number of timed samples behind the median.
    pub samples: usize,
}

/// The top-level benchmark driver.
pub struct Criterion {
    results: Vec<BenchResult>,
    measurement_time: Duration,
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            measurement_time: Duration::from_millis(600),
            sample_count: 15,
        }
    }
}

impl Criterion {
    /// Mirrors criterion's builder hook; the stand-in reads no CLI flags.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_count: None,
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group (criterion's
    /// `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(3));
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        let budget = self.criterion.measurement_time;
        let mut bencher = Bencher {
            samples,
            budget,
            median: Duration::ZERO,
            timed_samples: 0,
        };
        f(&mut bencher);
        let result = BenchResult {
            id: label,
            median: bencher.median,
            samples: bencher.timed_samples,
        };
        println!(
            "bench {:<55} median {:>12.3?}  ({} samples)",
            result.id, result.median, result.samples
        );
        self.criterion.results.push(result);
        self
    }

    /// Benchmarks a closure against a shared input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; results live on the `Criterion`).
    pub fn finish(self) {}
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    median: Duration,
    timed_samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and per-sample iteration-count calibration.
        let warmup_start = Instant::now();
        black_box(f());
        let first = warmup_start.elapsed().max(Duration::from_nanos(1));
        let per_sample_budget = (self.budget / self.samples as u32).max(Duration::from_micros(200));
        let iters_per_sample = ((per_sample_budget.as_secs_f64() / first.as_secs_f64()).ceil()
            as u64)
            .clamp(1, 1_000_000);

        let mut sample_times: Vec<Duration> = Vec::with_capacity(self.samples);
        let overall_start = Instant::now();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            sample_times.push(start.elapsed() / iters_per_sample as u32);
            // Do not overshoot the total budget by more than ~4x even for
            // badly calibrated first iterations.
            if overall_start.elapsed() > self.budget * 4 {
                break;
            }
        }
        sample_times.sort_unstable();
        self.timed_samples = sample_times.len();
        self.median = sample_times[sample_times.len() / 2];
    }
}

/// Mirrors `criterion_group!`: defines a function running each benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].median > Duration::ZERO);
    }

    #[test]
    fn benchmark_ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("route", 1024).id, "route/1024");
        assert_eq!(BenchmarkId::from_parameter(4096).id, "4096");
    }
}
