//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(...)]` header), numeric range
//! strategies, fixed-length `collection::vec`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated from a deterministic
//! per-test RNG (seeded from the test's name), so failures are reproducible;
//! there is no shrinking — a failing case panics with the ordinary assert
//! message.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic generator used to drive the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, deterministically.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` in spirit.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy for fixed-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Generated values respect their range.
        #[test]
        fn ranges_are_respected(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        /// Vectors have the requested length.
        #[test]
        fn vectors_have_fixed_length(v in crate::collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn strategies_cover_their_range() {
        let mut rng = crate::TestRng::deterministic("coverage");
        let mut seen = [false; 6];
        for _ in 0..300 {
            seen[(0usize..6).generate(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
