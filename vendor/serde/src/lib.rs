//! Offline stand-in for the `serde` crate.
//!
//! Provides the `Serialize` / `Deserialize` names (as marker traits) together
//! with no-op derive macros, so the workspace's `#[derive(Serialize,
//! Deserialize)]` annotations compile without crates.io access. No actual
//! serialization happens through these traits anywhere in the workspace —
//! JSON/CSV output is hand-rendered by `geogossip-analysis`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
