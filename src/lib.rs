//! # geogossip
//!
//! A reproduction of *Geographic Gossip on Geometric Random Graphs via Affine
//! Combinations* (Hariharan Narayanan, PODC 2007): distributed averaging on
//! sensor networks where long-range exchanges use **non-convex affine
//! combinations** between the leaders of a hierarchical square partition,
//! bringing the transmission count down to `n^{1+o(1)}` from the `Õ(n^{1.5})`
//! of plain geographic gossip and the `Õ(n²)` of nearest-neighbor gossip.
//!
//! This meta-crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geometry`] | `geogossip-geometry` | points, rectangles, spatial grid, the hierarchical square partition |
//! | [`graph`] | `geogossip-graph` | geometric random graphs `G(n, r)`, connectivity, degrees |
//! | [`routing`] | `geogossip-routing` | greedy geographic routing, cell flooding, partner selection |
//! | [`sim`] | `geogossip-sim` | Poisson clocks, the asynchronous engine, transmission accounting |
//! | [`core`] | `geogossip-core` | the gossip protocols (pairwise, geographic, hierarchical affine) and the Lemma 1/2 models |
//! | [`net`] | `geogossip-net` | message-passing runtime: sensor actors, typed messages, the deterministic simulated scheduler |
//! | [`analysis`] | `geogossip-analysis` | statistics, power-law fits, occupancy checks, table rendering |
//! | [`lab`] | `geogossip-lab` | sweep lab: checkpointed parameter-grid campaigns, streaming aggregation, scaling verdicts |
//! | [`telemetry`] | `geogossip-telemetry` | deterministic structured events, phase timers, the unified metrics registry |
//!
//! # Quickstart
//!
//! ```
//! use geogossip::core::prelude::*;
//! use geogossip::geometry::sampling::sample_unit_square;
//! use geogossip::graph::GeometricGraph;
//! use geogossip::sim::SeedStream;
//!
//! // 1. Place 256 sensors uniformly at random and connect them at the
//! //    standard radius r = 2·sqrt(log n / n).
//! let seeds = SeedStream::new(42);
//! let positions = sample_unit_square(256, &mut seeds.stream("placement"));
//! let network = GeometricGraph::build_at_connectivity_radius(positions, 2.0);
//!
//! // 2. Give every sensor an initial measurement (here: a single spike).
//! let values = InitialCondition::Spike.generate(network.len(), &mut seeds.stream("values"));
//!
//! // 3. Run the paper's protocol (round-based form) until the ℓ₂ error has
//! //    dropped below 5% of its initial value, and inspect the cost.
//! let mut protocol = RoundBasedAffineGossip::new(
//!     &network,
//!     values,
//!     RoundBasedConfig::idealized(network.len()),
//! )?;
//! let report = protocol.run_until(0.05, &mut seeds.stream("run"));
//! assert!(report.converged);
//! println!("transmissions: {}", report.transmissions.total());
//! # Ok::<(), geogossip::core::ProtocolError>(())
//! ```
//!
//! The runnable examples in `examples/` walk through the same flow
//! (`quickstart`), a three-way protocol comparison (`compare_protocols`), a
//! scaling study (`scaling_study`) and a routing/hierarchy demonstration
//! (`network_anatomy`). The experiment harness reproducing every quantitative
//! claim of the paper lives in `crates/bench` (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use geogossip_analysis as analysis;
pub use geogossip_core as core;
pub use geogossip_geometry as geometry;
pub use geogossip_graph as graph;
pub use geogossip_lab as lab;
pub use geogossip_net as net;
pub use geogossip_routing as routing;
pub use geogossip_sim as sim;
pub use geogossip_telemetry as telemetry;

/// The builtin protocol registry with the message-passing runtime attached.
///
/// This is [`geogossip_core::builtin_runner`] plus [`net::NetRuntime`]: specs
/// without a `transport` key run on the shared-memory engine exactly as
/// before (bit-identically — the net layer is never constructed), and specs
/// with one run on the simulated message-passing scheduler.
pub fn builtin_runner() -> sim::scenario::Runner {
    geogossip_core::builtin_runner().with_transport(Box::new(geogossip_net::NetRuntime))
}
