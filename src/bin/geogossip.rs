//! The `geogossip` CLI: run gossip scenarios from JSON specs or flags, and
//! sweep parameter-grid campaigns through the lab.
//!
//! ```text
//! geogossip run scenarios/smoke.json            # run a spec file
//! geogossip run scenarios/smoke.json --json out.json --trace-csv traces/
//! geogossip run scenarios/large_n.json --only large-uniform-torus
//! geogossip run --protocol pairwise --n 256 --epsilon 0.1 --trials 2
//! geogossip sweep scenarios/sweeps/smoke_sweep.json --report out/
//! geogossip sweep scenarios/sweeps/scaling_headline.json --resume
//! geogossip validate scenarios/smoke.json       # schema check, no run
//! geogossip protocols                           # list the registry
//! geogossip template                            # print an example spec
//! ```
//!
//! A spec file holds either a single scenario object or
//! `{"scenarios": [ … ]}`; a sweep file carries the top-level `"sweep"` key.
//! See `geogossip_sim::scenario` for both schemas.

use geogossip::analysis::json::JsonValue;
use geogossip::builtin_runner;
use geogossip::lab::{run_sweep, SweepAggregator, SweepOptions, SweepProgress, SweepReport};
use geogossip::sim::batch::available_threads;
use geogossip::sim::field::Field;
use geogossip::sim::scenario::{
    reports_table, Runner, ScenarioReport, ScenarioSpec, SweepSpec, TopologySpec,
};
use geogossip::sim::{ParallelSpec, ProtocolError};
use geogossip::telemetry::{JsonlSink, MetricsRegistry, PhaseProfile, PHASE_CSV_HEADER};
use geogossip_geometry::Topology;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("protocols") => {
            list_protocols();
            Ok(())
        }
        Some("template") => {
            println!("{}", template_json());
            // Usage hints ride on stderr so stdout stays a valid spec file
            // when piped (`geogossip template > spec.json`).
            eprintln!("{TEMPLATE_HINT}");
            Ok(())
        }
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(ProtocolError::malformed(format!(
            "unknown command `{other}` (try `geogossip help`)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Printed (on stderr) after `geogossip template` so the example spec comes
/// with its observability entry points.
const TEMPLATE_HINT: &str = "\
hint: save this spec and run it with\n\
\x20 geogossip run <spec.json>                  run as-is\n\
\x20 geogossip run <spec.json> --telemetry <dir>  also capture the deterministic\n\
\x20                                            event log, metrics registry and\n\
\x20                                            phase histograms (dir must be\n\
\x20                                            new or empty)";

fn print_usage() {
    println!(
        "geogossip — gossip averaging scenarios on geometric random graphs\n\
         \n\
         USAGE:\n\
         \x20 geogossip run <spec.json> [--only <name>] [--json <out.json>]\n\
         \x20               [--trace-csv <dir>] [--threads T] [--telemetry <dir>]\n\
         \x20 geogossip run --protocol <name> [--n N] [--epsilon E] [--trials T]\n\
         \x20               [--seed S] [--field F] [--radius-constant C] [--torus]\n\
         \x20               [--param key=value]... [--json <out.json>] [--threads T]\n\
         \x20               [--telemetry <dir>]\n\
         \x20 geogossip sweep <sweep.json> [--resume] [--report <dir>]\n\
         \x20               [--log <path.jsonl>] [--max-cells K]\n\
         \x20 geogossip validate <spec.json>   parse + validate a scenario or\n\
         \x20                                  sweep spec without running it\n\
         \x20 geogossip protocols        list registered protocols\n\
         \x20 geogossip template         print an example scenario spec\n\
         \n\
         A spec file holds one scenario object or {{\"scenarios\": [...]}};\n\
         a sweep file carries the top-level \"sweep\" key.\n\
         Fields: spike, uniform, ramp, bimodal, spatial-gradient.\n\
         --threads sets intra-trial parallelism (0 = all cores); results are\n\
         bit-identical at any thread count.\n\
         --telemetry <dir> captures a deterministic event log (events.jsonl,\n\
         byte-identical across reruns and thread counts), a namespaced metrics\n\
         registry (metrics.json, metrics-keys.txt) and wall-clock phase\n\
         histograms (phases.csv); the directory must be new or empty."
    );
}

fn list_protocols() {
    let registry = geogossip::core::ProtocolRegistry::builtin();
    println!("registered protocols:");
    for entry in registry.entries() {
        println!("  {:26} {}", entry.name, entry.summary);
    }
}

fn template_spec() -> ScenarioSpec {
    ScenarioSpec::standard("geographic", 512, 0.05)
        .with_trials(2)
        // Example transport: the message-passing runtime on the instant
        // schedule (bit-identical to the shared-memory engine, plus message
        // ledger metrics). Delete the key to run shared-memory directly.
        .with_transport(geogossip::sim::TransportSpec::default())
}

/// The template spec as JSON, with an example default-valued `faults` object
/// and a default-valued `transport.reliability` block spliced in so the
/// printed spec shows every optional schema key. The result round-trips: it
/// validates and runs as printed (zero-valued faults decode to "no faults",
/// the zero-valued reliability block decodes to a lossless wire).
fn template_json() -> String {
    let mut doc = template_spec().to_json_value();
    if let JsonValue::Object(fields) = &mut doc {
        let at = fields
            .iter()
            .position(|(key, _)| key == "transport")
            .unwrap_or(fields.len());
        fields.insert(
            at,
            (
                "faults".to_string(),
                JsonValue::object(vec![("drop-rate", 0.0.into())]),
            ),
        );
        if let Some(JsonValue::Object(transport)) = fields
            .iter_mut()
            .find(|(key, _)| key == "transport")
            .map(|(_, value)| value)
        {
            transport.push((
                "reliability".to_string(),
                JsonValue::object(vec![
                    ("drop", 0.0.into()),
                    ("duplicate", 0.0.into()),
                    (
                        "retry",
                        JsonValue::object(vec![
                            ("timeout", 0.25.into()),
                            ("backoff", 2.0.into()),
                            ("max-retries", 3u64.into()),
                        ]),
                    ),
                ]),
            ));
        }
    }
    doc.pretty()
}

fn run(args: &[String]) -> Result<(), ProtocolError> {
    let mut spec_path: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut trace_csv: Option<String> = None;
    let mut only: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut telemetry: Option<String> = None;
    let mut flags = FlagSpec::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| ProtocolError::malformed(format!("`{name}` needs a value")))
        };
        match arg.as_str() {
            "--json" => json_out = Some(take("--json")?),
            "--trace-csv" => trace_csv = Some(take("--trace-csv")?),
            "--only" => only = Some(take("--only")?),
            "--protocol" => flags.protocol = Some(take("--protocol")?),
            "--n" => flags.n = Some(parse_u64(&take("--n")?, "--n")? as usize),
            "--epsilon" => flags.epsilon = Some(parse_f64(&take("--epsilon")?, "--epsilon")?),
            "--trials" => flags.trials = Some(parse_u64(&take("--trials")?, "--trials")?),
            "--seed" => flags.seed = Some(parse_u64(&take("--seed")?, "--seed")?),
            "--field" => flags.field = Some(take("--field")?),
            "--radius-constant" => {
                flags.radius_constant =
                    Some(parse_f64(&take("--radius-constant")?, "--radius-constant")?)
            }
            "--torus" => flags.torus = true,
            "--param" => flags.params.push(take("--param")?),
            "--threads" => threads = Some(parse_u64(&take("--threads")?, "--threads")? as usize),
            "--telemetry" => telemetry = Some(take("--telemetry")?),
            other if other.starts_with('-') => {
                return Err(ProtocolError::malformed(format!("unknown flag `{other}`")))
            }
            other => {
                if spec_path.replace(other.to_string()).is_some() {
                    return Err(ProtocolError::malformed(
                        "only one spec file can be given per run",
                    ));
                }
            }
        }
    }

    let mut specs = match (spec_path, flags.protocol.is_some()) {
        (Some(path), false) => load_specs(&path)?,
        (None, true) => vec![flags.into_spec()?],
        (Some(_), true) => {
            return Err(ProtocolError::malformed(
                "pass either a spec file or --protocol flags, not both",
            ))
        }
        (None, false) => {
            return Err(ProtocolError::malformed(
                "nothing to run: pass a spec file or --protocol (see `geogossip help`)",
            ))
        }
    };
    if let Some(name) = &only {
        let known: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
        specs.retain(|s| &s.name == name);
        if specs.is_empty() {
            return Err(ProtocolError::malformed(format!(
                "`--only {name}` matches no scenario (known: {})",
                known.join(", ")
            )));
        }
    }
    if let Some(threads) = threads {
        // `--threads 0` = all pool workers. The flag overrides any
        // `parallelism` key in the spec; validation (below, in the runner)
        // still rejects the combination with a `transport`.
        let threads = if threads == 0 {
            available_threads()
        } else {
            threads
        };
        for spec in &mut specs {
            spec.parallelism = Some(ParallelSpec::with_threads(threads));
        }
    }

    let runner = builtin_runner();
    let reports = match &telemetry {
        Some(dir) => run_with_telemetry(&runner, &specs, Path::new(dir))?,
        None => runner.run_all(&specs)?,
    };
    println!("{}", reports_table(&reports).to_markdown());
    // Per-scenario throughput, straight off the trial reports — large-n
    // sweeps show throughput without a separate bench run. Trials run in
    // parallel, so the seconds are summed trial time (== elapsed wall time
    // only for single-trial scenarios) and ticks/s is the per-trial engine
    // rate.
    for report in &reports {
        println!("{}", timing_line(report));
    }
    for report in &reports {
        if !report.all_converged() {
            println!(
                "note: `{}` converged in {}/{} trials (mean final error {:.3e})",
                report.spec.name,
                report.summary.converged_trials,
                report.summary.trials,
                report.summary.mean_final_error
            );
        }
    }
    if let Some(path) = json_out {
        let doc = JsonValue::Array(reports.iter().map(ScenarioReport::to_json_value).collect());
        std::fs::write(&path, doc.pretty() + "\n")
            .map_err(|e| ProtocolError::malformed(format!("cannot write `{path}`: {e}")))?;
        println!("wrote {path}");
    }
    if let Some(dir) = trace_csv {
        write_trace_csvs(Path::new(&dir), &reports)?;
    }
    Ok(())
}

/// The per-scenario `timing:` line, sourced from the telemetry phase timers.
///
/// Every wall-clock second lands in exactly one phase lap (`graph`, `field`,
/// `build`, `engine`), so the line's total is an unambiguous sum. The old
/// line printed whole-trial seconds *and* a ticks/s figure whose denominator
/// (`engine_seconds`) was a different, overlapping slice of the same clock —
/// and for transport specs that slice silently included actor construction,
/// so engine time was effectively reported twice under two definitions. Now
/// ticks/s divides by the engine phase alone and the breakdown shows where
/// the rest went.
fn timing_line(report: &ScenarioReport) -> String {
    let phases = report.phase_totals();
    let total: f64 = phases.iter().map(|(_, s)| s).sum();
    let engine: f64 = phases
        .iter()
        .filter(|(phase, _)| *phase == "engine")
        .map(|(_, s)| s)
        .sum();
    let breakdown: Vec<String> = phases
        .iter()
        .map(|(phase, s)| format!("{phase} {s:.2}s"))
        .collect();
    let ticks_per_sec = if engine > 0.0 {
        format!("{:.0}", report.total_ticks() as f64 / engine)
    } else {
        "-".into()
    };
    let engine_threads = report.spec.parallelism.map_or(1, |p| p.threads);
    format!(
        "timing: `{}` {} = {:.2}s over {} parallel trial{}, {} ticks, {} ticks/s per trial, {} engine thread{}",
        report.spec.name,
        if breakdown.is_empty() {
            "(no phase laps)".to_string()
        } else {
            breakdown.join(" + ")
        },
        total,
        report.summary.trials,
        if report.summary.trials == 1 { "" } else { "s" },
        report.total_ticks(),
        ticks_per_sec,
        engine_threads,
        if engine_threads == 1 { "" } else { "s" }
    )
}

/// Runs `specs` with the telemetry sinks attached, writing four files into
/// `dir` (which must not already hold anything — telemetry runs never
/// silently clobber a previous capture):
///
/// * `events.jsonl` — the deterministic structured event stream, one compact
///   JSON object per line, byte-identical across reruns and thread counts;
/// * `metrics.json` — per-scenario [`MetricsRegistry`] snapshots (namespaced
///   `engine.*` / `tx.*` / `net.*` / `fault.*` / `protocol.*` keys, counters
///   summed across trials);
/// * `metrics-keys.txt` — the sorted union of metric keys (what CI diffs
///   against the committed golden list);
/// * `phases.csv` — log-bucketed wall-clock phase histograms per scenario
///   (the only file wall-clock data touches).
fn run_with_telemetry(
    runner: &Runner,
    specs: &[ScenarioSpec],
    dir: &Path,
) -> Result<Vec<ScenarioReport>, ProtocolError> {
    match std::fs::read_dir(dir) {
        Ok(mut entries) => {
            if entries.next().is_some() {
                return Err(ProtocolError::malformed(format!(
                    "--telemetry directory `{}` already exists and is not empty \
                     (pass a new or empty directory; telemetry never overwrites)",
                    dir.display()
                )));
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            std::fs::create_dir_all(dir).map_err(|e| {
                ProtocolError::malformed(format!("cannot create `{}`: {e}", dir.display()))
            })?;
        }
        Err(e) => {
            return Err(ProtocolError::malformed(format!(
                "cannot use `{}` as a telemetry directory: {e}",
                dir.display()
            )))
        }
    }
    let events_path = dir.join("events.jsonl");
    let file = std::fs::File::create(&events_path).map_err(|e| {
        ProtocolError::malformed(format!("cannot write `{}`: {e}", events_path.display()))
    })?;
    let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
    let mut reports = Vec::with_capacity(specs.len());
    for spec in specs {
        reports.push(runner.run_probed(spec, &mut sink)?);
    }
    let events = sink.written();
    sink.finish().map_err(|e| {
        ProtocolError::malformed(format!("cannot write `{}`: {e}", events_path.display()))
    })?;

    let mut scenarios: Vec<(&str, JsonValue)> = Vec::new();
    let mut keys: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut phases_csv = format!("{PHASE_CSV_HEADER}\n");
    for report in &reports {
        let registry = report_registry(report);
        keys.extend(registry.keys().iter().map(|k| k.to_string()));
        scenarios.push((report.spec.name.as_str(), registry.to_json_value()));
        let mut profile = PhaseProfile::new();
        for trial in &report.trials {
            profile.record_laps(&trial.phases);
        }
        phases_csv.push_str(&profile.csv_rows(&report.spec.name));
    }
    let write = |name: &str, contents: String| -> Result<(), ProtocolError> {
        let path = dir.join(name);
        std::fs::write(&path, contents).map_err(|e| {
            ProtocolError::malformed(format!("cannot write `{}`: {e}", path.display()))
        })
    };
    write("metrics.json", JsonValue::object(scenarios).pretty() + "\n")?;
    write(
        "metrics-keys.txt",
        keys.iter().fold(String::new(), |mut acc, key| {
            acc.push_str(key);
            acc.push('\n');
            acc
        }),
    )?;
    write("phases.csv", phases_csv)?;
    println!(
        "telemetry: wrote events.jsonl ({events} events), metrics.json, \
         metrics-keys.txt, phases.csv to {}",
        dir.display()
    );
    Ok(reports)
}

/// Folds one scenario report into a namespaced metrics registry: engine and
/// transmission counters summed across trials, plus every per-trial protocol
/// metric routed through [`MetricsRegistry::record_trial_metrics`].
fn report_registry(report: &ScenarioReport) -> MetricsRegistry {
    let mut registry = MetricsRegistry::new();
    let trials = &report.trials;
    registry.set("engine.trials", trials.len() as f64);
    registry.set(
        "engine.converged_trials",
        trials.iter().filter(|t| t.converged).count() as f64,
    );
    registry.set(
        "engine.ticks",
        trials.iter().map(|t| t.ticks).sum::<u64>() as f64,
    );
    registry.set(
        "engine.rounds",
        trials.iter().map(|t| t.rounds).sum::<u64>() as f64,
    );
    registry.set("engine.mean_final_error", report.summary.mean_final_error);
    registry.set(
        "tx.local",
        trials.iter().map(|t| t.transmissions.local()).sum::<u64>() as f64,
    );
    registry.set(
        "tx.routing",
        trials
            .iter()
            .map(|t| t.transmissions.routing())
            .sum::<u64>() as f64,
    );
    registry.set(
        "tx.control",
        trials
            .iter()
            .map(|t| t.transmissions.control())
            .sum::<u64>() as f64,
    );
    registry.set(
        "tx.total",
        trials.iter().map(|t| t.transmissions.total()).sum::<u64>() as f64,
    );
    // Sum the flat per-trial metric lists by name before routing, so the
    // registry holds whole-scenario counters, not last-trial values.
    let mut summed: Vec<(String, f64)> = Vec::new();
    for trial in trials {
        for (name, value) in &trial.metrics {
            match summed.iter_mut().find(|(n, _)| n == name) {
                Some((_, sum)) => *sum += value,
                None => summed.push((name.clone(), *value)),
            }
        }
    }
    registry.record_trial_metrics(&summed);
    registry
}

/// Writes one CSV per trial (`<scenario>-t<trial>.csv`, `/` sanitised to
/// `_`) holding the stride-thinned convergence trace — the plottable form of
/// what the engine records.
fn write_trace_csvs(dir: &Path, reports: &[ScenarioReport]) -> Result<(), ProtocolError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| ProtocolError::malformed(format!("cannot create `{}`: {e}", dir.display())))?;
    let mut written = 0usize;
    for report in reports {
        let stem: String = report
            .spec
            .name
            .chars()
            .map(|c| if c == '/' || c == '\\' { '_' } else { c })
            .collect();
        for (trial, cost) in report.trials.iter().enumerate() {
            let path = dir.join(format!("{stem}-t{trial}.csv"));
            std::fs::write(&path, cost.trace.to_table().to_csv()).map_err(|e| {
                ProtocolError::malformed(format!("cannot write `{}`: {e}", path.display()))
            })?;
            written += 1;
        }
    }
    println!("wrote {written} trace CSV(s) to {}", dir.display());
    Ok(())
}

/// `geogossip sweep <sweep.json> [--resume] [--report <dir>] [--log <path>]
/// [--max-cells K]`: checkpointed campaign execution through the lab.
fn sweep(args: &[String]) -> Result<(), ProtocolError> {
    let mut sweep_path: Option<String> = None;
    let mut resume = false;
    let mut report_dir: Option<String> = None;
    let mut log_path: Option<String> = None;
    let mut max_cells: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| ProtocolError::malformed(format!("`{name}` needs a value")))
        };
        match arg.as_str() {
            "--resume" => resume = true,
            "--report" => report_dir = Some(take("--report")?),
            "--log" => log_path = Some(take("--log")?),
            "--max-cells" => {
                max_cells = Some(parse_u64(&take("--max-cells")?, "--max-cells")? as usize)
            }
            other if other.starts_with('-') => {
                return Err(ProtocolError::malformed(format!("unknown flag `{other}`")))
            }
            other => {
                if sweep_path.replace(other.to_string()).is_some() {
                    return Err(ProtocolError::malformed(
                        "only one sweep file can be given per run",
                    ));
                }
            }
        }
    }
    let sweep_path = sweep_path.ok_or_else(|| {
        ProtocolError::malformed("nothing to sweep: pass a sweep file (see `geogossip help`)")
    })?;
    let spec = SweepSpec::load_file(&sweep_path)?;
    // Default checkpoint log: next to the sweep file, `<stem>.results.jsonl`.
    let log_path: PathBuf = match log_path {
        Some(path) => PathBuf::from(path),
        None => Path::new(&sweep_path).with_extension("results.jsonl"),
    };
    let total = spec.cell_count();
    println!(
        "sweep `{}`: {} cells, {} trial(s) each, log {}",
        spec.name,
        total,
        spec.trials,
        log_path.display()
    );
    let runner = builtin_runner();
    let options = SweepOptions { resume, max_cells };
    let outcome = run_sweep(
        &runner,
        &spec,
        Some(&log_path),
        &options,
        |progress| match progress {
            SweepProgress::Skipped(record) => {
                println!(
                    "cell {}/{total} `{}`: checkpointed, skipped",
                    record.index + 1,
                    record.name
                );
            }
            SweepProgress::Completed(record, seconds) => {
                let converged = record.trials.iter().filter(|t| t.converged).count();
                let mean_tx: f64 = record
                    .trials
                    .iter()
                    .map(|t| t.transmissions as f64)
                    .sum::<f64>()
                    / record.trials.len().max(1) as f64;
                println!(
                    "cell {}/{total} `{}`: {converged}/{} converged, mean {mean_tx:.0} tx, {seconds:.2}s",
                    record.index + 1,
                    record.name,
                    record.trials.len()
                );
            }
        },
    )?;
    if outcome.recovered_torn_tail {
        println!("note: dropped a torn trailing log line (interrupted append); its cell re-ran");
    }
    if !outcome.complete() {
        println!(
            "stopped early after {} executed cell(s); {} cell(s) remain — re-run with --resume",
            outcome.executed, outcome.remaining
        );
    }

    let mut aggregator = SweepAggregator::new();
    for record in &outcome.records {
        aggregator.push(record);
    }
    let report = SweepReport::new(spec.name.clone(), spec.cell_count(), aggregator.finish());
    println!();
    println!("{}", report.markdown());
    if let Some(dir) = report_dir {
        let written = report.write_dir(Path::new(&dir))?;
        for path in written {
            println!("wrote {}", path.display());
        }
    }
    Ok(())
}

/// `geogossip validate <spec.json>`: parses and validates a scenario spec,
/// scenario bundle, or sweep spec without running anything. The process
/// exits non-zero (via `main`) with the precise schema error on failure.
fn validate(args: &[String]) -> Result<(), ProtocolError> {
    let [path] = args else {
        return Err(ProtocolError::malformed(
            "usage: geogossip validate <spec.json>",
        ));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| ProtocolError::malformed(format!("cannot read `{path}`: {e}")))?;
    let doc =
        JsonValue::parse(&text).map_err(|e| ProtocolError::malformed(format!("{path}: {e}")))?;
    if SweepSpec::is_sweep_document(&doc) {
        let spec = SweepSpec::from_json_value(&doc)
            .map_err(|e| ProtocolError::malformed(format!("{path}: {e}")))?;
        println!(
            "ok: sweep `{}` ({} cells, {} trial(s) each)",
            spec.name,
            spec.cell_count(),
            spec.trials
        );
    } else {
        let specs = ScenarioSpec::load_file(path)?;
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        println!("ok: {} scenario(s): {}", specs.len(), names.join(", "));
    }
    Ok(())
}

/// Loads one spec or a `{"scenarios": [...]}` bundle from a JSON file
/// (shared with the bench binary via [`ScenarioSpec::load_file`]).
fn load_specs(path: &str) -> Result<Vec<ScenarioSpec>, ProtocolError> {
    ScenarioSpec::load_file(path)
}

/// Scenario assembled from command-line flags instead of a file.
#[derive(Default)]
struct FlagSpec {
    protocol: Option<String>,
    n: Option<usize>,
    epsilon: Option<f64>,
    trials: Option<u64>,
    seed: Option<u64>,
    field: Option<String>,
    radius_constant: Option<f64>,
    torus: bool,
    params: Vec<String>,
}

impl FlagSpec {
    fn into_spec(self) -> Result<ScenarioSpec, ProtocolError> {
        let protocol = self.protocol.ok_or_else(|| {
            ProtocolError::malformed(
                "flag mode needs `--protocol <name>` (run `geogossip protocols` for the \
                 registry, or see `geogossip help`)",
            )
        })?;
        let n = self.n.unwrap_or(256);
        let mut spec = ScenarioSpec::standard(&protocol, n, self.epsilon.unwrap_or(0.1));
        if let Some(trials) = self.trials {
            spec = spec.with_trials(trials);
        }
        if let Some(seed) = self.seed {
            spec = spec.with_seed(seed);
        }
        if let Some(field) = &self.field {
            spec = spec.with_field(Field::parse(field).ok_or_else(|| {
                ProtocolError::malformed(format!(
                    "unknown field `{field}` (known: spike, uniform, ramp, bimodal, spatial-gradient)"
                ))
            })?);
        }
        if let Some(c) = self.radius_constant {
            spec.topology = TopologySpec {
                radius: geogossip::sim::scenario::RadiusSpec::ConnectivityConstant(c),
                ..spec.topology
            };
        }
        if self.torus {
            spec.topology.surface = Topology::Torus;
        }
        for param in &self.params {
            let (key, value) = param.split_once('=').ok_or_else(|| {
                ProtocolError::malformed(format!("`--param` expects key=value, got `{param}`"))
            })?;
            spec.protocol = match value.parse::<f64>() {
                Ok(number) => spec.protocol.with_number(key, number),
                Err(_) => spec.protocol.with_text(key, value),
            };
        }
        spec.validate()?;
        Ok(spec)
    }
}

fn parse_u64(text: &str, flag: &str) -> Result<u64, ProtocolError> {
    text.parse()
        .map_err(|_| ProtocolError::malformed(format!("`{flag}` expects a whole number")))
}

fn parse_f64(text: &str, flag: &str) -> Result<f64, ProtocolError> {
    text.parse()
        .map_err(|_| ProtocolError::malformed(format!("`{flag}` expects a number")))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flag-mode invocations that never name a protocol must produce a CLI
    /// error (non-zero exit through `main`), not a panic — whatever other
    /// flags ride along.
    #[test]
    fn flag_mode_without_protocol_errors_instead_of_panicking() {
        let err = FlagSpec::default()
            .into_spec()
            .expect_err("no protocol given");
        assert!(err.to_string().contains("--protocol"), "got `{err}`");

        let err = FlagSpec {
            n: Some(64),
            epsilon: Some(0.1),
            trials: Some(2),
            ..FlagSpec::default()
        }
        .into_spec()
        .expect_err("flags without --protocol");
        assert!(err.to_string().contains("--protocol"), "got `{err}`");
    }

    /// The printed template must show every optional schema key (`faults`,
    /// `transport`, `transport.reliability`) with example/default values, and
    /// still parse + validate as printed.
    #[test]
    fn template_shows_faults_and_transport_and_round_trips() {
        let text = template_json();
        assert!(text.contains("\"faults\""), "template:\n{text}");
        assert!(text.contains("\"drop-rate\""), "template:\n{text}");
        assert!(text.contains("\"transport\""), "template:\n{text}");
        assert!(text.contains("\"latency\""), "template:\n{text}");
        for key in [
            "reliability",
            "drop",
            "duplicate",
            "retry",
            "timeout",
            "backoff",
            "max-retries",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "template:\n{text}");
        }
        let spec = ScenarioSpec::from_json(&text).expect("template must validate as printed");
        // Zero-valued example faults decode to "no faults"; the example
        // transport decodes to the instant message-passing schedule with a
        // lossless wire (the default-valued reliability block is inert).
        assert!(spec.faults.is_none());
        assert_eq!(
            spec.transport,
            Some(geogossip::sim::TransportSpec::default())
        );
    }

    /// The `run` dispatcher itself: flag-ish arguments without `--protocol`
    /// or a spec file surface the usage hint as an error.
    #[test]
    fn run_without_protocol_or_spec_is_a_usage_error() {
        let err = run(&[]).expect_err("nothing to run");
        assert!(err.to_string().contains("--protocol"), "got `{err}`");
        let err = run(&["--n".to_string(), "64".to_string()]).expect_err("no protocol");
        assert!(err.to_string().contains("--protocol"), "got `{err}`");
    }

    /// `--telemetry` into an existing non-empty directory is a usage error
    /// (telemetry captures are never silently overwritten), surfaced before
    /// any scenario runs.
    #[test]
    fn telemetry_into_nonempty_directory_is_a_usage_error() {
        let dir = std::env::temp_dir().join("geogossip-cli-telemetry-nonempty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("previous.jsonl"), "{}\n").unwrap();
        let err = run(&[
            "scenarios/smoke.json".to_string(),
            "--telemetry".to_string(),
            dir.display().to_string(),
        ])
        .expect_err("non-empty telemetry dir must be rejected");
        assert!(err.to_string().contains("not empty"), "got `{err}`");
        // The prior capture is untouched.
        assert_eq!(
            std::fs::read_to_string(dir.join("previous.jsonl")).unwrap(),
            "{}\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The `timing:` line is sourced from the phase timers: each phase shows
    /// once, the total is their sum, and ticks/s divides by the engine phase
    /// alone (the old line mixed whole-trial seconds with an overlapping
    /// engine-seconds denominator, double-covering engine time for transport
    /// specs).
    #[test]
    fn timing_line_reports_each_phase_exactly_once() {
        use geogossip::sim::metrics::{ConvergenceTrace, TransmissionCounter};
        use geogossip::sim::scenario::TrialCost;
        let spec = ScenarioSpec::standard("pairwise", 64, 0.1).with_trials(1);
        let trial = TrialCost {
            converged: true,
            transmissions: TransmissionCounter::new(),
            rounds: 500,
            ticks: 500,
            final_error: 0.05,
            metrics: Vec::new(),
            trace: ConvergenceTrace::new(),
            seconds: 0.85,
            engine_seconds: 0.25,
            phases: vec![
                ("graph", 0.5),
                ("field", 0.05),
                ("build", 0.05),
                ("engine", 0.25),
            ],
        };
        let report = ScenarioReport::new(spec, "pairwise".into(), vec![trial]);
        let line = timing_line(&report);
        assert_eq!(
            line,
            "timing: `pairwise-n64` graph 0.50s + field 0.05s + build 0.05s + engine 0.25s \
             = 0.85s over 1 parallel trial, 500 ticks, 2000 ticks/s per trial, \
             1 engine thread"
        );
    }

    /// Both help surfaces advertise the telemetry capture flag.
    #[test]
    fn help_text_mentions_telemetry() {
        assert!(TEMPLATE_HINT.contains("--telemetry"));
        assert!(TEMPLATE_HINT.contains("event log"));
    }
}
