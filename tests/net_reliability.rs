//! Reliability pins for the unreliable wire.
//!
//! Three contracts, each machine-checked here:
//!
//! 1. **Lossless is free.** A `transport.reliability` block with `drop = 0`
//!    and `duplicate = 0` — whatever its retry policy says — must be **bit
//!    identical** to running without the block at all: same reports, same
//!    traces, same message ledger, same run- and net-stream RNG end states.
//!    The reliability layer may only consume randomness once it can actually
//!    lose or duplicate a message.
//! 2. **Loss degrades, never wedges.** At a 30% drop rate the default
//!    timeout/retry/backoff policy still converges: retries recover dropped
//!    exchanges, abandoned rounds release their actors instead of blocking
//!    them, and the abandonment count stays a small fraction of traffic.
//! 3. **Lossy runs are reproducible.** The drop and duplication draws come
//!    from the frozen `(seed, trial, "net")` stream, so a seeded lossy run is
//!    byte-for-byte repeatable.
//!
//! The duplicate-delivery idempotence property (satellite of the same
//! contract) is checked by proptest at the bottom: a wire that only
//! duplicates — never drops — leaves the entire run unchanged versus a
//! lossless wire, because receivers suppress redeliveries by message id
//! before any handler, charge, or RNG draw can fire.

use geogossip::builtin_runner;
use geogossip::core::prelude::*;
use geogossip::graph::GeometricGraph;
use geogossip::net::{GeographicNet, NetProtocol, NetScheduler, PairwiseNet};
use geogossip::sim::scenario::ScenarioSpec;
use geogossip::sim::transport::{LatencyModel, ReliabilitySpec, RetryPolicy, TransportSpec};
use geogossip::sim::StopCondition;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Topology;
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn graph(n: usize, topology: Topology, seed: u64) -> GeometricGraph {
    let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let radius = geogossip_geometry::connectivity_radius(n, 2.0).min(0.49);
    GeometricGraph::build_with_topology(pts, radius, topology)
}

/// A lossless reliability block with a deliberately non-default retry policy:
/// with nothing ever dropped, no timer is armed, so the policy must be inert.
fn lossless_with_loud_retries() -> ReliabilitySpec {
    ReliabilitySpec {
        drop: 0.0,
        duplicate: 0.0,
        retry: RetryPolicy {
            timeout: 0.015,
            backoff: 7.5,
            max_retries: 11,
        },
    }
}

#[test]
fn lossless_reliability_is_bit_identical_to_no_reliability() {
    let n = 96;
    let g = graph(n, Topology::UnitSquare, 31);
    let stop = StopCondition::at_epsilon(0.05).with_max_ticks(400_000);

    for pairwise in [true, false] {
        let values =
            InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(0x1ce ^ n as u64));
        let run = |reliability: Option<ReliabilitySpec>| {
            let mut rng = ChaCha8Rng::seed_from_u64(0xd1a);
            let mut net_rng = ChaCha8Rng::seed_from_u64(0xd1b);
            let (report, ledger, metrics) = if pairwise {
                let mut actors = PairwiseNet::new(&g, values.clone()).expect("valid actors");
                let (report, ledger) = match reliability {
                    Some(spec) => NetScheduler::new(n).run_wire(
                        &mut actors,
                        stop,
                        LatencyModel::Fixed(0.002),
                        spec,
                        None,
                        &mut rng,
                        &mut net_rng,
                    ),
                    None => NetScheduler::new(n).run(
                        &mut actors,
                        stop,
                        LatencyModel::Fixed(0.002),
                        &mut rng,
                        &mut net_rng,
                    ),
                };
                (report, ledger, actors.metrics())
            } else {
                let mut actors = GeographicNet::new(&g, values.clone()).expect("valid actors");
                let (report, ledger) = match reliability {
                    Some(spec) => NetScheduler::new(n).run_wire(
                        &mut actors,
                        stop,
                        LatencyModel::Fixed(0.002),
                        spec,
                        None,
                        &mut rng,
                        &mut net_rng,
                    ),
                    None => NetScheduler::new(n).run(
                        &mut actors,
                        stop,
                        LatencyModel::Fixed(0.002),
                        &mut rng,
                        &mut net_rng,
                    ),
                };
                (report, ledger, actors.metrics())
            };
            (report, ledger, metrics, rng, net_rng)
        };

        let (bare_report, bare_ledger, bare_metrics, mut bare_rng, mut bare_net) = run(None);
        let (rel_report, rel_ledger, rel_metrics, mut rel_rng, mut rel_net) =
            run(Some(lossless_with_loud_retries()));

        assert_eq!(
            rel_report, bare_report,
            "lossless reliability changed the report (pairwise={pairwise})"
        );
        assert_eq!(
            rel_report.final_error.to_bits(),
            bare_report.final_error.to_bits(),
            "final error not bit-identical (pairwise={pairwise})"
        );
        assert_eq!(rel_report.trace.points(), bare_report.trace.points());
        assert_eq!(
            rel_ledger, bare_ledger,
            "lossless reliability changed the message ledger (pairwise={pairwise})"
        );
        assert_eq!(rel_ledger.dropped, 0);
        assert_eq!(rel_ledger.duplicated, 0);
        assert_eq!(rel_ledger.retried, 0);
        assert_eq!(rel_ledger.rounds_abandoned, 0);
        assert_eq!(rel_metrics, bare_metrics);
        for _ in 0..4 {
            assert_eq!(
                rel_rng.next_u64(),
                bare_rng.next_u64(),
                "run-stream RNG consumption diverged (pairwise={pairwise})"
            );
            assert_eq!(
                rel_net.next_u64(),
                bare_net.next_u64(),
                "net-stream RNG consumption diverged (pairwise={pairwise})"
            );
        }
    }
}

#[test]
fn lossless_reliability_specs_match_bare_transport_at_the_runner_level() {
    let runner = builtin_runner();
    for name in ["pairwise", "geographic"] {
        let base = ScenarioSpec::standard(name, 96, 0.1)
            .with_trials(2)
            .with_seed(83);
        let bare = base
            .clone()
            .with_transport(TransportSpec::with_latency(LatencyModel::Instant));
        let lossless = base.with_transport(TransportSpec {
            latency: LatencyModel::Instant,
            reliability: lossless_with_loud_retries(),
        });

        let bare_report = runner.run(&bare).expect("bare transport runs");
        let lossless_report = runner.run(&lossless).expect("lossless reliability runs");
        // The embedded spec echoes differ (the inert retry policy); every
        // outcome must not.
        assert_eq!(
            lossless_report.protocol_label, bare_report.protocol_label,
            "{name}: a lossless reliability block changed the label"
        );
        assert_eq!(
            lossless_report.trials, bare_report.trials,
            "{name}: a lossless reliability block changed a trial"
        );
        assert_eq!(
            lossless_report.summary, bare_report.summary,
            "{name}: a lossless reliability block changed the summary"
        );
        // Schema stability: no reliability counters appear on lossless runs.
        for trial in &lossless_report.trials {
            assert!(trial.metric("messages_dropped").is_none());
            assert!(trial.metric("rounds_abandoned").is_none());
        }
    }
}

#[test]
fn heavy_loss_with_retries_converges_and_releases_every_actor() {
    let runner = builtin_runner();
    let mut spec = ScenarioSpec::standard("geographic", 128, 0.1)
        .with_trials(2)
        .with_seed(89);
    spec.stop = spec.stop.with_max_ticks(3_000_000);
    let spec = spec.with_transport(TransportSpec {
        latency: LatencyModel::Instant,
        reliability: ReliabilitySpec {
            drop: 0.3,
            duplicate: 0.0,
            retry: RetryPolicy::default(),
        },
    });

    let report = runner.run(&spec).expect("lossy spec runs");
    for trial in &report.trials {
        assert!(trial.converged, "30% drop with retries must still converge");
        let sent = trial.metric("messages_sent").expect("ledger present");
        let dropped = trial.metric("messages_dropped").expect("wire counters");
        let retried = trial.metric("messages_retried").expect("wire counters");
        let abandoned = trial.metric("rounds_abandoned").expect("wire counters");
        assert!(dropped > 0.0, "a 30% wire must actually drop");
        assert!(retried > 0.0, "dropped messages must be retried");
        // With the default cap of 3 retries, a message is abandoned only
        // after four consecutive drops (0.3⁴ < 1%); anything near that bound
        // proves abandoned rounds released their actors instead of wedging.
        assert!(
            abandoned <= 0.05 * sent,
            "abandonment is not a small fraction of traffic: {abandoned} of {sent}"
        );
    }
}

#[test]
fn lossy_runs_are_byte_reproducible() {
    let runner = builtin_runner();
    let mut spec = ScenarioSpec::standard("pairwise", 96, 0.1)
        .with_trials(2)
        .with_seed(97);
    spec.stop = spec.stop.with_max_ticks(3_000_000);
    let spec = spec.with_transport(TransportSpec {
        latency: LatencyModel::Fixed(0.002),
        reliability: ReliabilitySpec {
            drop: 0.2,
            duplicate: 0.05,
            retry: RetryPolicy::default(),
        },
    });

    // The lossy spelling must also survive the JSON round trip untouched.
    let reparsed = ScenarioSpec::from_json(&spec.to_json()).expect("lossy spec round-trips");
    assert_eq!(reparsed, spec);

    let first = runner.run(&spec).expect("lossy spec runs");
    let second = runner.run(&spec).expect("lossy spec runs again");
    assert_eq!(first, second, "seeded lossy runs must be reproducible");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Duplicate deliveries are idempotent: a wire that duplicates but never
    /// drops yields the *same run* as a lossless wire — same report (state
    /// trajectory, charges, stop), same protocol counters, same run-stream
    /// RNG end state — with only the ledger recording the extra copies.
    #[test]
    fn duplicate_delivery_is_idempotent(
        seed in 0u64..1024,
        dup in 0.2f64..0.8,
    ) {
        let pairwise = seed % 2 == 0;
        let n = 48;
        let g = graph(n, Topology::UnitSquare, seed ^ 0x9e37);
        let values =
            InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(seed ^ 0x79b9));
        let stop = StopCondition::at_epsilon(0.1).with_max_ticks(500_000);
        let duplicating = ReliabilitySpec {
            drop: 0.0,
            duplicate: dup,
            retry: RetryPolicy::default(),
        };

        let run = |reliability: Option<ReliabilitySpec>| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x85eb);
            let mut net_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xca6b);
            let (report, ledger, metrics) = if pairwise {
                let mut actors = PairwiseNet::new(&g, values.clone()).expect("valid actors");
                let (report, ledger) = NetScheduler::new(n).run_wire(
                    &mut actors,
                    stop,
                    LatencyModel::Fixed(0.001),
                    reliability.unwrap_or_default(),
                    None,
                    &mut rng,
                    &mut net_rng,
                );
                (report, ledger, actors.metrics())
            } else {
                let mut actors = GeographicNet::new(&g, values.clone()).expect("valid actors");
                let (report, ledger) = NetScheduler::new(n).run_wire(
                    &mut actors,
                    stop,
                    LatencyModel::Fixed(0.001),
                    reliability.unwrap_or_default(),
                    None,
                    &mut rng,
                    &mut net_rng,
                );
                (report, ledger, actors.metrics())
            };
            (report, ledger, metrics, rng)
        };

        let (base_report, base_ledger, base_metrics, mut base_rng) = run(None);
        let (dup_report, dup_ledger, dup_metrics, mut dup_rng) = run(Some(duplicating));

        // Delivering a message twice is delivering it once: nothing a
        // duplicate-only wire does may reach the protocol layer.
        prop_assert_eq!(&dup_report, &base_report);
        prop_assert_eq!(
            dup_report.final_error.to_bits(),
            base_report.final_error.to_bits()
        );
        prop_assert_eq!(dup_report.transmissions, base_report.transmissions);
        prop_assert_eq!(dup_metrics, base_metrics);
        for _ in 0..4 {
            prop_assert_eq!(base_rng.next_u64(), dup_rng.next_u64());
        }
        // Only the ledger sees the copies: every original send is mirrored,
        // every injected copy is counted, nothing is dropped or retried.
        prop_assert!(dup_ledger.duplicated > 0);
        prop_assert_eq!(dup_ledger.sent - dup_ledger.duplicated, base_ledger.sent);
        prop_assert_eq!(dup_ledger.dropped, 0);
        prop_assert_eq!(dup_ledger.retried, 0);
        prop_assert_eq!(dup_ledger.rounds_abandoned, 0);
    }
}
