//! Telemetry isolation pins for the observability subsystem.
//!
//! The telemetry layer is strictly additive, split along the repo's
//! reproducibility equality line:
//!
//! * **No probe, no telemetry.** An unprobed run goes through the `NoProbe`
//!   monomorphization (engine) or an untaken `Option::None` branch (net
//!   scheduler, runner) and must be **bit-identical** to the pre-telemetry
//!   code: same `EngineReport` (reason, ticks, simulation-time bits,
//!   transmissions, every trace point), same scenario reports, and the same
//!   RNG end states — the telemetry twin of `tests/fault_parity.rs`.
//! * **A probe observes, it never steers.** Attaching a probe must not change
//!   any of the above either: event content derives only from simulation
//!   state, never from the wall clock, and no probe branch consumes RNG.
//! * **The event stream is deterministic.** Rendered through `JsonlSink`, a
//!   probed run's stream is byte-identical across reruns and across engine
//!   thread counts (parallel trials buffer per-trial and replay in trial
//!   order; the parallel engine emits at the same logical positions as the
//!   sequential loop).

use geogossip::builtin_runner;
use geogossip::core::prelude::*;
use geogossip::graph::GeometricGraph;
use geogossip::net::{GeographicNet, NetScheduler};
use geogossip::sim::scenario::ScenarioSpec;
use geogossip::sim::transport::{LatencyModel, ReliabilitySpec};
use geogossip::sim::{AsyncEngine, EngineReport, ParallelSpec, StopCondition, TransportSpec};
use geogossip::telemetry::{Event, EventBuffer, JsonlSink};
use geogossip_geometry::sampling::sample_unit_square;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn graph(n: usize, seed: u64) -> GeometricGraph {
    let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let radius = geogossip_geometry::connectivity_radius(n, 2.0).min(0.49);
    GeometricGraph::build_with_topology(pts, radius, geogossip_geometry::Topology::UnitSquare)
}

/// Runs `build_protocol`'s instance unprobed and probed (an `EventBuffer`
/// attached), from identically seeded RNGs, and asserts the engine reports
/// and RNG end states match bit-for-bit. Returns the recorded events.
fn assert_probe_is_pure_observer<P, F>(
    n: usize,
    stop: StopCondition,
    run_seed: u64,
    mut build_protocol: F,
) -> Vec<Event>
where
    P: geogossip::sim::Activation,
    F: FnMut() -> P,
{
    let mut rng_bare = ChaCha8Rng::seed_from_u64(run_seed);
    let mut rng_probed = rng_bare.clone();

    let mut bare_protocol = build_protocol();
    let bare: EngineReport = AsyncEngine::new(n).run(&mut bare_protocol, stop, &mut rng_bare);

    let mut buffer = EventBuffer::new();
    let mut probed_protocol = build_protocol();
    let probed: EngineReport =
        AsyncEngine::new(n).run_probed(&mut probed_protocol, stop, &mut rng_probed, &mut buffer);

    assert_eq!(bare, probed, "EngineReports diverged under a probe");
    assert_eq!(
        bare.time.to_bits(),
        probed.time.to_bits(),
        "simulation time not bit-identical"
    );
    for _ in 0..4 {
        assert_eq!(
            rng_bare.next_u64(),
            rng_probed.next_u64(),
            "protocol RNG consumption diverged under a probe"
        );
    }
    assert!(!buffer.is_empty(), "probed engine run must emit events");
    buffer.into_events()
}

#[test]
fn engine_probe_is_a_pure_observer_and_emits_one_event_per_tick() {
    let n = 96;
    let g = graph(n, 7);
    let values = InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(0x5fa));
    let stop = StopCondition::at_epsilon(0.05).with_max_ticks(400_000);

    for (seed, build) in [
        (0x11u64, 0usize), // pairwise
        (0x22, 1),         // geographic
        (0x33, 2),         // affine
    ] {
        let events = match build {
            0 => assert_probe_is_pure_observer(n, stop, seed, || {
                PairwiseGossip::new(&g, values.clone()).expect("valid instance")
            }),
            1 => assert_probe_is_pure_observer(n, stop, seed, || {
                GeographicGossip::new(&g, values.clone()).expect("valid instance")
            }),
            _ => assert_probe_is_pure_observer(n, stop, seed, || {
                AffineStateMachine::practical(&g, values.clone()).expect("valid instance")
            }),
        };
        // One TickCommitted per tick, in tick order, plus exactly one
        // convergence crossing for a converging run.
        let ticks: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::TickCommitted { tick, .. } => Some(*tick),
                _ => None,
            })
            .collect();
        assert!(ticks.windows(2).all(|w| w[1] == w[0] + 1));
        let crossings = events
            .iter()
            .filter(|e| matches!(e, Event::ConvergenceCrossed { .. }))
            .count();
        assert_eq!(crossings, 1, "converging run emits one crossing");
    }
}

#[test]
fn parallel_engine_probe_matches_sequential_stream_and_report() {
    let n = 96;
    let g = graph(n, 9);
    let values = InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(0x9fa));
    let stop = StopCondition::at_epsilon(0.05).with_max_ticks(400_000);

    let run_sequential = || {
        let mut rng = ChaCha8Rng::seed_from_u64(0x44);
        let mut protocol = GeographicGossip::new(&g, values.clone()).expect("valid instance");
        let mut buffer = EventBuffer::new();
        let report = AsyncEngine::new(n).run_probed(&mut protocol, stop, &mut rng, &mut buffer);
        (report, buffer)
    };
    let run_parallel = |threads: usize| {
        let mut rng = ChaCha8Rng::seed_from_u64(0x44);
        let mut protocol = GeographicGossip::new(&g, values.clone()).expect("valid instance");
        let mut buffer = EventBuffer::new();
        let report = AsyncEngine::new(n).run_parallel_probed(
            &mut protocol,
            stop,
            &mut rng,
            ParallelSpec::with_threads(threads),
            &mut buffer,
        );
        (report, buffer)
    };

    let (seq_report, seq_events) = run_sequential();
    for threads in [1usize, 4] {
        let (par_report, par_events) = run_parallel(threads);
        assert_eq!(seq_report, par_report, "threads={threads}");
        assert_eq!(
            seq_events, par_events,
            "event stream diverged at threads={threads}"
        );
    }
}

#[test]
fn net_scheduler_probe_is_a_pure_observer() {
    let n = 128;
    let g = graph(n, 12);
    let values = InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(0xcfa));
    let stop = StopCondition::at_epsilon(0.1).with_max_ticks(100_000);

    let run = |probe: Option<&mut EventBuffer>| {
        let mut actors = GeographicNet::new(&g, values.clone()).expect("valid actors");
        let mut rng = ChaCha8Rng::seed_from_u64(0x55);
        let mut net_rng = ChaCha8Rng::seed_from_u64(0x56);
        let (report, ledger) = match probe {
            Some(buffer) => NetScheduler::new(n).run_wire_probed(
                &mut actors,
                stop,
                LatencyModel::Instant,
                ReliabilitySpec {
                    drop: 0.2,
                    duplicate: 0.05,
                    ..ReliabilitySpec::default()
                },
                None,
                &mut rng,
                &mut net_rng,
                Some(buffer),
            ),
            None => NetScheduler::new(n).run_wire(
                &mut actors,
                stop,
                LatencyModel::Instant,
                ReliabilitySpec {
                    drop: 0.2,
                    duplicate: 0.05,
                    ..ReliabilitySpec::default()
                },
                None,
                &mut rng,
                &mut net_rng,
            ),
        };
        (report, ledger, rng.next_u64(), net_rng.next_u64())
    };

    let (bare_report, bare_ledger, bare_rng, bare_net_rng) = run(None);
    let mut buffer = EventBuffer::new();
    let (probed_report, probed_ledger, probed_rng, probed_net_rng) = run(Some(&mut buffer));

    assert_eq!(bare_report, probed_report, "net reports diverged");
    assert_eq!(
        bare_report.time.to_bits(),
        probed_report.time.to_bits(),
        "net simulation time not bit-identical"
    );
    assert_eq!(bare_ledger, probed_ledger, "message ledgers diverged");
    assert_eq!(bare_rng, probed_rng, "protocol RNG diverged");
    assert_eq!(bare_net_rng, probed_net_rng, "net RNG diverged");

    // The lossy wire must surface its activity in the stream, and the
    // message events must reconcile with the ledger exactly.
    let events = buffer.into_events();
    let count = |f: fn(&Event) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    assert_eq!(
        count(|e| matches!(e, Event::MessageDispatched { .. })),
        probed_ledger.sent,
        "one dispatch event per wire copy (duplicates count into `sent`)"
    );
    assert_eq!(
        count(|e| matches!(e, Event::MessageDropped { .. })),
        probed_ledger.dropped
    );
    assert_eq!(
        count(|e| matches!(e, Event::MessageDelivered { .. })),
        probed_ledger.delivered
    );
    assert_eq!(
        count(|e| matches!(e, Event::MessageRetried { .. })),
        probed_ledger.retried
    );
    assert!(count(|e| matches!(e, Event::RouteResolved { .. })) > 0);
}

/// Renders a probed scenario run to JSONL bytes through the real sink.
fn probed_stream(runner: &geogossip::sim::scenario::Runner, spec: &ScenarioSpec) -> Vec<u8> {
    let mut sink = JsonlSink::new(Vec::new());
    let report = runner.run_probed(spec, &mut sink).expect("probed run");
    let unprobed = runner.run(spec).expect("unprobed run");
    assert_eq!(
        report, unprobed,
        "`{}`: probed scenario report diverged from the unprobed run",
        spec.name
    );
    sink.finish().expect("in-memory sink cannot fail")
}

#[test]
fn scenario_streams_are_byte_identical_across_reruns_and_thread_counts() {
    let runner = builtin_runner();
    let mut spec = ScenarioSpec::standard("geographic", 96, 0.1)
        .with_trials(3)
        .with_seed(63);
    spec.stop = spec.stop.with_max_ticks(400_000);

    let baseline = probed_stream(&runner, &spec);
    assert!(!baseline.is_empty());
    assert_eq!(
        probed_stream(&runner, &spec),
        baseline,
        "rerun must be byte-identical"
    );
    for threads in [1usize, 4] {
        let mut threaded = spec.clone();
        threaded.parallelism = Some(ParallelSpec::with_threads(threads));
        assert_eq!(
            probed_stream(&runner, &threaded),
            baseline,
            "stream diverged at threads={threads}"
        );
    }

    // Trial brackets arrive in trial order even though trials run in
    // parallel: trial-started 0 … trial-finished 0 … trial-started 1 ….
    let text = String::from_utf8(baseline).expect("JSONL is UTF-8");
    let order: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"trial-started\"") || l.contains("\"trial-finished\""))
        .collect();
    assert_eq!(order.len(), 6);
    for (i, line) in order.iter().enumerate() {
        let kind = if i % 2 == 0 {
            "trial-started"
        } else {
            "trial-finished"
        };
        assert!(
            line.contains(kind) && line.contains(&format!("\"trial\":{}", i / 2)),
            "line {i} out of order: {line}"
        );
    }
}

#[test]
fn transport_scenario_streams_are_byte_identical_across_reruns() {
    let runner = builtin_runner();
    let mut spec = ScenarioSpec::standard("geographic", 96, 0.1)
        .with_trials(2)
        .with_seed(64)
        .with_transport(TransportSpec::default());
    spec.stop = spec.stop.with_max_ticks(100_000);

    let baseline = probed_stream(&runner, &spec);
    assert_eq!(
        probed_stream(&runner, &spec),
        baseline,
        "transport rerun must be byte-identical"
    );
    let text = String::from_utf8(baseline).expect("JSONL is UTF-8");
    assert!(text.contains("\"route-resolved\""));
    assert!(text.contains("\"message-dispatched\""));
    assert!(text.contains("\"message-delivered\""));
}

#[test]
fn unprobed_scenario_runs_carry_no_telemetry_residue() {
    // The public `run` path and the probed path with the probe absent must
    // agree bit-for-bit with each other — and the report JSON (the equality
    // surface) must not mention telemetry at all: phase laps live outside
    // the serialized document.
    let runner = builtin_runner();
    let mut spec = ScenarioSpec::standard("pairwise", 96, 0.1)
        .with_trials(2)
        .with_seed(65);
    spec.stop = spec.stop.with_max_ticks(2_000_000);

    let first = runner.run(&spec).expect("runs");
    let second = runner.run(&spec).expect("runs again");
    assert_eq!(first, second);
    let json = first.to_json();
    assert!(
        !json.contains("phases"),
        "phase laps leaked into report JSON"
    );
    // But the in-process report does carry the laps, for the CLI timing line
    // and the telemetry sinks.
    assert!(first.trials.iter().all(|t| !t.phases.is_empty()));
    let totals = first.phase_totals();
    assert_eq!(
        totals.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
        vec!["graph", "field", "build", "engine"]
    );
}
