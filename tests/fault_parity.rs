//! Fault-stream isolation pins for the fault-injection subsystem.
//!
//! The fault model is strictly additive: a spec with no `faults` key, a spec
//! carrying an explicit all-default `faults` object, and a raw protocol
//! wrapped in [`FaultyActivation`] with a default [`FaultSpec`] must all be
//! **bit-identical** to today's engine — same `EngineReport` (reason, ticks,
//! simulation time, transmissions, final error, every trace point), same
//! scenario reports, and the same protocol-RNG end state — across protocols
//! and topologies. All fault randomness comes from the dedicated
//! `(seed, trial, "faults")` stream, so enabling faults never perturbs the
//! placement, field, or protocol draws, and a faulty run is reproducible
//! from its spec alone.

use geogossip::analysis::json::JsonValue;
use geogossip::core::prelude::*;
use geogossip::core::registry::builtin_runner;
use geogossip::graph::GeometricGraph;
use geogossip::sim::scenario::ScenarioSpec;
use geogossip::sim::{AsyncEngine, EngineReport, FaultSpec, FaultyActivation, StopCondition};
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Topology;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn graph(n: usize, topology: Topology, seed: u64) -> GeometricGraph {
    let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let radius = geogossip_geometry::connectivity_radius(n, 2.0).min(0.49);
    GeometricGraph::build_with_topology(pts, radius, topology)
}

/// Runs `build_protocol`'s instance bare and wrapped in a default-spec
/// [`FaultyActivation`], from identically seeded protocol RNGs, and asserts
/// the engine reports and RNG end states match bit-for-bit. This is the
/// engine-level statement that the wrapper is a no-op when no fault is
/// configured — the runner skips the wrapper entirely in that case, and this
/// pin keeps the two paths interchangeable.
fn assert_default_wrap_is_identity<'a, P, F>(
    n: usize,
    stop: StopCondition,
    run_seed: u64,
    mut build_protocol: F,
) where
    P: geogossip::sim::Activation + 'a,
    F: FnMut() -> P,
{
    let mut rng_bare = ChaCha8Rng::seed_from_u64(run_seed);
    let mut rng_wrapped = rng_bare.clone();

    let mut bare_protocol = build_protocol();
    let bare: EngineReport = AsyncEngine::new(n).run(&mut bare_protocol, stop, &mut rng_bare);

    let spec = FaultSpec::default();
    let mut wrapped_protocol = FaultyActivation::new(
        Box::new(build_protocol()),
        &spec,
        n,
        ChaCha8Rng::seed_from_u64(run_seed ^ 0xfa17),
    );
    let wrapped: EngineReport =
        AsyncEngine::new(n).run(&mut wrapped_protocol, stop, &mut rng_wrapped);

    assert_eq!(
        bare, wrapped,
        "EngineReports diverged under a default-fault wrapper"
    );
    assert_eq!(
        bare.time.to_bits(),
        wrapped.time.to_bits(),
        "simulation time not bit-identical"
    );
    for _ in 0..4 {
        assert_eq!(
            rng_bare.next_u64(),
            rng_wrapped.next_u64(),
            "protocol RNG consumption diverged"
        );
    }
    assert_eq!(wrapped.transmissions, bare.transmissions);
}

#[test]
fn default_fault_wrapper_is_an_engine_level_identity() {
    for (seed, topology) in [(7u64, Topology::UnitSquare), (8, Topology::Torus)] {
        let n = 96;
        let g = graph(n, topology, seed);
        let values =
            InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(seed ^ 0x5fa));
        let stop = StopCondition::at_epsilon(0.05).with_max_ticks(400_000);

        assert_default_wrap_is_identity(n, stop, seed ^ 0x11, || {
            PairwiseGossip::new(&g, values.clone()).expect("valid instance")
        });
        assert_default_wrap_is_identity(n, stop, seed ^ 0x22, || {
            GeographicGossip::new(&g, values.clone()).expect("valid instance")
        });
        assert_default_wrap_is_identity(n, stop, seed ^ 0x33, || {
            AffineStateMachine::practical(&g, values.clone()).expect("valid instance")
        });
    }
}

/// Renders `spec` to JSON, splices in an explicit `faults` object, and parses
/// it back. Decoding must land on the very same spec when the object carries
/// only default values.
fn respec_with_faults_json(spec: &ScenarioSpec, faults: JsonValue) -> ScenarioSpec {
    let mut doc = JsonValue::parse(&spec.to_json()).expect("spec renders valid JSON");
    match &mut doc {
        JsonValue::Object(entries) => entries.push(("faults".into(), faults)),
        _ => panic!("spec JSON is an object"),
    }
    ScenarioSpec::from_json(&doc.render()).expect("spec with explicit faults parses")
}

#[test]
fn explicit_default_faults_produce_bit_identical_reports() {
    let runner = builtin_runner();
    for name in ["pairwise", "geographic", "affine-state-machine"] {
        for surface in [Topology::UnitSquare, Topology::Torus] {
            let mut base = ScenarioSpec::standard(name, 96, 0.1)
                .with_trials(2)
                .with_seed(61);
            base.topology.surface = surface;
            base.stop = base.stop.with_max_ticks(2_000_000);

            // Two explicit spellings of "no faults": an empty object and an
            // all-default drop rate. Both must decode to the keyless spec.
            let empty = respec_with_faults_json(&base, JsonValue::Object(vec![]));
            let zero_drop = respec_with_faults_json(
                &base,
                JsonValue::Object(vec![("drop-rate".into(), JsonValue::Number(0.0))]),
            );
            assert_eq!(
                empty, base,
                "{name}/{surface:?}: `faults: {{}}` decodes to the bare spec"
            );
            assert_eq!(
                zero_drop, base,
                "{name}/{surface:?}: zero drop-rate is the default"
            );

            let bare_report = runner.run(&base).expect("bare spec runs");
            let empty_report = runner.run(&empty).expect("explicit-default spec runs");
            // `TrialCost` equality covers converged/transmissions/rounds/
            // final-error bits/trace/metrics (wall-clock excluded); in
            // particular the explicit-default run must carry NO fault metrics.
            assert_eq!(
                bare_report, empty_report,
                "{name}/{surface:?}: explicit default faults changed the run"
            );
            assert!(bare_report
                .trials
                .iter()
                .all(|t| t.metric("dropped_activations").is_none()));
        }
    }
}

#[test]
fn faulty_runs_are_reproducible_and_leave_fault_free_streams_untouched() {
    let runner = builtin_runner();
    let mut base = ScenarioSpec::standard("pairwise", 96, 0.1)
        .with_trials(2)
        .with_seed(62);
    base.stop = base.stop.with_max_ticks(4_000_000);
    let lossy = base.clone().with_faults(FaultSpec {
        drop_rate: 0.25,
        ..FaultSpec::default()
    });

    // Determinism: the same lossy spec twice is bit-identical.
    let first = runner.run(&lossy).expect("lossy spec runs");
    let second = runner.run(&lossy).expect("lossy spec runs again");
    assert_eq!(
        first, second,
        "lossy runs must be reproducible from the spec"
    );

    // Isolation: faults draw from their own stream, so the lossy run walks
    // the same graph and values — every exchange that does land is the same
    // convex average the fault-free run would have made, and the lossy run
    // can only need MORE transmissions to hit the same epsilon.
    let bare = runner.run(&base).expect("bare spec runs");
    for (lossy_trial, bare_trial) in first.trials.iter().zip(&bare.trials) {
        assert!(lossy_trial.converged && bare_trial.converged);
        assert!(
            lossy_trial.transmissions.total() > bare_trial.transmissions.total(),
            "drops must inflate the transmission bill: lossy {} vs bare {}",
            lossy_trial.transmissions.total(),
            bare_trial.transmissions.total()
        );
        assert!(lossy_trial.metric("dropped_activations").unwrap_or(0.0) > 0.0);
    }
}
