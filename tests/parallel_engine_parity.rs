//! Three-way parity pin for intra-trial parallelism.
//!
//! `AsyncEngine::run_parallel` (pre-drawn tick batches, conflict-partitioned
//! waves, batch-wide concurrent route resolution) must be **bit-identical** to
//! both `AsyncEngine::run` and the preserved pre-overhaul loop
//! `AsyncEngine::run_reference` — same `EngineReport` (reason, ticks,
//! simulation time, transmissions, final error, every trace point), same
//! simulation-time bits, and same RNG end state — at *every* thread count and
//! batch size, including a single thread and a batch of one. Parallelism is an
//! execution strategy here, never a semantics change; this file is the pin
//! that keeps it that way.

use geogossip::core::prelude::*;
use geogossip::graph::GeometricGraph;
use geogossip::sim::{AsyncEngine, BatchActivation, EngineReport, ParallelSpec, StopCondition};
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Topology;
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Thread counts exercised by the deterministic sweeps: the degenerate single
/// worker, a small even split, and a prime that never divides the batch.
const THREADS: [usize; 3] = [1, 2, 7];
/// Batch sizes: one tick per batch (maximum rewind pressure), a mid-size
/// batch, and one larger than most whole runs (a single draw covers the run).
const BATCHES: [usize; 3] = [1, 64, 4096];

/// Runs `build_protocol`'s instance through all three engine paths from
/// identically seeded RNGs and asserts the reports and RNG end states match.
fn assert_parallel_parity<'a, P, F>(
    n: usize,
    stop: StopCondition,
    run_seed: u64,
    par: ParallelSpec,
    mut build_protocol: F,
) where
    P: BatchActivation + 'a,
    F: FnMut() -> P,
{
    let mut rng_parallel = ChaCha8Rng::seed_from_u64(run_seed);
    let mut rng_sequential = rng_parallel.clone();
    let mut rng_reference = rng_parallel.clone();

    let mut parallel_protocol = build_protocol();
    let parallel: EngineReport =
        AsyncEngine::new(n).run_parallel(&mut parallel_protocol, stop, &mut rng_parallel, par);

    let mut sequential_protocol = build_protocol();
    let sequential: EngineReport =
        AsyncEngine::new(n).run(&mut sequential_protocol, stop, &mut rng_sequential);

    let mut reference_protocol = build_protocol();
    let reference: EngineReport =
        AsyncEngine::new(n).run_reference(&mut reference_protocol, stop, &mut rng_reference);

    assert_eq!(
        parallel, sequential,
        "parallel vs sequential EngineReports diverged ({par:?})"
    );
    assert_eq!(
        parallel, reference,
        "parallel vs reference EngineReports diverged ({par:?})"
    );
    assert_eq!(
        parallel.time.to_bits(),
        sequential.time.to_bits(),
        "simulation time not bit-identical ({par:?})"
    );
    assert_eq!(
        parallel_protocol.metrics(),
        sequential_protocol.metrics(),
        "protocol metrics diverged ({par:?})"
    );
    for _ in 0..4 {
        let expected = rng_sequential.next_u64();
        assert_eq!(
            rng_parallel.next_u64(),
            expected,
            "parallel RNG consumption diverged ({par:?})"
        );
        assert_eq!(
            rng_reference.next_u64(),
            expected,
            "reference RNG consumption diverged"
        );
    }
}

fn graph(n: usize, c: f64, topology: Topology, seed: u64) -> GeometricGraph {
    let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let radius = geogossip_geometry::connectivity_radius(n, c).min(0.49);
    GeometricGraph::build_with_topology(pts, radius, topology)
}

/// The full deterministic cross: both protocols × both topologies × every
/// thread count × every batch size, converging stop conditions.
#[test]
fn thread_and_batch_cross_is_bit_identical() {
    for (torus, topology) in [(0u64, Topology::UnitSquare), (1, Topology::Torus)] {
        let n = 112;
        let g = graph(n, 2.0, topology, 21 + torus);
        let spike = InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(5 + torus));
        let bimodal =
            InitialCondition::Bimodal.generate(n, &mut ChaCha8Rng::seed_from_u64(6 + torus));
        let stop = StopCondition::at_epsilon(0.05).with_max_ticks(40_000);
        for threads in THREADS {
            for batch in BATCHES {
                let par = ParallelSpec::with_threads(threads).with_batch(batch);
                assert_parallel_parity(n, stop, 77 ^ torus, par, || {
                    GeographicGossip::new(&g, spike.clone()).expect("valid instance")
                });
                assert_parallel_parity(n, stop, 78 ^ torus, par, || {
                    PairwiseGossip::new(&g, bimodal.clone()).expect("valid instance")
                });
            }
        }
    }
}

/// Stops that land mid-batch (tick caps and transmission budgets that are not
/// multiples of the batch size) must rewind the RNG to the committed prefix.
#[test]
fn mid_batch_stops_leave_the_sequential_rng_state() {
    let n = 96;
    let g = graph(n, 2.0, Topology::UnitSquare, 8);
    let values = InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(9));
    // Caps chosen to be coprime with every batch size above.
    for max_ticks in [1u64, 97, 1013] {
        let stop = StopCondition::at_epsilon(1e-12).with_max_ticks(max_ticks);
        for batch in BATCHES {
            let par = ParallelSpec::with_threads(7).with_batch(batch);
            assert_parallel_parity(n, stop, 31, par, || {
                GeographicGossip::new(&g, values.clone()).expect("valid instance")
            });
        }
    }
    for max_tx in [50u64, 733, 4999] {
        let stop = StopCondition::at_epsilon(1e-12)
            .with_max_ticks(100_000)
            .with_max_transmissions(max_tx);
        for batch in BATCHES {
            let par = ParallelSpec::with_threads(2).with_batch(batch);
            assert_parallel_parity(n, stop, 32, par, || {
                PairwiseGossip::new(&g, values.clone()).expect("valid instance")
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Geographic gossip (routing-heavy, shares the RNG with the clock) on
    /// both topologies, with thread count and batch size drawn adversarially.
    #[test]
    fn geographic_parallel_runs_are_bit_identical(
        n in 24usize..160,
        seed in 0u64..500,
        torus in 0usize..2,
        epsilon in 0.02f64..0.6,
        max_ticks in 200u64..20_000,
        threads in 1usize..9,
        batch_index in 0usize..3,
    ) {
        let topology = if torus == 1 { Topology::Torus } else { Topology::UnitSquare };
        let g = graph(n, 2.0, topology, seed);
        let values =
            InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(seed ^ 0xf1e1d));
        let stop = StopCondition::at_epsilon(epsilon).with_max_ticks(max_ticks);
        let par = ParallelSpec::with_threads(threads).with_batch(BATCHES[batch_index]);
        assert_parallel_parity(n, stop, seed ^ 0x9e0, par, || {
            GeographicGossip::new(&g, values.clone()).expect("valid instance")
        });
    }

    /// Pairwise gossip, including transmission-budget stops.
    #[test]
    fn pairwise_parallel_runs_are_bit_identical(
        n in 16usize..200,
        seed in 0u64..500,
        epsilon in 0.01f64..0.5,
        max_tx in 100u64..50_000,
        threads in 1usize..9,
        batch_index in 0usize..3,
    ) {
        let g = graph(n, 2.0, Topology::UnitSquare, seed);
        let values =
            InitialCondition::Bimodal.generate(n, &mut ChaCha8Rng::seed_from_u64(seed ^ 0xb1));
        let stop = StopCondition::at_epsilon(epsilon)
            .with_max_ticks(100_000)
            .with_max_transmissions(max_tx);
        let par = ParallelSpec::with_threads(threads).with_batch(BATCHES[batch_index]);
        assert_parallel_parity(n, stop, seed ^ 0x7a17, par, || {
            PairwiseGossip::new(&g, values.clone()).expect("valid instance")
        });
    }
}

/// The squared-domain stop pre-filter runs inside the commit replay too:
/// knife-edge epsilons harvested from a reference run's own error trajectory
/// (exact crossings, then ±1 ulp) must stop the parallel engine at the same
/// tick as both sequential paths.
#[test]
fn knife_edge_epsilons_stop_the_parallel_engine_at_the_same_tick() {
    let n = 64;
    let g = graph(n, 2.0, Topology::UnitSquare, 42);
    let values = InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(43));

    let mut probe = GeographicGossip::new(&g, values.clone()).expect("valid instance");
    let report = AsyncEngine::new(n).sample_every(13).run_reference(
        &mut probe,
        StopCondition::at_epsilon(0.05).with_max_ticks(20_000),
        &mut ChaCha8Rng::seed_from_u64(44),
    );
    let harvested: Vec<f64> = report
        .trace
        .points()
        .iter()
        .map(|p| p.relative_error)
        .filter(|e| *e > 0.0 && e.is_finite())
        .collect();
    assert!(harvested.len() >= 4, "probe run produced too few samples");

    for &error in harvested.iter().take(8) {
        for epsilon in [
            error,
            f64::from_bits(error.to_bits() + 1),
            f64::from_bits(error.to_bits() - 1),
        ] {
            let stop = StopCondition::at_epsilon(epsilon).with_max_ticks(20_000);
            for batch in BATCHES {
                let par = ParallelSpec::with_threads(7).with_batch(batch);
                assert_parallel_parity(n, stop, 44, par, || {
                    GeographicGossip::new(&g, values.clone()).expect("valid instance")
                });
            }
        }
    }
}
