//! Integration tests for the sweep lab (mirroring `tests/scenario_api.rs`):
//!
//! 1. `SweepSpec` round-trips through JSON and hard-errors on unknown keys.
//! 2. Sweep execution is deterministic: a parallel-trials run, a re-run, and
//!    a killed-and-resumed run all produce bit-identical results logs
//!    (modulo wall-clock fields, which are excluded from record equality)
//!    and byte-identical reports.
//! 3. The results log is append-only: resuming never rewrites the bytes a
//!    previous invocation committed.

use geogossip::core::registry::builtin_runner;
use geogossip::lab::{
    run_sweep, run_sweep_probed, ResultsLog, SweepAggregator, SweepOptions, SweepReport,
};
use geogossip::sim::scenario::{derive_cell_seed, ProtocolSpec, RadiusSpec, SweepSpec};
use geogossip::telemetry::{Event, EventBuffer};
use geogossip_geometry::Topology;
use std::path::PathBuf;

fn tiny_sweep() -> SweepSpec {
    SweepSpec::new(
        "it-sweep",
        vec![48, 96],
        vec![
            ProtocolSpec::named("pairwise"),
            ProtocolSpec::named("geographic"),
        ],
    )
    .with_trials(2)
    .with_epsilons(vec![0.3])
    .with_seed(411)
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("geogossip-sweep-it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn sweep_spec_round_trips_through_json() {
    // A sweep touching every axis branch: multiple placements, radii,
    // surfaces, epsilons, a protocol with params, disabled transmission cap.
    let mut sweep = tiny_sweep().with_epsilons(vec![0.1, 0.3]);
    sweep.protocols.push(
        ProtocolSpec::named("affine-idealized")
            .with_number("coefficient-fraction", 0.3)
            .with_text("local-averaging", "exact"),
    );
    sweep.surfaces = vec![Topology::UnitSquare, Topology::Torus];
    sweep.radii = vec![
        RadiusSpec::ConnectivityConstant(1.5),
        RadiusSpec::Absolute(0.25),
    ];
    sweep.max_transmissions = None;

    let json = sweep.to_json();
    let parsed = SweepSpec::from_json(&json).expect("round trip parses");
    assert_eq!(parsed, sweep);
    assert_eq!(
        parsed.to_json(),
        json,
        "JSON → sweep → JSON is a fixed point"
    );

    // Unknown keys are hard errors at every level of the schema.
    for (bad, fragment) in [
        (
            json.replace("\"trials\"", "\"triais\""),
            "unknown sweep key",
        ),
        (json.replace("\"epsilon\"", "\"epsilonn\""), "unknown axis"),
    ] {
        let err = SweepSpec::from_json(&bad).expect_err("unknown key accepted");
        assert!(
            err.to_string().contains(fragment),
            "expected `{fragment}` in `{err}`"
        );
    }
}

#[test]
fn expanded_cells_reproduce_the_documented_seed_derivation() {
    let sweep = tiny_sweep();
    for cell in sweep.expand() {
        assert_eq!(cell.spec.seed, derive_cell_seed(sweep.seed, cell.index));
        assert!(cell.spec.name.starts_with("it-sweep/c"));
    }
}

#[test]
fn parallel_rerun_and_resumed_runs_are_bit_identical() {
    let runner = builtin_runner();
    let sweep = tiny_sweep();

    // Reference: one uninterrupted in-memory run (trials rayon-parallel
    // inside each cell).
    let reference =
        run_sweep(&runner, &sweep, None, &SweepOptions::default(), |_| {}).expect("sweep runs");
    assert!(reference.complete());
    assert_eq!(reference.records.len(), 4);

    // A re-run is bit-identical (record equality already excludes the
    // wall-clock fields).
    let rerun =
        run_sweep(&runner, &sweep, None, &SweepOptions::default(), |_| {}).expect("sweep re-runs");
    assert_eq!(reference.records, rerun.records);

    // Killed-after-1-cell, resumed-in-two-steps run against a log.
    let log = temp_path("resume.jsonl");
    run_sweep(
        &runner,
        &sweep,
        Some(&log),
        &SweepOptions {
            resume: false,
            max_cells: Some(1),
        },
        |_| {},
    )
    .expect("partial run");
    let bytes_after_kill = std::fs::read(&log).expect("log written");
    run_sweep(
        &runner,
        &sweep,
        Some(&log),
        &SweepOptions {
            resume: true,
            max_cells: Some(2),
        },
        |_| {},
    )
    .expect("first resume");
    let resumed = run_sweep(
        &runner,
        &sweep,
        Some(&log),
        &SweepOptions {
            resume: true,
            max_cells: None,
        },
        |_| {},
    )
    .expect("final resume");
    assert!(resumed.complete());
    assert_eq!(resumed.skipped, 3);
    assert_eq!(resumed.records, reference.records);

    // Append-only discipline: the bytes committed before the kill are a
    // prefix of the final log.
    let final_bytes = std::fs::read(&log).expect("log read");
    assert!(
        final_bytes.starts_with(&bytes_after_kill),
        "resume rewrote already-committed log bytes"
    );
    // And loading the log back yields the reference records.
    let loaded = ResultsLog::load(&log).expect("log parses");
    assert!(!loaded.dropped_torn_tail);
    assert_eq!(loaded.records, reference.records);

    // The derived report is *byte*-identical between the uninterrupted and
    // the resumed run: the equality-checked report set carries no wall-clock
    // fields at all.
    let render = |records: &[geogossip::lab::CellRecord]| {
        let mut agg = SweepAggregator::new();
        for r in records {
            agg.push(r);
        }
        let report = SweepReport::new("it-sweep", 4, agg.finish());
        (
            report.markdown(),
            report.cells_table().to_csv(),
            report.fits_table().to_csv(),
            report.to_json_value().pretty(),
        )
    };
    assert_eq!(render(&reference.records), render(&resumed.records));

    let _ = std::fs::remove_file(&log);
}

#[test]
fn probed_sweep_brackets_each_executed_cell_with_its_summary() {
    let runner = builtin_runner();
    let sweep = tiny_sweep();

    // The probe is a pure observer: a probed sweep produces the same outcome
    // as the unprobed reference.
    let reference =
        run_sweep(&runner, &sweep, None, &SweepOptions::default(), |_| {}).expect("reference run");
    let mut buffer = EventBuffer::new();
    let probed = run_sweep_probed(
        &runner,
        &sweep,
        None,
        &SweepOptions::default(),
        |_| {},
        &mut buffer,
    )
    .expect("probed run");
    assert_eq!(probed.records, reference.records);

    // Walk the stream: every executed cell is bracketed by cell-started /
    // cell-finished carrying the cell's index and name, with only that cell's
    // trial events in between; the cell-finished counters reconcile with the
    // cell record.
    let mut events = buffer.events().iter();
    for record in &reference.records {
        match events.next() {
            Some(Event::CellStarted { index, name }) => {
                assert_eq!(*index, record.index);
                assert_eq!(*name, record.name);
            }
            other => panic!("expected cell-started for `{}`, got {other:?}", record.name),
        }
        let mut trials_finished = 0u64;
        loop {
            match events.next() {
                Some(Event::CellFinished {
                    index,
                    name,
                    trials,
                    converged_trials,
                    ticks,
                    transmissions,
                }) => {
                    assert_eq!(*index, record.index);
                    assert_eq!(*name, record.name);
                    assert_eq!(*trials, record.trials.len() as u64);
                    assert_eq!(trials_finished, *trials, "trial stream inside the brackets");
                    assert_eq!(
                        *converged_trials,
                        record.trials.iter().filter(|t| t.converged).count() as u64
                    );
                    assert_eq!(*ticks, record.trials.iter().map(|t| t.ticks).sum::<u64>());
                    assert_eq!(
                        *transmissions,
                        record.trials.iter().map(|t| t.transmissions).sum::<u64>()
                    );
                    break;
                }
                Some(Event::CellStarted { name, .. }) => {
                    panic!("cell `{name}` started before `{}` finished", record.name)
                }
                Some(Event::TrialFinished { .. }) => trials_finished += 1,
                Some(_) => {}
                None => panic!("stream ended before cell-finished for `{}`", record.name),
            }
        }
    }
    assert_eq!(events.next(), None, "events past the last cell-finished");

    // A probed rerun records the identical event stream — the sweep layer
    // inherits the byte-determinism contract of the trial layer.
    let mut rerun = EventBuffer::new();
    run_sweep_probed(
        &runner,
        &sweep,
        None,
        &SweepOptions::default(),
        |_| {},
        &mut rerun,
    )
    .expect("probed rerun");
    assert_eq!(buffer, rerun);

    // Cells skipped from a results log emit nothing: resume a half-done log
    // under a probe and only the re-executed cells appear in the stream.
    let log = temp_path("probed-resume.jsonl");
    run_sweep(
        &runner,
        &sweep,
        Some(&log),
        &SweepOptions {
            resume: false,
            max_cells: Some(2),
        },
        |_| {},
    )
    .expect("partial run");
    let mut resumed_buffer = EventBuffer::new();
    let resumed = run_sweep_probed(
        &runner,
        &sweep,
        Some(&log),
        &SweepOptions {
            resume: true,
            max_cells: None,
        },
        |_| {},
        &mut resumed_buffer,
    )
    .expect("probed resume");
    assert_eq!(resumed.skipped, 2);
    assert_eq!(resumed.records, reference.records);
    let started: Vec<u64> = resumed_buffer
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::CellStarted { index, .. } => Some(*index),
            _ => None,
        })
        .collect();
    assert_eq!(started, vec![2, 3], "skipped cells must not emit events");
    let _ = std::fs::remove_file(&log);
}

#[test]
fn torn_log_tail_recovers_on_resume() {
    let runner = builtin_runner();
    let sweep = tiny_sweep();
    let log = temp_path("torn.jsonl");
    run_sweep(
        &runner,
        &sweep,
        Some(&log),
        &SweepOptions {
            resume: false,
            max_cells: Some(2),
        },
        |_| {},
    )
    .expect("partial run");
    // Simulate a kill mid-append: truncate the final line in half.
    let text = std::fs::read_to_string(&log).unwrap();
    let keep = text.len() - text.lines().last().unwrap().len() / 2 - 1;
    std::fs::write(&log, &text[..keep]).unwrap();

    let resumed = run_sweep(
        &runner,
        &sweep,
        Some(&log),
        &SweepOptions {
            resume: true,
            max_cells: None,
        },
        |_| {},
    )
    .expect("resume over torn tail");
    assert!(resumed.recovered_torn_tail);
    assert!(resumed.complete());
    // The torn cell re-ran; results still match an uninterrupted run.
    let reference =
        run_sweep(&runner, &sweep, None, &SweepOptions::default(), |_| {}).expect("reference run");
    assert_eq!(resumed.records, reference.records);
    // The repaired log parses cleanly end to end: the torn fragment was
    // truncated before the resumed appends, so no garbled interior line
    // survives for the *next* resume to choke on.
    let reloaded = ResultsLog::load(&log).expect("repaired log parses cleanly");
    assert!(!reloaded.dropped_torn_tail);
    assert_eq!(reloaded.records, reference.records);
    let _ = std::fs::remove_file(&log);
}
