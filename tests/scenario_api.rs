//! Integration tests for the scenario API redesign:
//!
//! 1. `ScenarioSpec` round-trips through JSON (JSON → spec → JSON).
//! 2. Every built-in protocol resolves by name through the registry and runs.
//! 3. The `Runner` is **bit-identical** to the pre-redesign
//!    `run_protocol_trials` harness for the four comparison protocols — the
//!    legacy path (direct protocol construction and seed derivation, exactly
//!    as the retired `ProtocolKind` match did it) is reimplemented inline
//!    here as the reference.

use geogossip::core::prelude::*;
use geogossip::core::registry::builtin_runner;
use geogossip::geometry::sampling::sample_unit_square;
use geogossip::graph::GeometricGraph;
use geogossip::sim::field::Field;
use geogossip::sim::scenario::{PlacementSpec, ProtocolSpec, RadiusSpec, ScenarioSpec};
use geogossip::sim::{AsyncEngine, EngineReport, SeedStream, StopCondition};
use geogossip_geometry::{Point, Rect, Topology};

#[test]
fn scenario_spec_round_trips_through_json() {
    // A spec touching every schema branch: clustered placement, absolute
    // radius, torus surface, protocol params of all three kinds, a disabled
    // cap.
    let mut spec = ScenarioSpec::standard("affine-recursive", 384, 0.07)
        .with_trials(4)
        .with_seed(99)
        .with_field(Field::Condition(InitialCondition::Uniform));
    spec.name = "round-trip".into();
    spec.topology.placement = PlacementSpec::Clustered {
        clusters: 3,
        spread: 0.1,
    };
    spec.topology.radius = RadiusSpec::Absolute(0.12);
    spec.topology.surface = Topology::Torus;
    spec.protocol = ProtocolSpec::named("affine-recursive")
        .with_number("epsilon-decay", 0.2)
        .with_text("note", "ignored-by-validation-until-built");
    spec.stop.max_transmissions = None;

    let json = spec.to_json();
    let parsed = ScenarioSpec::from_json(&json).expect("round trip parses");
    assert_eq!(parsed, spec);
    assert_eq!(
        parsed.to_json(),
        json,
        "JSON → spec → JSON is a fixed point"
    );

    // Perforated placement too.
    spec.topology.placement = PlacementSpec::Perforated {
        hole: Rect::new(Point::new(0.4, 0.4), Point::new(0.6, 0.6)),
    };
    let reparsed = ScenarioSpec::from_json(&spec.to_json()).expect("perforated parses");
    assert_eq!(reparsed, spec);
}

#[test]
fn every_builtin_protocol_resolves_by_name_and_runs() {
    let runner = builtin_runner();
    let names = runner.factory().names();
    assert!(
        names.len() >= 7,
        "expected the full builtin registry, got {names:?}"
    );
    for name in names {
        // A loose target plus a small tick cap: this asserts resolution and a
        // healthy run, not convergence.
        let mut spec = ScenarioSpec::standard(&name, 128, 0.5);
        spec.stop = spec.stop.with_max_ticks(20_000);
        let report = runner
            .run(&spec)
            .unwrap_or_else(|e| panic!("`{name}` failed to run: {e}"));
        assert_eq!(report.summary.trials, 1);
        assert!(!report.protocol_label.is_empty());
    }
}

/// The pre-redesign cost record, byte-comparable.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LegacyCost {
    converged: bool,
    transmissions: u64,
    rounds: u64,
    final_error_bits: u64,
}

impl LegacyCost {
    fn from_engine(report: &EngineReport) -> Self {
        LegacyCost {
            converged: report.converged(),
            transmissions: report.transmissions.total(),
            rounds: report.ticks,
            final_error_bits: report.final_error.to_bits(),
        }
    }
}

/// The retired `run_protocol` harness, verbatim: standard network at radius
/// constant 1.5, gradient field, per-protocol seed tag folded into the run
/// stream, engine for the tick-driven protocols and `run_until` for the
/// round-based ones.
fn legacy_run_protocol(
    tag: u64,
    n: usize,
    epsilon: f64,
    seeds: &SeedStream,
    trial: u64,
) -> LegacyCost {
    let positions = sample_unit_square(n, &mut seeds.trial("placement", trial));
    let network = GeometricGraph::build_at_connectivity_radius(positions, 1.5);
    let values: Vec<f64> = network.positions().iter().map(|p| p.x).collect();
    let mut rng = seeds.trial("run", trial ^ (tag << 32));
    let stop = StopCondition::at_epsilon(epsilon).with_max_ticks(200_000_000);
    match tag {
        0 => {
            let mut p = PairwiseGossip::new(&network, values).expect("valid instance");
            LegacyCost::from_engine(&AsyncEngine::new(n).run(&mut p, stop, &mut rng))
        }
        1 => {
            let mut p = GeographicGossip::new(&network, values).expect("valid instance");
            LegacyCost::from_engine(&AsyncEngine::new(n).run(&mut p, stop, &mut rng))
        }
        2 | 3 => {
            let config = if tag == 2 {
                RoundBasedConfig::idealized(n)
            } else {
                RoundBasedConfig::practical(n)
            };
            let mut p =
                RoundBasedAffineGossip::new(&network, values, config).expect("valid instance");
            let report = p.run_until(epsilon, &mut rng);
            LegacyCost {
                converged: report.converged,
                transmissions: report.transmissions.total(),
                rounds: report.stats.top_rounds,
                final_error_bits: report.final_error.to_bits(),
            }
        }
        _ => unreachable!("legacy harness had four protocols"),
    }
}

#[test]
fn runner_is_bit_identical_to_the_legacy_harness() {
    let protocols = [
        ("pairwise", 0u64),
        ("geographic", 1),
        ("affine-idealized", 2),
        ("affine-recursive", 3),
    ];
    let (n, epsilon, trials, seed) = (128usize, 0.1f64, 3u64, 20070612u64);
    let runner = builtin_runner();
    let seeds = SeedStream::new(seed);

    for (name, tag) in protocols {
        let spec = ScenarioSpec::standard(name, n, epsilon)
            .with_trials(trials)
            .with_seed(seed);
        assert_eq!(
            runner.factory().seed_tag(name),
            Some(tag),
            "registry seed tag drifted for {name}"
        );
        let report = runner.run(&spec).expect("standard spec runs");
        assert_eq!(report.trials.len(), trials as usize);
        for (trial, cost) in report.trials.iter().enumerate() {
            let legacy = legacy_run_protocol(tag, n, epsilon, &seeds, trial as u64);
            let via_runner = LegacyCost {
                converged: cost.converged,
                transmissions: cost.transmissions.total(),
                rounds: cost.rounds,
                final_error_bits: cost.final_error.to_bits(),
            };
            assert_eq!(
                via_runner, legacy,
                "{name} trial {trial}: runner diverged from the legacy harness"
            );
        }
    }
}

/// Splices a raw `transport` JSON fragment into an otherwise valid spec and
/// parses the result — the spec-level path for transport hard errors.
fn parse_spec_with_transport(transport_json: &str) -> Result<ScenarioSpec, String> {
    let base = ScenarioSpec::standard("pairwise", 64, 0.1).to_json();
    let doc = base
        .trim_end()
        .strip_suffix('}')
        .expect("spec JSON ends with a brace");
    let spliced = format!("{doc},\n  \"transport\": {transport_json}\n}}");
    ScenarioSpec::from_json(&spliced).map_err(|e| e.to_string())
}

/// Unknown keys and malformed shapes under `transport` hard-error at parse
/// time, and every message names the offending spec path — the same contract
/// the `faults` schema pins.
#[test]
fn transport_unknown_keys_and_bad_shapes_hard_error_with_spec_paths() {
    for (bad, fragment) in [
        (r#"{"latencyy": "instant"}"#, "unknown transport key"),
        (r#"[1, 2]"#, "`transport` must be an object"),
        (
            r#"{"latency": "warp"}"#,
            "unknown `transport.latency` model",
        ),
        (
            r#"{"latency": {"fixd": 0.1}}"#,
            "unknown transport.latency key",
        ),
        (
            r#"{"latency": {"fixed": "fast"}}"#,
            "`transport.latency.fixed` must be a number",
        ),
        (
            r#"{"latency": {"exp": {"mena": 0.1}}}"#,
            "unknown transport.latency.exp key",
        ),
        (
            r#"{"reliability": [1, 2]}"#,
            "`transport.reliability` must be an object",
        ),
        (
            r#"{"reliability": {"drp": 0.1}}"#,
            "unknown transport.reliability key",
        ),
        (
            r#"{"reliability": {"drop": "often"}}"#,
            "`transport.reliability.drop` must be a number",
        ),
        (
            r#"{"reliability": {"retry": {"timout": 1.0}}}"#,
            "unknown transport.reliability.retry key",
        ),
        (
            r#"{"reliability": {"retry": {"max-retries": 1.5}}}"#,
            "`transport.reliability.retry.max-retries` must be a non-negative whole number",
        ),
    ] {
        let err = parse_spec_with_transport(bad)
            .expect_err(&format!("spec with transport {bad} was accepted"));
        assert!(
            err.contains(fragment),
            "error for {bad} was `{err}`, expected `{fragment}`"
        );
    }
}

/// Out-of-range latency parameters are rejected by validation with the
/// `transport.latency.…` spec path in the message.
#[test]
fn transport_out_of_range_values_name_the_spec_path() {
    for (bad, path) in [
        (r#"{"latency": {"fixed": -0.5}}"#, "transport.latency.fixed"),
        (
            r#"{"latency": {"exp": {"mean": 0.0}}}"#,
            "transport.latency.exp.mean",
        ),
        (
            r#"{"reliability": {"drop": 1.0}}"#,
            "transport.reliability.drop",
        ),
        (
            r#"{"reliability": {"duplicate": -0.1}}"#,
            "transport.reliability.duplicate",
        ),
        (
            r#"{"reliability": {"retry": {"timeout": 0.0}}}"#,
            "transport.reliability.retry.timeout",
        ),
        (
            r#"{"reliability": {"retry": {"backoff": 0.5}}}"#,
            "transport.reliability.retry.backoff",
        ),
    ] {
        let err = parse_spec_with_transport(bad)
            .expect_err(&format!("spec with transport {bad} was accepted"));
        assert!(err.contains(path), "error for {bad} was `{err}`");
    }
    // The happy paths still parse, for contrast.
    for good in [
        r#"{"latency": "instant"}"#,
        r#"{"latency": {"fixed": 0.5}}"#,
        r#"{"latency": {"exp": {"mean": 0.25}}}"#,
        r#"{"reliability": {"drop": 0.3, "duplicate": 0.05}}"#,
        r#"{"latency": {"fixed": 0.002},
            "reliability": {"drop": 0.1,
                            "retry": {"timeout": 0.5, "backoff": 2.0, "max-retries": 4}}}"#,
    ] {
        let spec = parse_spec_with_transport(good).expect(good);
        assert!(spec.transport.is_some());
    }
}

/// Activation loss (`faults.drop-rate`) cannot be combined with a transport
/// spec — wire loss lives in `transport.reliability.drop` — and the refusal
/// names the key the user must delete. Node churn and stale sensors, by
/// contrast, now run on the net layer.
#[test]
fn transport_refuses_activation_loss_but_runs_churn_and_stale() {
    let runner = geogossip::builtin_runner();
    let mut spec = ScenarioSpec::standard("pairwise", 64, 0.2)
        .with_transport(geogossip::sim::TransportSpec::default());
    spec.stop = spec.stop.with_max_ticks(100_000);
    spec.faults = geogossip::sim::FaultSpec {
        drop_rate: 0.1,
        ..geogossip::sim::FaultSpec::default()
    };
    let err = runner.run(&spec).expect_err("faults + transport accepted");
    let text = err.to_string();
    assert!(text.contains("faults.drop-rate"), "got `{text}`");
    assert!(text.contains("transport.reliability.drop"), "got `{text}`");

    spec.faults = geogossip::sim::FaultSpec {
        stale_fraction: 0.1,
        ..geogossip::sim::FaultSpec::default()
    };
    let report = runner.run(&spec).expect("stale faults + transport run");
    let keys: Vec<&str> = report.trials[0]
        .metrics
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert!(keys.contains(&"stale_nodes"), "got {keys:?}");
}

#[test]
fn torus_scenarios_run_and_use_denser_adjacency() {
    let runner = builtin_runner();
    let mut planar = ScenarioSpec::standard("pairwise", 256, 0.2).with_trials(1);
    let mut torus = planar.clone();
    torus.topology.surface = Topology::Torus;
    planar.name = "planar".into();
    torus.name = "torus".into();
    let reports = runner.run_all(&[planar, torus]).expect("specs run");
    assert!(reports.iter().all(|r| r.all_converged()));
    // Same placement stream; the torus adds seam edges, so pairwise mixing is
    // at least as fast in ticks on average. (Not asserted strictly — just
    // sanity that both produced work.)
    assert!(reports[0].summary.mean_transmissions > 0.0);
    assert!(reports[1].summary.mean_transmissions > 0.0);
}
