//! Property-based tests (proptest) on the workspace's core invariants.
//!
//! These complement the per-crate unit tests by checking the invariants on
//! *arbitrary* inputs: mass conservation of every update rule, geometric
//! consistency of the partition and the spatial grid, contraction of the
//! Lemma-1 dynamics, and correctness of the regression and trace utilities.

use geogossip::analysis::regression::fit_power_law;
use geogossip::core::model::AffineCompleteGraph;
use geogossip::core::update::{
    affine_exchange, cell_sum_exchange, convex_average, AffineCoefficient,
};
use geogossip::geometry::sampling::sample_unit_square;
use geogossip::geometry::{unit_square, PartitionConfig, Point, SquarePartition, UniformGrid};
use geogossip::graph::GeometricGraph;
use geogossip::routing::greedy::route_to_node;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Affine exchanges conserve the pair sum for any finite coefficient and
    /// any finite values.
    #[test]
    fn affine_exchange_conserves_sum(
        xi in -1e6f64..1e6,
        xj in -1e6f64..1e6,
        alpha in -1e3f64..1e3,
    ) {
        let (a, b) = affine_exchange(xi, xj, AffineCoefficient::new(alpha));
        let before = xi + xj;
        let after = a + b;
        prop_assert!((before - after).abs() <= 1e-6 * before.abs().max(1.0));
    }

    /// Convex averaging equals the affine exchange with α = 1/2 and never
    /// leaves the interval spanned by its inputs.
    #[test]
    fn convex_average_is_contained(xi in -1e6f64..1e6, xj in -1e6f64..1e6) {
        let (a, b) = convex_average(xi, xj);
        prop_assert_eq!(a, b);
        prop_assert!(a >= xi.min(xj) - 1e-9 && a <= xi.max(xj) + 1e-9);
    }

    /// Cell-sum exchanges conserve total mass for any positive populations.
    #[test]
    fn cell_sum_exchange_conserves_mass(
        zi in -1e4f64..1e4,
        zj in -1e4f64..1e4,
        ci in 1.0f64..1e4,
        cj in 1.0f64..1e4,
        alpha in 0.0f64..1e3,
    ) {
        let (a, b) = cell_sum_exchange(zi, ci, zj, cj, AffineCoefficient::new(alpha));
        prop_assert!(((a + b) - (zi + zj)).abs() <= 1e-6 * (zi + zj).abs().max(1.0));
    }

    /// The Lemma-1 dynamics conserve the (zero) sum and never increase it,
    /// regardless of the seed and size.
    #[test]
    fn lemma1_dynamics_conserve_zero_sum(n in 2usize..40, seed in 0u64..1000, ticks in 1u64..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut model = AffineCompleteGraph::with_random_alphas(n, &mut rng).unwrap();
        model.set_centered_values((0..n).map(|i| (i * i % 13) as f64).collect()).unwrap();
        model.run(ticks, &mut rng);
        prop_assert!(model.sum().abs() < 1e-6);
    }

    /// Every point of the unit square is assigned to exactly one leaf of the
    /// hierarchical partition, and that leaf geometrically contains it.
    #[test]
    fn partition_assigns_each_point_to_a_containing_leaf(
        n in 2usize..300,
        seed in 0u64..500,
    ) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let partition = SquarePartition::build(&pts, PartitionConfig::practical(n));
        let total: usize = partition.leaves().map(|c| c.members().len()).sum();
        prop_assert_eq!(total, n);
        for leaf in partition.leaves() {
            for &m in leaf.members() {
                prop_assert!(leaf.rect().contains(pts[m]));
            }
        }
    }

    /// The spatial grid's radius queries agree with brute force.
    #[test]
    fn grid_neighbors_match_brute_force(
        n in 1usize..200,
        seed in 0u64..500,
        radius in 0.01f64..0.3,
        qx in 0.0f64..1.0,
        qy in 0.0f64..1.0,
    ) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let grid = UniformGrid::build(unit_square(), &pts, radius);
        let q = Point::new(qx, qy);
        let mut got: Vec<usize> = grid.neighbors_within(&pts, q, radius).collect();
        got.sort_unstable();
        let mut want: Vec<usize> = (0..n).filter(|&i| pts[i].distance(q) <= radius).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Greedy routing never takes more hops than there are nodes, its path is
    /// a walk in the graph, and delivery to an adjacent destination always
    /// succeeds.
    #[test]
    fn greedy_routing_path_is_a_walk(n in 10usize..200, seed in 0u64..300) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
        let src = geogossip::geometry::point::NodeId(0);
        let dst = geogossip::geometry::point::NodeId(n - 1);
        let outcome = route_to_node(&graph, src, dst);
        prop_assert!(outcome.hops < n);
        for w in outcome.path.windows(2) {
            prop_assert!(graph.are_adjacent(w[0], w[1]));
        }
        if graph.are_adjacent(src, dst) {
            prop_assert!(outcome.delivered);
        }
    }

    /// Power-law fits recover the exponent of synthetic power-law data to
    /// within numerical noise, for any exponent and prefactor in a wide range.
    #[test]
    fn power_law_fit_recovers_exponent(k in 0.2f64..3.0, c in 0.1f64..100.0) {
        let xs: Vec<f64> = vec![32.0, 64.0, 128.0, 256.0, 512.0];
        let ys: Vec<f64> = xs.iter().map(|x| c * x.powf(k)).collect();
        let fit = fit_power_law(&xs, &ys).unwrap();
        prop_assert!((fit.exponent - k).abs() < 1e-6);
    }
}
