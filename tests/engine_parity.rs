//! Parity property tests for the overhauled engine tick loop.
//!
//! `AsyncEngine::run` (batched Poisson clock, squared-domain stop pre-filter,
//! strided trace cap) must be **bit-identical** to the preserved pre-overhaul
//! loop `AsyncEngine::run_reference` — same `EngineReport` (reason, ticks,
//! simulation time, transmissions, final error, every trace point) and same
//! RNG consumption (the shared generator ends in the same state) — across
//! protocols, topologies, fields, stop conditions, and stop reasons, as long
//! as the trace stays under the engine's cap. This is the PR 3-style pin that
//! lets the hot loop keep evolving without silently changing results.

use geogossip::core::prelude::*;
use geogossip::graph::GeometricGraph;
use geogossip::sim::{AsyncEngine, EngineReport, StopCondition};
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Topology;
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runs `build_protocol`'s instance through both engine paths from
/// identically seeded RNGs and asserts reports and RNG end states match.
fn assert_parity<'a, P, F>(n: usize, stop: StopCondition, run_seed: u64, mut build_protocol: F)
where
    P: geogossip::sim::Activation + 'a,
    F: FnMut() -> P,
{
    let mut rng_fast = ChaCha8Rng::seed_from_u64(run_seed);
    let mut rng_reference = rng_fast.clone();

    let mut fast_protocol = build_protocol();
    let fast: EngineReport = AsyncEngine::new(n).run(&mut fast_protocol, stop, &mut rng_fast);

    let mut reference_protocol = build_protocol();
    let reference: EngineReport =
        AsyncEngine::new(n).run_reference(&mut reference_protocol, stop, &mut rng_reference);

    assert_eq!(fast, reference, "EngineReports diverged");
    assert_eq!(
        fast.time.to_bits(),
        reference.time.to_bits(),
        "simulation time not bit-identical"
    );
    for _ in 0..4 {
        assert_eq!(
            rng_fast.next_u64(),
            rng_reference.next_u64(),
            "RNG consumption diverged"
        );
    }
}

fn graph(n: usize, c: f64, topology: Topology, seed: u64) -> GeometricGraph {
    let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let radius = geogossip_geometry::connectivity_radius(n, c).min(0.49);
    GeometricGraph::build_with_topology(pts, radius, topology)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Geographic gossip (routing-heavy Poisson protocol, shares the RNG
    /// with the clock) on both topologies, across converging and
    /// budget-capped runs.
    #[test]
    fn geographic_runs_are_bit_identical(
        n in 24usize..160,
        seed in 0u64..500,
        torus in 0usize..2,
        epsilon in 0.02f64..0.6,
        max_ticks in 200u64..20_000,
    ) {
        let topology = if torus == 1 { Topology::Torus } else { Topology::UnitSquare };
        let g = graph(n, 2.0, topology, seed);
        let values =
            InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(seed ^ 0xf1e1d));
        let stop = StopCondition::at_epsilon(epsilon).with_max_ticks(max_ticks);
        assert_parity(n, stop, seed ^ 0x9e0, || {
            GeographicGossip::new(&g, values.clone()).expect("valid instance")
        });
    }

    /// Pairwise gossip, including transmission-budget stops.
    #[test]
    fn pairwise_runs_are_bit_identical(
        n in 16usize..200,
        seed in 0u64..500,
        epsilon in 0.01f64..0.5,
        max_tx in 100u64..50_000,
    ) {
        let g = graph(n, 2.0, Topology::UnitSquare, seed);
        let values =
            InitialCondition::Bimodal.generate(n, &mut ChaCha8Rng::seed_from_u64(seed ^ 0xb1));
        let stop = StopCondition::at_epsilon(epsilon)
            .with_max_ticks(100_000)
            .with_max_transmissions(max_tx);
        assert_parity(n, stop, seed ^ 0x7a17, || {
            PairwiseGossip::new(&g, values.clone()).expect("valid instance")
        });
    }
}

/// A self-paced protocol (the round-based affine recursion) must also be
/// bit-identical: synthetic ticks, all randomness to the protocol, stall
/// detection included.
#[test]
fn self_paced_round_protocol_is_bit_identical() {
    for seed in 0..6u64 {
        let n = 96;
        let g = graph(n, 2.0, Topology::UnitSquare, seed);
        let values =
            InitialCondition::Uniform.generate(n, &mut ChaCha8Rng::seed_from_u64(seed ^ 0xaff));
        let config = RoundBasedConfig::practical(n);
        let stop = StopCondition::at_epsilon(0.05).with_max_ticks(10_000);
        assert_parity(n, stop, seed ^ 0x5e1f, || {
            RoundBasedActivation::new(&g, values.clone(), config, 0.05).expect("valid instance")
        });
    }
}

/// The squared-domain pre-filter must not change the stopping tick even at
/// knife-edge targets: epsilons are taken from the reference run's own error
/// trajectory (exact crossings), then perturbed by one ulp in each direction.
#[test]
fn knife_edge_epsilons_stop_at_the_same_tick() {
    let n = 64;
    let g = graph(n, 2.0, Topology::UnitSquare, 42);
    let values = InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(43));

    // Harvest exact trace errors from a reference run.
    let mut probe = PairwiseGossip::new(&g, values.clone()).expect("valid instance");
    let report = AsyncEngine::new(n).sample_every(13).run_reference(
        &mut probe,
        StopCondition::at_epsilon(0.05).with_max_ticks(20_000),
        &mut ChaCha8Rng::seed_from_u64(44),
    );
    let harvested: Vec<f64> = report
        .trace
        .points()
        .iter()
        .map(|p| p.relative_error)
        .filter(|e| *e > 0.0 && e.is_finite())
        .collect();
    assert!(harvested.len() >= 4, "probe run produced too few samples");

    for &error in harvested.iter().take(12) {
        for epsilon in [
            error,
            f64::from_bits(error.to_bits() + 1),
            f64::from_bits(error.to_bits() - 1),
        ] {
            let stop = StopCondition::at_epsilon(epsilon).with_max_ticks(20_000);
            assert_parity(n, stop, 44, || {
                PairwiseGossip::new(&g, values.clone()).expect("valid instance")
            });
        }
    }
}
