//! Thread-count invariance over the committed scenario files.
//!
//! Every scenario in `scenarios/smoke.json` must produce a **byte-identical**
//! `ScenarioReport` JSON document at every thread count and batch size —
//! including a batch-unaware protocol (`affine-idealized`) that silently falls
//! through to the sequential loop. Wall-clock fields (`seconds`,
//! `engine-seconds`) and the spec's `parallelism` key are the only permitted
//! differences, and they are normalized away before comparison. This is the
//! scenario-level twin of `tests/parallel_engine_parity.rs`: that file pins
//! the engine, this one pins the whole runner pipeline (seed derivation,
//! graph construction, metrics, trace serialization).

use geogossip::builtin_runner;
use geogossip::sim::batch::available_threads;
use geogossip::sim::scenario::{ScenarioReport, ScenarioSpec};
use geogossip::sim::ParallelSpec;

/// Zeroes wall-clock fields and drops the parallelism knob so reports from
/// different execution strategies can be compared byte-for-byte.
fn normalized_json(mut report: ScenarioReport) -> String {
    report.spec.parallelism = None;
    for trial in &mut report.trials {
        trial.seconds = 0.0;
        trial.engine_seconds = 0.0;
    }
    report.to_json()
}

#[test]
fn committed_scenarios_are_invariant_under_threads_and_batch() {
    let runner = builtin_runner();
    let specs = ScenarioSpec::load_file("scenarios/smoke.json").expect("smoke.json loads");
    assert!(specs.len() >= 4, "expected the committed smoke bundle");

    let mut threads: Vec<usize> = vec![1, 2, 7, available_threads()];
    threads.dedup();

    for spec in specs {
        let baseline = normalized_json(
            runner
                .run(&spec)
                .unwrap_or_else(|e| panic!("`{}` failed sequentially: {e}", spec.name)),
        );
        for &t in &threads {
            for batch in [1usize, 64, 4096] {
                let mut parallel_spec = spec.clone();
                parallel_spec.parallelism = Some(ParallelSpec::with_threads(t).with_batch(batch));
                let report = runner.run(&parallel_spec).unwrap_or_else(|e| {
                    panic!("`{}` failed with threads={t} batch={batch}: {e}", spec.name)
                });
                assert_eq!(
                    normalized_json(report),
                    baseline,
                    "`{}` report diverged at threads={t} batch={batch}",
                    spec.name
                );
            }
        }
    }
}
