//! End-to-end integration tests spanning all workspace crates: build a
//! network, run every protocol through the public API of the `geogossip`
//! meta-crate, and check convergence, cost accounting, and mass conservation
//! together.

use geogossip::core::prelude::*;
use geogossip::geometry::sampling::sample_unit_square;
use geogossip::graph::GeometricGraph;
use geogossip::sim::{AsyncEngine, SeedStream, StopCondition};

fn instance(n: usize, seed: u64) -> (GeometricGraph, Vec<f64>, SeedStream) {
    let seeds = SeedStream::new(seed);
    let positions = sample_unit_square(n, &mut seeds.stream("placement"));
    let graph = GeometricGraph::build_at_connectivity_radius(positions, 2.0);
    let values = InitialCondition::Spike.generate(n, &mut seeds.stream("values"));
    (graph, values, seeds)
}

#[test]
fn all_three_protocols_agree_on_the_average() {
    let n = 256;
    let epsilon = 0.05;
    let (graph, values, seeds) = instance(n, 101);
    let true_mean = values.iter().sum::<f64>() / n as f64;

    // Pairwise.
    let mut pairwise = PairwiseGossip::new(&graph, values.clone()).unwrap();
    let report = AsyncEngine::new(n).run(
        &mut pairwise,
        StopCondition::at_epsilon(epsilon).with_max_ticks(20_000_000),
        &mut seeds.stream("pairwise"),
    );
    assert!(report.converged());
    assert!((pairwise.state().mean() - true_mean).abs() < 1e-12);
    assert!(pairwise.state().mass_drift() < 1e-9);

    // Geographic.
    let mut geographic = GeographicGossip::new(&graph, values.clone()).unwrap();
    let report = AsyncEngine::new(n).run(
        &mut geographic,
        StopCondition::at_epsilon(epsilon).with_max_ticks(20_000_000),
        &mut seeds.stream("geographic"),
    );
    assert!(report.converged());
    assert!(geographic.state().mass_drift() < 1e-9);

    // Affine (idealized round-based).
    let mut affine =
        RoundBasedAffineGossip::new(&graph, values.clone(), RoundBasedConfig::idealized(n))
            .unwrap();
    let report = affine.run_until(epsilon, &mut seeds.stream("affine"));
    assert!(report.converged);
    assert!(affine.state().mass_drift() < 1e-9);

    // After convergence every sensor is near the true mean under all three
    // protocols.
    let initial_dev: f64 = values
        .iter()
        .map(|v| (v - true_mean).powi(2))
        .sum::<f64>()
        .sqrt();
    for (name, state) in [
        ("pairwise", pairwise.state()),
        ("geographic", geographic.state()),
        ("affine", affine.state()),
    ] {
        let dev: f64 = state
            .values()
            .iter()
            .map(|v| (v - true_mean).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(
            dev <= epsilon * initial_dev * 1.5,
            "{name} left too much deviation: {dev} vs initial {initial_dev}"
        );
    }
}

#[test]
fn affine_needs_fewer_long_range_rounds_than_geographic_needs_exchanges() {
    // The Lemma-1 mechanism: the affine protocol's top level needs
    // O(√n·log(n/ε)) leader rounds, whereas geographic gossip needs
    // Θ(n·log(1/ε)) pairwise exchanges — a factor ~√n apart.
    let n = 512;
    let epsilon = 0.05;
    let (graph, values, seeds) = instance(n, 202);

    let mut geographic = GeographicGossip::new(&graph, values.clone()).unwrap();
    let geo_report = AsyncEngine::new(n).run(
        &mut geographic,
        StopCondition::at_epsilon(epsilon).with_max_ticks(50_000_000),
        &mut seeds.stream("geo"),
    );
    assert!(geo_report.converged());

    let mut affine =
        RoundBasedAffineGossip::new(&graph, values, RoundBasedConfig::idealized(n)).unwrap();
    let affine_report = affine.run_until(epsilon, &mut seeds.stream("affine"));
    assert!(affine_report.converged);

    assert!(
        affine_report.stats.top_rounds < geo_report.ticks / 4,
        "affine used {} rounds, geographic used {} exchanges",
        affine_report.stats.top_rounds,
        geo_report.ticks
    );
}

#[test]
fn state_machine_and_round_based_reach_the_same_fixed_point() {
    let n = 224;
    let (graph, values, seeds) = instance(n, 303);
    let true_mean = values.iter().sum::<f64>() / n as f64;

    let mut machine = AffineStateMachine::practical(&graph, values.clone()).unwrap();
    let report = AsyncEngine::new(n).run(
        &mut machine,
        StopCondition::at_epsilon(0.25).with_max_ticks(6_000_000),
        &mut seeds.stream("machine"),
    );
    assert!(
        report.converged(),
        "state machine stuck at {}",
        report.final_error
    );
    assert!((machine.state().mean() - true_mean).abs() < 1e-12);

    let mut round_based =
        RoundBasedAffineGossip::new(&graph, values, RoundBasedConfig::practical(n)).unwrap();
    let rb_report = round_based.run_until(0.25, &mut seeds.stream("round"));
    assert!(rb_report.converged);
    assert!((round_based.state().mean() - true_mean).abs() < 1e-12);
}

#[test]
fn runs_are_reproducible_for_a_fixed_seed() {
    let n = 128;
    let run = |seed: u64| {
        let (graph, values, seeds) = instance(n, seed);
        let mut affine =
            RoundBasedAffineGossip::new(&graph, values, RoundBasedConfig::idealized(n)).unwrap();
        let report = affine.run_until(0.05, &mut seeds.stream("run"));
        (
            report.transmissions.total(),
            report.stats.top_rounds,
            report.final_error,
        )
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}

#[test]
fn disconnected_network_is_reported_not_hidden() {
    // A radius far below the connectivity threshold: pairwise gossip cannot
    // average across components, so the engine must stop on its budget and
    // report non-convergence.
    let seeds = SeedStream::new(404);
    let positions = sample_unit_square(200, &mut seeds.stream("placement"));
    let graph = GeometricGraph::build(positions, 0.01);
    assert!(!graph.is_connected());
    let values = InitialCondition::Spike.generate(200, &mut seeds.stream("values"));
    let mut pairwise = PairwiseGossip::new(&graph, values).unwrap();
    let report = AsyncEngine::new(200).run(
        &mut pairwise,
        StopCondition::at_epsilon(0.01).with_max_ticks(50_000),
        &mut seeds.stream("run"),
    );
    assert!(!report.converged());
    assert!(report.final_error > 0.5);
}
