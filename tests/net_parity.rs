//! Instant-schedule oracle pins for the message-passing runtime.
//!
//! The shared-memory protocols are the oracle: on the instant-lossless
//! schedule the net scheduler must reproduce the `AsyncEngine` **bit for
//! bit** — same stop reason, same tick count, same simulation time, same
//! transmission totals, every trace point, the same final error bits, and
//! the same `"run"`-stream RNG end state — across protocols, topologies, and
//! partner selectors. The dedicated `"net"` stream is part of the schema:
//! instant and fixed schedules draw nothing from it.
//!
//! At the runner level, a spec carrying `transport: {latency: "instant"}`
//! must produce the very trials the bare spec produces, with only the
//! message-ledger metrics appended — and a spec without a `transport` key
//! never constructs the net layer at all.

use geogossip::analysis::json::JsonValue;
use geogossip::builtin_runner;
use geogossip::core::prelude::*;
use geogossip::graph::GeometricGraph;
use geogossip::net::{GeographicNet, NetProtocol, NetScheduler, PairwiseNet};
use geogossip::routing::TargetSelector;
use geogossip::sim::scenario::{ScenarioSpec, TrialCost};
use geogossip::sim::transport::{LatencyModel, TransportSpec};
use geogossip::sim::{AsyncEngine, EngineReport, StopCondition};
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Topology;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn graph(n: usize, topology: Topology, seed: u64) -> GeometricGraph {
    let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
    let radius = geogossip_geometry::connectivity_radius(n, 2.0).min(0.49);
    GeometricGraph::build_with_topology(pts, radius, topology)
}

/// Metric keys only the net runtime appends.
const LEDGER_KEYS: [&str; 3] = [
    "messages_sent",
    "messages_delivered",
    "messages_in_flight_peak",
];

/// Runs the oracle on the engine and the actors on the net scheduler from
/// identically seeded run RNGs, and asserts bit-identity of the reports and
/// RNG end states. `latency` must be a schedule that draws nothing from the
/// net stream (instant; the identity claim is only made for instant).
fn assert_net_matches_oracle<P, N>(run_seed: u64, oracle: P, net: N)
where
    P: FnOnce(&mut ChaCha8Rng) -> EngineReport,
    N: FnOnce(&mut ChaCha8Rng, &mut ChaCha8Rng) -> EngineReport,
{
    let mut oracle_rng = ChaCha8Rng::seed_from_u64(run_seed);
    let mut net_rng_run = oracle_rng.clone();
    let mut net_stream = ChaCha8Rng::seed_from_u64(run_seed ^ 0x7e7);
    let net_stream_untouched = net_stream.clone();

    let oracle_report = oracle(&mut oracle_rng);
    let net_report = net(&mut net_rng_run, &mut net_stream);

    assert_eq!(
        net_report, oracle_report,
        "EngineReports diverged on the instant schedule"
    );
    assert_eq!(
        net_report.time.to_bits(),
        oracle_report.time.to_bits(),
        "simulation time not bit-identical"
    );
    assert_eq!(
        net_report.final_error.to_bits(),
        oracle_report.final_error.to_bits(),
        "final error not bit-identical"
    );
    assert_eq!(net_report.trace.points(), oracle_report.trace.points());
    let mut net_stream_untouched = net_stream_untouched;
    for _ in 0..4 {
        assert_eq!(
            net_rng_run.next_u64(),
            oracle_rng.next_u64(),
            "run-stream RNG consumption diverged"
        );
        assert_eq!(
            net_stream.next_u64(),
            net_stream_untouched.next_u64(),
            "the instant schedule drew from the net stream"
        );
    }
}

#[test]
fn instant_pairwise_is_bit_identical_to_the_engine_oracle() {
    for (seed, topology) in [(7u64, Topology::UnitSquare), (8, Topology::Torus)] {
        let n = 96;
        let g = graph(n, topology, seed);
        let values =
            InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(seed ^ 0x5fa));
        let stop = StopCondition::at_epsilon(0.05).with_max_ticks(400_000);

        assert_net_matches_oracle(
            seed ^ 0x41,
            |rng| {
                let mut protocol = PairwiseGossip::new(&g, values.clone()).expect("valid oracle");
                AsyncEngine::new(n).run(&mut protocol, stop, rng)
            },
            |rng, net_rng| {
                let mut actors = PairwiseNet::new(&g, values.clone()).expect("valid actors");
                let (report, ledger) = NetScheduler::new(n).run(
                    &mut actors,
                    stop,
                    LatencyModel::Instant,
                    rng,
                    net_rng,
                );
                assert_eq!(ledger.in_flight(), 0, "instant messages left in flight");
                report
            },
        );
    }
}

#[test]
fn instant_geographic_is_bit_identical_for_both_selectors() {
    for (seed, topology) in [(17u64, Topology::UnitSquare), (18, Topology::Torus)] {
        for selector in [
            TargetSelector::NearestToUniformPosition,
            TargetSelector::UniformByIndex,
        ] {
            let n = 96;
            let g = graph(n, topology, seed);
            let values =
                InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(seed ^ 0xce0));
            let stop = StopCondition::at_epsilon(0.05).with_max_ticks(400_000);

            assert_net_matches_oracle(
                seed ^ 0x52,
                |rng| {
                    let mut protocol =
                        GeographicGossip::with_selector(&g, values.clone(), selector.clone())
                            .expect("valid oracle");
                    AsyncEngine::new(n).run(&mut protocol, stop, rng)
                },
                |rng, net_rng| {
                    let mut actors =
                        GeographicNet::with_selector(&g, values.clone(), selector.clone())
                            .expect("valid actors");
                    let (report, _) = NetScheduler::new(n).run(
                        &mut actors,
                        stop,
                        LatencyModel::Instant,
                        rng,
                        net_rng,
                    );
                    report
                },
            );
        }
    }
}

/// The protocol counters must agree with the oracle as well (exchanges,
/// failed routes, isolated activations — same keys, same values).
#[test]
fn instant_metrics_match_the_oracle_counters() {
    let n = 96;
    let g = graph(n, Topology::UnitSquare, 23);
    let values = InitialCondition::Spike.generate(n, &mut ChaCha8Rng::seed_from_u64(0xa1));
    let stop = StopCondition::at_epsilon(0.05).with_max_ticks(400_000);

    let mut oracle_rng = ChaCha8Rng::seed_from_u64(0xb2);
    let mut net_run = oracle_rng.clone();
    let mut oracle = GeographicGossip::new(&g, values.clone()).expect("valid oracle");
    let _ = AsyncEngine::new(n).run(&mut oracle, stop, &mut oracle_rng);
    use geogossip::sim::Activation;
    let oracle_metrics = oracle.metrics();

    let mut actors =
        GeographicNet::with_selector(&g, values, TargetSelector::NearestToUniformPosition)
            .expect("valid actors");
    let mut net_rng = ChaCha8Rng::seed_from_u64(0xc3);
    let _ = NetScheduler::new(n).run(
        &mut actors,
        stop,
        LatencyModel::Instant,
        &mut net_run,
        &mut net_rng,
    );
    assert_eq!(actors.metrics(), oracle_metrics);
}

/// Strips the ledger-only metrics, leaving what the oracle would report.
fn without_ledger_metrics(trial: &TrialCost) -> TrialCost {
    let mut stripped = trial.clone();
    stripped
        .metrics
        .retain(|(k, _)| !LEDGER_KEYS.contains(&k.as_str()));
    stripped
}

#[test]
fn instant_transport_specs_match_bare_specs_at_the_runner_level() {
    let runner = builtin_runner();
    for name in ["pairwise", "geographic"] {
        for surface in [Topology::UnitSquare, Topology::Torus] {
            let mut bare = ScenarioSpec::standard(name, 96, 0.1)
                .with_trials(2)
                .with_seed(71);
            bare.topology.surface = surface;
            bare.stop = bare.stop.with_max_ticks(2_000_000);
            let transported = bare.clone().with_transport(TransportSpec::default());

            let bare_report = runner.run(&bare).expect("bare spec runs");
            let net_report = runner.run(&transported).expect("transport spec runs");

            assert_eq!(net_report.protocol_label, bare_report.protocol_label);
            assert_eq!(net_report.trials.len(), bare_report.trials.len());
            for (net_trial, bare_trial) in net_report.trials.iter().zip(&bare_report.trials) {
                // The net trial is the bare trial plus the message ledger.
                assert_eq!(
                    &without_ledger_metrics(net_trial),
                    bare_trial,
                    "{name}/{surface:?}: instant transport changed the trial"
                );
                for key in LEDGER_KEYS {
                    assert!(
                        net_trial.metric(key).is_some(),
                        "{name}/{surface:?}: missing ledger metric {key}"
                    );
                    assert!(
                        bare_trial.metric(key).is_none(),
                        "{name}/{surface:?}: bare run grew a ledger metric {key}"
                    );
                }
                // Instant-lossless: everything sent was delivered.
                assert_eq!(
                    net_trial.metric("messages_sent"),
                    net_trial.metric("messages_delivered")
                );
            }
        }
    }
}

/// Renders `spec` to JSON, splices in an explicit `transport` object, and
/// parses it back — the JSON path must land on the builder-made spec.
fn respec_with_transport_json(spec: &ScenarioSpec, transport: JsonValue) -> ScenarioSpec {
    let mut doc = JsonValue::parse(&spec.to_json()).expect("spec renders valid JSON");
    match &mut doc {
        JsonValue::Object(entries) => entries.push(("transport".into(), transport)),
        _ => panic!("spec JSON is an object"),
    }
    ScenarioSpec::from_json(&doc.render()).expect("spec with explicit transport parses")
}

#[test]
fn json_spelled_transport_matches_the_builder_spelling() {
    let base = ScenarioSpec::standard("pairwise", 64, 0.1)
        .with_trials(1)
        .with_seed(73);
    for (json, latency) in [
        (JsonValue::string("instant"), LatencyModel::Instant),
        (
            JsonValue::object(vec![("fixed", 0.002.into())]),
            LatencyModel::Fixed(0.002),
        ),
        (
            JsonValue::object(vec![(
                "exp",
                JsonValue::object(vec![("mean", 0.002.into())]),
            )]),
            LatencyModel::Exponential { mean: 0.002 },
        ),
    ] {
        let spliced = respec_with_transport_json(&base, JsonValue::object(vec![("latency", json)]));
        let built = base
            .clone()
            .with_transport(TransportSpec::with_latency(latency));
        assert_eq!(spliced, built);
    }
}

#[test]
fn non_instant_schedules_are_reproducible_and_account_for_in_flight_mass() {
    let runner = builtin_runner();
    let mut base = ScenarioSpec::standard("pairwise", 96, 0.1)
        .with_trials(2)
        .with_seed(79);
    base.stop = base.stop.with_max_ticks(4_000_000);
    let delayed =
        base.clone()
            .with_transport(TransportSpec::with_latency(LatencyModel::Exponential {
                mean: 0.002,
            }));

    let first = runner.run(&delayed).expect("delayed spec runs");
    let second = runner.run(&delayed).expect("delayed spec runs again");
    assert_eq!(first, second, "latency runs must be reproducible");

    for trial in &first.trials {
        assert!(trial.converged, "modest latency must not stall gossip");
        let sent = trial.metric("messages_sent").expect("ledger present");
        let delivered = trial.metric("messages_delivered").expect("ledger present");
        assert!(sent >= delivered, "delivered more than was sent");
        assert!(trial.metric("messages_in_flight_peak").unwrap_or(0.0) >= 1.0);
    }
}
