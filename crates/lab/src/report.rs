//! Scaling-report emission: Markdown + CSV + JSON on top of a
//! [`SweepAggregate`].
//!
//! Every emitted file is a pure function of the simulation *results*, never
//! of machine speed: wall-clock means live in a separate `timing.csv` that
//! stays **out** of the equality-checked report set, so an uninterrupted run
//! and a killed-and-resumed run produce byte-identical `report.md`,
//! `cells.csv`, `fits.csv` and `report.json` (the CI kill-and-resume check
//! diffs exactly those four).

use crate::aggregate::SweepAggregate;
use geogossip_analysis::json::JsonValue;
use geogossip_analysis::Table;
use geogossip_sim::ProtocolError;
use std::path::{Path, PathBuf};

/// A finished sweep report, ready to render.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Campaign name (the sweep's `name`).
    pub sweep: String,
    /// How many cells the sweep expands to — aggregated cells below this
    /// count mean the campaign is **partial** (killed or `--max-cells`), and
    /// every emitted file says so rather than passing off partial fits as
    /// the full comparison.
    pub expected_cells: u64,
    /// The aggregate behind the report.
    pub aggregate: SweepAggregate,
}

impl SweepReport {
    /// Wraps an aggregate under its campaign name; `expected_cells` is the
    /// sweep's full cell count (`SweepSpec::cell_count`).
    pub fn new(sweep: impl Into<String>, expected_cells: u64, aggregate: SweepAggregate) -> Self {
        SweepReport {
            sweep: sweep.into(),
            expected_cells,
            aggregate,
        }
    }

    /// Whether every cell of the campaign is represented in the aggregate.
    pub fn complete(&self) -> bool {
        self.aggregate.cells.len() as u64 == self.expected_cells
    }

    /// Per-cell summary table (full-precision, result fields only).
    pub fn cells_table(&self) -> Table {
        let mut table = Table::new(vec![
            "cell",
            "name",
            "protocol",
            "group",
            "n",
            "epsilon",
            "trials",
            "converged",
            "mean-tx",
            "tx-ci-lower",
            "tx-ci-upper",
            "median-tx",
            "p95-tx",
            "mean-hops",
            "hops-ci-lower",
            "hops-ci-upper",
            "mean-ticks",
            "ticks-ci-lower",
            "ticks-ci-upper",
            "median-ticks",
            "mean-rounds",
            "mean-final-error",
        ]);
        for cell in &self.aggregate.cells {
            table.add_row(vec![
                cell.index.to_string(),
                cell.name.clone(),
                cell.protocol.clone(),
                cell.group.clone(),
                cell.n.to_string(),
                format!("{}", cell.epsilon),
                cell.trials.to_string(),
                cell.converged.to_string(),
                format!("{}", cell.mean_transmissions),
                format!("{}", cell.ci_transmissions.lower),
                format!("{}", cell.ci_transmissions.upper),
                format!("{}", cell.median_transmissions),
                format!("{}", cell.p95_transmissions),
                format!("{}", cell.mean_hops),
                format!("{}", cell.ci_hops.lower),
                format!("{}", cell.ci_hops.upper),
                format!("{}", cell.mean_ticks),
                format!("{}", cell.ci_ticks.lower),
                format!("{}", cell.ci_ticks.upper),
                format!("{}", cell.median_ticks),
                format!("{}", cell.mean_rounds),
                format!("{}", cell.mean_final_error),
            ]);
        }
        table
    }

    /// Fitted-exponent table — the headline numbers, with their confidence
    /// intervals.
    pub fn fits_table(&self) -> Table {
        let mut table = Table::new(vec![
            "protocol",
            "group",
            "points",
            "excluded-cells",
            "exponent",
            "exponent-ci-lower",
            "exponent-ci-upper",
            "exponent-stderr",
            "prefactor",
            "r-squared",
        ]);
        for fit in &self.aggregate.fits {
            table.add_row(vec![
                fit.protocol.clone(),
                fit.group.clone(),
                fit.points.to_string(),
                fit.excluded.to_string(),
                format!("{}", fit.detail.fit.exponent),
                format!("{}", fit.interval.lower),
                format!("{}", fit.interval.upper),
                format!("{}", fit.detail.exponent_stderr),
                format!("{}", fit.detail.fit.prefactor),
                format!("{}", fit.detail.fit.r_squared),
            ]);
        }
        table
    }

    /// Wall-clock means per cell (timing observability; excluded from the
    /// equality-checked report set by living in its own file).
    pub fn timing_table(&self) -> Table {
        let mut table = Table::new(vec!["cell", "name", "mean-seconds", "mean-engine-seconds"]);
        for cell in &self.aggregate.cells {
            table.add_row(vec![
                cell.index.to_string(),
                cell.name.clone(),
                format!("{}", cell.mean_seconds),
                format!("{}", cell.mean_engine_seconds),
            ]);
        }
        table
    }

    /// The human-readable report: summary tables plus the verdict list.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# Sweep report: `{}`\n\n", self.sweep));
        out.push_str(&format!(
            "{} of {} cells, {} fitted series, {} verdicts.\n\n",
            self.aggregate.cells.len(),
            self.expected_cells,
            self.aggregate.fits.len(),
            self.aggregate.verdicts.len()
        ));
        if !self.complete() {
            out.push_str(
                "**PARTIAL CAMPAIGN** — not every cell has results yet; the fits and \
                 verdicts below cover only the completed cells. Resume the sweep \
                 (`--resume`) for the full comparison.\n\n",
            );
        }

        out.push_str("## Fitted scaling exponents (`cost ≈ C·n^k`)\n\n");
        if self.aggregate.fits.is_empty() {
            out.push_str("No series had enough sizes to fit (need ≥ 2 values of `n`).\n\n");
        } else {
            let mut fits = Table::new(vec![
                "protocol",
                "group",
                "points",
                "exponent k",
                "95% CI",
                "prefactor",
                "R²",
            ]);
            for fit in &self.aggregate.fits {
                fits.add_row(vec![
                    fit.protocol.clone(),
                    fit.group.clone(),
                    fit.points.to_string(),
                    format!("{:.3}", fit.detail.fit.exponent),
                    format!("[{:.3}, {:.3}]", fit.interval.lower, fit.interval.upper),
                    format!("{:.4}", fit.detail.fit.prefactor),
                    format!("{:.4}", fit.detail.fit.r_squared),
                ]);
            }
            out.push_str(&fits.to_markdown());
            out.push('\n');
            let excluded: usize = self.aggregate.fits.iter().map(|f| f.excluded).sum();
            if excluded > 0 {
                out.push_str(&format!(
                    "{excluded} cell(s) with non-converged trials were excluded from the \
                     fits (their transmission counts are cap-saturated, not cost-to-ε).\n\n"
                ));
            }
        }

        out.push_str("## Verdicts\n\n");
        if self.aggregate.verdicts.is_empty() {
            out.push_str("No scaling claims applicable to this sweep's protocols.\n\n");
        } else {
            for verdict in &self.aggregate.verdicts {
                out.push_str(&format!(
                    "- {} **{}** — {}\n",
                    if verdict.holds { "PASS" } else { "FAIL" },
                    verdict.claim,
                    verdict.details
                ));
            }
            out.push('\n');
        }

        out.push_str("## Cells\n\n");
        let mut cells = Table::new(vec![
            "cell",
            "protocol",
            "n",
            "ε",
            "converged",
            "mean tx (95% CI)",
            "median tx",
            "p95 tx",
            "mean ticks",
            "mean final error",
        ]);
        for cell in &self.aggregate.cells {
            cells.add_row(vec![
                cell.index.to_string(),
                cell.protocol.clone(),
                cell.n.to_string(),
                format!("{}", cell.epsilon),
                format!("{}/{}", cell.converged, cell.trials),
                format!(
                    "{:.0} [{:.0}, {:.0}]",
                    cell.mean_transmissions,
                    cell.ci_transmissions.lower,
                    cell.ci_transmissions.upper
                ),
                format!("{:.0}", cell.median_transmissions),
                format!("{:.0}", cell.p95_transmissions),
                format!("{:.0}", cell.mean_ticks),
                format!("{:.3e}", cell.mean_final_error),
            ]);
        }
        out.push_str(&cells.to_markdown());
        out
    }

    /// The structured report document (result fields only — no wall-clock).
    pub fn to_json_value(&self) -> JsonValue {
        let cells = self
            .aggregate
            .cells
            .iter()
            .map(|c| {
                JsonValue::object(vec![
                    ("cell", c.index.into()),
                    ("name", JsonValue::string(c.name.clone())),
                    ("protocol", JsonValue::string(c.protocol.clone())),
                    ("group", JsonValue::string(c.group.clone())),
                    ("n", c.n.into()),
                    ("epsilon", c.epsilon.into()),
                    ("trials", c.trials.into()),
                    ("converged", c.converged.into()),
                    ("mean-transmissions", c.mean_transmissions.into()),
                    (
                        "transmissions-ci",
                        JsonValue::Array(vec![
                            c.ci_transmissions.lower.into(),
                            c.ci_transmissions.upper.into(),
                        ]),
                    ),
                    ("median-transmissions", c.median_transmissions.into()),
                    ("p95-transmissions", c.p95_transmissions.into()),
                    ("mean-hops", c.mean_hops.into()),
                    ("mean-ticks", c.mean_ticks.into()),
                    ("median-ticks", c.median_ticks.into()),
                    ("mean-rounds", c.mean_rounds.into()),
                    ("mean-final-error", c.mean_final_error.into()),
                ])
            })
            .collect();
        let fits = self
            .aggregate
            .fits
            .iter()
            .map(|f| {
                JsonValue::object(vec![
                    ("protocol", JsonValue::string(f.protocol.clone())),
                    ("group", JsonValue::string(f.group.clone())),
                    ("points", f.points.into()),
                    ("excluded-cells", f.excluded.into()),
                    ("exponent", f.detail.fit.exponent.into()),
                    (
                        "exponent-ci",
                        JsonValue::Array(vec![f.interval.lower.into(), f.interval.upper.into()]),
                    ),
                    ("exponent-stderr", f.detail.exponent_stderr.into()),
                    ("prefactor", f.detail.fit.prefactor.into()),
                    ("r-squared", f.detail.fit.r_squared.into()),
                ])
            })
            .collect();
        let verdicts = self
            .aggregate
            .verdicts
            .iter()
            .map(|v| {
                JsonValue::object(vec![
                    ("claim", JsonValue::string(v.claim.clone())),
                    ("holds", JsonValue::Bool(v.holds)),
                    ("details", JsonValue::string(v.details.clone())),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("sweep", JsonValue::string(self.sweep.clone())),
            ("cells-expected", self.expected_cells.into()),
            ("complete", JsonValue::Bool(self.complete())),
            ("cells", JsonValue::Array(cells)),
            ("fits", JsonValue::Array(fits)),
            ("verdicts", JsonValue::Array(verdicts)),
        ])
    }

    /// Writes the full report set into `dir` (created if missing):
    /// `report.md`, `cells.csv`, `fits.csv`, `report.json` (deterministic —
    /// the kill-and-resume equality set) plus `timing.csv` (wall-clock,
    /// excluded from equality). Returns the written paths.
    pub fn write_dir(&self, dir: &Path) -> Result<Vec<PathBuf>, ProtocolError> {
        let io_err = |path: &Path| {
            let shown = path.display().to_string();
            move |e: std::io::Error| {
                ProtocolError::malformed(format!("cannot write `{shown}`: {e}"))
            }
        };
        std::fs::create_dir_all(dir).map_err(|e| {
            ProtocolError::malformed(format!("cannot create `{}`: {e}", dir.display()))
        })?;
        let files = [
            ("report.md", self.markdown()),
            ("cells.csv", self.cells_table().to_csv()),
            ("fits.csv", self.fits_table().to_csv()),
            ("report.json", self.to_json_value().pretty() + "\n"),
            ("timing.csv", self.timing_table().to_csv()),
        ];
        let mut written = Vec::with_capacity(files.len());
        for (name, contents) in files {
            let path = dir.join(name);
            std::fs::write(&path, contents).map_err(io_err(&path))?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::SweepAggregator;
    use crate::log::{CellRecord, TrialOutcome};

    fn aggregate() -> SweepAggregate {
        let mut agg = SweepAggregator::new();
        for (i, n) in [64usize, 128, 256].iter().enumerate() {
            for (j, (protocol, k)) in [("geographic", 1.5f64), ("affine-idealized", 1.02)]
                .iter()
                .enumerate()
            {
                let cost = (2.0 * (*n as f64).powf(*k)).round() as u64;
                agg.push(&CellRecord {
                    index: (j * 3 + i) as u64,
                    name: format!("demo/c{:04}-{protocol}-n{n}", j * 3 + i),
                    protocol: (*protocol).into(),
                    group: "unit-square/uniform-square/cc=1.5/eps=0.05".into(),
                    n: *n,
                    epsilon: 0.05,
                    trials: vec![TrialOutcome {
                        converged: true,
                        transmissions: cost,
                        routing: cost / 2,
                        local: cost - cost / 2,
                        control: 0,
                        rounds: 10,
                        ticks: 10,
                        final_error: 0.04,
                        seconds: 0.5,
                        engine_seconds: 0.4,
                    }],
                });
            }
        }
        agg.finish()
    }

    #[test]
    fn markdown_report_carries_exponents_cis_and_verdicts() {
        let report = SweepReport::new("demo", 6, aggregate());
        let md = report.markdown();
        assert!(md.contains("# Sweep report: `demo`"));
        assert!(md.contains("exponent k"));
        assert!(md.contains("95% CI"));
        assert!(md.contains("PASS"));
        assert!(md.contains("strictly below geographic"));
    }

    #[test]
    fn csv_tables_have_one_row_per_cell_and_fit() {
        let report = SweepReport::new("demo", 6, aggregate());
        assert_eq!(report.cells_table().len(), 6);
        assert_eq!(report.fits_table().len(), 2);
        assert_eq!(report.timing_table().len(), 6);
        let csv = report.fits_table().to_csv();
        assert!(csv.starts_with("protocol,group,points,excluded-cells,exponent,"));
    }

    #[test]
    fn partial_campaigns_are_flagged_in_markdown_and_json() {
        let complete = SweepReport::new("demo", 6, aggregate());
        assert!(complete.complete());
        assert!(!complete.markdown().contains("PARTIAL CAMPAIGN"));
        let doc = JsonValue::parse(&complete.to_json_value().pretty()).unwrap();
        assert_eq!(doc.get("complete").and_then(JsonValue::as_bool), Some(true));

        // The same aggregate presented against a 12-cell campaign is partial.
        let partial = SweepReport::new("demo", 12, aggregate());
        assert!(!partial.complete());
        assert!(partial.markdown().contains("PARTIAL CAMPAIGN"));
        assert!(partial.markdown().contains("6 of 12 cells"));
        let doc = JsonValue::parse(&partial.to_json_value().pretty()).unwrap();
        assert_eq!(
            doc.get("complete").and_then(JsonValue::as_bool),
            Some(false)
        );
        assert_eq!(
            doc.get("cells-expected").and_then(JsonValue::as_u64),
            Some(12)
        );
    }

    #[test]
    fn json_report_parses_back() {
        let report = SweepReport::new("demo", 6, aggregate());
        let doc = JsonValue::parse(&report.to_json_value().pretty()).unwrap();
        assert_eq!(doc.get("sweep").and_then(JsonValue::as_str), Some("demo"));
        assert_eq!(
            doc.get("cells")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            6
        );
        assert_eq!(
            doc.get("fits").and_then(JsonValue::as_array).unwrap().len(),
            2
        );
        // Result-only: wall-clock fields never enter the JSON report.
        assert!(!report.to_json_value().pretty().contains("seconds"));
    }

    #[test]
    fn write_dir_emits_the_full_report_set() {
        let dir = std::env::temp_dir().join("geogossip-lab-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let report = SweepReport::new("demo", 6, aggregate());
        let written = report.write_dir(&dir).unwrap();
        assert_eq!(written.len(), 5);
        for name in [
            "report.md",
            "cells.csv",
            "fits.csv",
            "report.json",
            "timing.csv",
        ] {
            assert!(dir.join(name).is_file(), "missing {name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
