//! # geogossip-lab
//!
//! The **sweep lab**: parameter-grid campaigns with checkpointed execution,
//! streaming aggregation, and scaling-law verdicts.
//!
//! The paper's headline result is a scaling *comparison* — transmissions to
//! ε-average grow like `n²` for nearest-neighbor gossip (Boyd et al.),
//! `~n^{3/2}√log n` for geographic gossip (Dimakis–Sarwate–Wainwright) and
//! `n^{1+o(1)}` for the affine hierarchy (this paper). This crate turns that
//! comparison into one machine-checkable pipeline:
//!
//! 1. **Declare** the grid as a [`SweepSpec`](geogossip_sim::scenario::SweepSpec)
//!    (axes over `n`, protocol, placement, radius regime, surface, ε) — it
//!    expands deterministically into a scenario matrix with per-cell seeds
//!    derived from `(master_seed, cell_index)`.
//! 2. **Execute** it with [`run_sweep`]: cells run in index order through the
//!    scenario [`Runner`](geogossip_sim::scenario::Runner) (trials
//!    rayon-parallel, bit-deterministic), each completed cell streaming to an
//!    append-only JSONL [`ResultsLog`]. Re-running skips cells already on
//!    disk, so a campaign can be **killed and resumed bit-identically**
//!    (modulo wall-clock fields).
//! 3. **Aggregate** the log with [`SweepAggregator`]: per-cell mean/CI
//!    (`Summary`) and median/p95 (`P2Quantile`, streaming) statistics, then
//!    per-`(protocol, group)` log–log power-law fits with exponent confidence
//!    intervals, and [`Verdict`]s stating whether the fitted exponents
//!    reproduce the paper's claims.
//! 4. **Report** with [`SweepReport`]: Markdown + CSV + JSON, wall-clock kept
//!    in a separate `timing.csv` so the report set is byte-reproducible.
//!
//! The `geogossip sweep` CLI subcommand is a thin wrapper over exactly this
//! crate; `scenarios/sweeps/scaling_headline.json` is the committed
//! three-protocol exponent comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod log;
pub mod report;
pub mod run;

pub use aggregate::{
    CellSummary, GroupFit, SweepAggregate, SweepAggregator, Verdict, GEOGRAPHIC_EXPONENT_RANGE,
};
pub use log::{CellRecord, LogContents, ResultsLog, TrialOutcome};
pub use report::SweepReport;
pub use run::{run_sweep, run_sweep_probed, SweepOptions, SweepOutcome, SweepProgress};
