//! Streaming aggregation over results-log records: per-cell summaries,
//! per-axis power-law fits, and scaling-law verdicts.
//!
//! The aggregator consumes [`CellRecord`]s one at a time — per-cell
//! statistics stream through [`Summary`] (mean/CI) and [`P2Quantile`]
//! (median/p95) without buffering trial vectors, and only `(n, mean cost)`
//! points per fit group are retained — so a log far larger than memory could
//! still aggregate. `finish()` fits `cost ≈ C·n^k` per `(protocol, group)`
//! in log–log space ([`fit_power_law_detailed`]) and derives the verdicts the
//! paper's headline comparison is about.

use crate::log::CellRecord;
use geogossip_analysis::{
    fit_power_law_detailed, ConfidenceInterval, P2Quantile, PowerLawFitDetail, Summary,
};

/// z-score of the reports' 95% confidence intervals.
pub const REPORT_Z: f64 = 1.96;

/// Aggregate statistics of one sweep cell, reduced from its trials.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Cell index in expansion order.
    pub index: u64,
    /// Cell name.
    pub name: String,
    /// Protocol key (registry name + params).
    pub protocol: String,
    /// Non-protocol, non-`n` axis coordinates (fit-grouping key).
    pub group: String,
    /// Network size.
    pub n: usize,
    /// Stop target.
    pub epsilon: f64,
    /// Trials recorded.
    pub trials: u64,
    /// Trials that reached the target.
    pub converged: u64,
    /// Mean total transmissions ("messages").
    pub mean_transmissions: f64,
    /// 95% CI around the transmission mean.
    pub ci_transmissions: ConfidenceInterval,
    /// Streaming median of total transmissions (P², exact for ≤ 5 trials).
    pub median_transmissions: f64,
    /// Streaming p95 of total transmissions.
    pub p95_transmissions: f64,
    /// Mean routed one-hop transmissions ("hops").
    pub mean_hops: f64,
    /// 95% CI around the hop mean.
    pub ci_hops: ConfidenceInterval,
    /// Mean engine ticks.
    pub mean_ticks: f64,
    /// 95% CI around the tick mean.
    pub ci_ticks: ConfidenceInterval,
    /// Streaming median of engine ticks.
    pub median_ticks: f64,
    /// Mean protocol rounds.
    pub mean_rounds: f64,
    /// Mean final relative error.
    pub mean_final_error: f64,
    /// Mean whole-trial wall-clock seconds (timing — kept out of the
    /// equality-checked report files).
    pub mean_seconds: f64,
    /// Mean engine wall-clock seconds.
    pub mean_engine_seconds: f64,
}

impl CellSummary {
    fn new(record: &CellRecord) -> Self {
        let mut tx = Summary::new();
        let mut hops = Summary::new();
        let mut ticks = Summary::new();
        let mut rounds = Summary::new();
        let mut error = Summary::new();
        let mut seconds = Summary::new();
        let mut engine_seconds = Summary::new();
        let mut tx_median = P2Quantile::new(0.5);
        let mut tx_p95 = P2Quantile::new(0.95);
        let mut ticks_median = P2Quantile::new(0.5);
        let mut converged = 0u64;
        for trial in &record.trials {
            tx.push(trial.transmissions as f64);
            hops.push(trial.routing as f64);
            ticks.push(trial.ticks as f64);
            rounds.push(trial.rounds as f64);
            error.push(trial.final_error);
            seconds.push(trial.seconds);
            engine_seconds.push(trial.engine_seconds);
            tx_median.push(trial.transmissions as f64);
            tx_p95.push(trial.transmissions as f64);
            ticks_median.push(trial.ticks as f64);
            if trial.converged {
                converged += 1;
            }
        }
        CellSummary {
            index: record.index,
            name: record.name.clone(),
            protocol: record.protocol.clone(),
            group: record.group.clone(),
            n: record.n,
            epsilon: record.epsilon,
            trials: record.trials.len() as u64,
            converged,
            mean_transmissions: tx.mean(),
            ci_transmissions: tx.confidence_interval(REPORT_Z),
            median_transmissions: tx_median.value().unwrap_or(0.0),
            p95_transmissions: tx_p95.value().unwrap_or(0.0),
            mean_hops: hops.mean(),
            ci_hops: hops.confidence_interval(REPORT_Z),
            mean_ticks: ticks.mean(),
            ci_ticks: ticks.confidence_interval(REPORT_Z),
            median_ticks: ticks_median.value().unwrap_or(0.0),
            mean_rounds: rounds.mean(),
            mean_final_error: error.mean(),
            mean_seconds: seconds.mean(),
            mean_engine_seconds: engine_seconds.mean(),
        }
    }
}

/// A fitted power law `mean transmissions ≈ C·n^k` for one
/// `(protocol, group)` series of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupFit {
    /// Protocol key of the series.
    pub protocol: String,
    /// Non-protocol axis coordinates of the series.
    pub group: String,
    /// Number of `(n, cost)` points fitted.
    pub points: usize,
    /// Cells of this series excluded from the fit because not every trial
    /// converged — their transmission counts are cap-saturated, not
    /// cost-to-ε, and would flatten the exponent.
    pub excluded: usize,
    /// The detailed fit (exponent, prefactor, R², exponent stderr).
    pub detail: PowerLawFitDetail,
    /// 95% confidence interval around the exponent.
    pub interval: ConfidenceInterval,
}

/// One machine-checked claim about the fitted exponents.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The claim, in words.
    pub claim: String,
    /// Whether the sweep's numbers support it.
    pub holds: bool,
    /// The numbers behind the call.
    pub details: String,
}

/// The paper's predicted exponent window for plain geographic gossip
/// (`~n^{3/2}√log n` ⇒ a log–log fit lands near 1.5).
pub const GEOGRAPHIC_EXPONENT_RANGE: (f64, f64) = (1.3, 1.7);

/// A `(protocol, group)` series key.
type SeriesKey = (String, String);

/// The accumulating `(n, cost)` points of one series, plus how many cells
/// were left out of the fit.
#[derive(Debug, Default)]
struct SeriesPoints {
    points: Vec<(f64, f64)>,
    excluded: usize,
}

/// Streaming aggregator: push records, then [`SweepAggregator::finish`].
#[derive(Debug, Default)]
pub struct SweepAggregator {
    cells: Vec<CellSummary>,
    // (protocol, group) → (n, mean transmissions) points, insertion-ordered.
    series: Vec<(SeriesKey, SeriesPoints)>,
}

impl SweepAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record into the running aggregate. Only cells whose trials
    /// **all converged** contribute fit points: a cell that hit its
    /// tick/transmission cap reports the cap, not the cost-to-ε, and would
    /// silently flatten the fitted exponent. Excluded cells are counted per
    /// series ([`GroupFit::excluded`]) so the report can say so.
    pub fn push(&mut self, record: &CellRecord) {
        let summary = CellSummary::new(record);
        let key = (summary.protocol.clone(), summary.group.clone());
        let series = match self.series.iter_mut().find(|(k, _)| *k == key) {
            Some((_, series)) => series,
            None => {
                self.series.push((key, SeriesPoints::default()));
                &mut self.series.last_mut().expect("just pushed").1
            }
        };
        if summary.trials > 0 && summary.converged == summary.trials {
            series
                .points
                .push((summary.n as f64, summary.mean_transmissions));
        } else {
            series.excluded += 1;
        }
        self.cells.push(summary);
    }

    /// Completes the aggregation: sorts each series by `n`, fits the power
    /// laws, and derives the verdicts.
    pub fn finish(mut self) -> SweepAggregate {
        self.cells.sort_by_key(|c| c.index);
        let mut fits = Vec::new();
        for ((protocol, group), mut series) in self.series {
            series
                .points
                .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("n is finite"));
            let xs: Vec<f64> = series.points.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = series.points.iter().map(|p| p.1).collect();
            if let Some(detail) = fit_power_law_detailed(&xs, &ys) {
                fits.push(GroupFit {
                    protocol,
                    group,
                    points: series.points.len(),
                    excluded: series.excluded,
                    interval: detail.exponent_interval(REPORT_Z),
                    detail,
                });
            }
        }
        let mut verdicts = derive_verdicts(&fits);
        verdicts.extend(derive_degradation_verdicts(&self.cells));
        verdicts.extend(derive_latency_verdicts(&self.cells));
        verdicts.extend(derive_reliability_verdicts(&self.cells));
        SweepAggregate {
            cells: self.cells,
            fits,
            verdicts,
        }
    }
}

/// The finished aggregate: per-cell summaries, per-series fits, verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAggregate {
    /// Per-cell summaries in cell order.
    pub cells: Vec<CellSummary>,
    /// Per-`(protocol, group)` power-law fits.
    pub fits: Vec<GroupFit>,
    /// Machine-checked scaling claims.
    pub verdicts: Vec<Verdict>,
}

/// Derives the headline scaling verdicts from the fitted exponents:
///
/// * plain geographic gossip lands in the paper's predicted window
///   [`GEOGRAPHIC_EXPONENT_RANGE`];
/// * every affine variant scales **strictly below** geographic gossip on the
///   same axis combination;
/// * geographic gossip scales strictly below pairwise gossip (the
///   `n^{3/2}` vs `n²` separation of Dimakis et al.).
fn derive_verdicts(fits: &[GroupFit]) -> Vec<Verdict> {
    let mut verdicts = Vec::new();
    fn base_name(protocol: &str) -> &str {
        protocol.split('{').next().unwrap_or(protocol)
    }
    for fit in fits {
        if base_name(&fit.protocol) == "geographic" {
            let (lo, hi) = GEOGRAPHIC_EXPONENT_RANGE;
            let k = fit.detail.fit.exponent;
            verdicts.push(Verdict {
                claim: format!(
                    "geographic gossip exponent within [{lo}, {hi}] ({})",
                    fit.group
                ),
                holds: (lo..=hi).contains(&k),
                details: format!(
                    "fitted k = {k:.3} (95% CI [{:.3}, {:.3}], R² = {:.3})",
                    fit.interval.lower, fit.interval.upper, fit.detail.fit.r_squared
                ),
            });
        }
    }
    for geographic in fits
        .iter()
        .filter(|f| base_name(&f.protocol) == "geographic")
    {
        for other in fits.iter().filter(|f| f.group == geographic.group) {
            let name = base_name(&other.protocol);
            if name.starts_with("affine") {
                let (ka, kg) = (other.detail.fit.exponent, geographic.detail.fit.exponent);
                verdicts.push(Verdict {
                    claim: format!(
                        "{} scales strictly below geographic gossip ({})",
                        other.protocol, geographic.group
                    ),
                    holds: ka < kg,
                    details: format!(
                        "k[{}] = {ka:.3} (95% CI [{:.3}, {:.3}]) vs k[geographic] = {kg:.3} \
                         (95% CI [{:.3}, {:.3}])",
                        other.protocol,
                        other.interval.lower,
                        other.interval.upper,
                        geographic.interval.lower,
                        geographic.interval.upper
                    ),
                });
            } else if name == "pairwise" {
                let (kp, kg) = (other.detail.fit.exponent, geographic.detail.fit.exponent);
                verdicts.push(Verdict {
                    claim: format!(
                        "geographic gossip scales strictly below pairwise gossip ({})",
                        geographic.group
                    ),
                    holds: kg < kp,
                    details: format!(
                        "k[geographic] = {kg:.3} (95% CI [{:.3}, {:.3}]) vs k[pairwise] = {kp:.3} \
                         (95% CI [{:.3}, {:.3}])",
                        geographic.interval.lower,
                        geographic.interval.upper,
                        other.interval.lower,
                        other.interval.upper
                    ),
                });
            }
        }
    }
    verdicts
}

/// Slack factor of the degradation verdicts: error floors must be monotone in
/// fault severity and cost inflation bounded by `1/(1-p)` — each up to this
/// multiplicative tolerance, absorbing trial noise without hiding regressions.
pub const DEGRADATION_SLACK: f64 = 1.5;

/// Upper drop rate below which convergence must still be reached (verdict
/// V2): losing up to half of all transmissions slows gossip but cannot stall
/// it, because every surviving exchange still contracts the error.
pub const CONVERGENCE_DROP_CEILING: f64 = 0.5;

/// The fault coordinates of one cell, parsed back out of its group key.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct FaultCoords {
    drop: f64,
    stale: f64,
    churn: u64,
}

impl FaultCoords {
    fn is_none(&self) -> bool {
        self.drop == 0.0 && self.stale == 0.0 && self.churn == 0
    }

    /// Severity order: stale fraction dominates (it moves the floor), drop
    /// rate breaks ties (it moves the cost), churn last.
    fn severity(&self) -> (f64, f64, u64) {
        (self.stale, self.drop, self.churn)
    }
}

/// Splits a group key into its fault-free base and the fault coordinates the
/// final segment encodes (`…/eps=0.05/drop=0.1+stale=0.05`). Groups without
/// a fault segment — every pre-fault log line — parse as no-fault.
fn split_fault_group(group: &str) -> (&str, FaultCoords) {
    let Some((base, tail)) = group.rsplit_once('/') else {
        return (group, FaultCoords::default());
    };
    let mut coords = FaultCoords::default();
    let mut recognised = !tail.is_empty();
    for part in tail.split('+') {
        match part.split_once('=') {
            Some(("drop", v)) => coords.drop = v.parse().unwrap_or(0.0),
            Some(("stale", v)) => coords.stale = v.parse().unwrap_or(0.0),
            Some(("churn", v)) => coords.churn = v.parse().unwrap_or(0),
            _ => recognised = false,
        }
    }
    if recognised {
        (base, coords)
    } else {
        (group, FaultCoords::default())
    }
}

/// Derives the degradation verdicts from the per-cell summaries, one triple
/// per `(protocol, fault-free group, n)` series with at least two fault
/// levels:
///
/// * **error floor monotone** — ordering the levels by severity
///   (stale fraction, then drop rate), the mean final error never *drops* by
///   more than [`DEGRADATION_SLACK`]: faults can only hurt accuracy;
/// * **convergence retained** — every pure-loss level with
///   `p ≤` [`CONVERGENCE_DROP_CEILING`] still converges on all trials;
/// * **cost inflation bounded** — a pure-loss level at drop rate `p` costs at
///   most `1/(1-p) ·` [`DEGRADATION_SLACK`] times the no-fault baseline:
///   dropping a `p`-fraction of exchanges wastes exactly their cost, it does
///   not compound.
fn derive_degradation_verdicts(cells: &[CellSummary]) -> Vec<Verdict> {
    fn base_name(protocol: &str) -> &str {
        protocol.split('{').next().unwrap_or(protocol)
    }
    // (protocol, base group, n) → fault levels, insertion-ordered.
    type LevelKey = (String, String, usize);
    let mut series: Vec<(LevelKey, Vec<(FaultCoords, &CellSummary)>)> = Vec::new();
    for cell in cells {
        let (base_group, coords) = split_fault_group(&cell.group);
        let key = (
            base_name(&cell.protocol).to_string(),
            base_group.to_string(),
            cell.n,
        );
        match series.iter_mut().find(|(k, _)| *k == key) {
            Some((_, levels)) => levels.push((coords, cell)),
            None => series.push((key, vec![(coords, cell)])),
        }
    }
    let mut verdicts = Vec::new();
    for ((protocol, base_group, n), mut levels) in series {
        if levels.len() < 2 {
            continue;
        }
        levels.sort_by(|a, b| {
            a.0.severity()
                .partial_cmp(&b.0.severity())
                .expect("fault coordinates are finite")
        });
        let label = format!("{protocol}, {base_group}, n={n}");

        // V1: the error floor is monotone in fault severity.
        let mut floor_holds = true;
        let mut floor_details = Vec::new();
        for pair in levels.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            if hi.1.mean_final_error * DEGRADATION_SLACK < lo.1.mean_final_error {
                floor_holds = false;
            }
            floor_details.push(format!(
                "err({}) = {:.4} → err({}) = {:.4}",
                level_token(&lo.0),
                lo.1.mean_final_error,
                level_token(&hi.0),
                hi.1.mean_final_error
            ));
        }
        verdicts.push(Verdict {
            claim: format!("error floor monotone in fault severity ({label})"),
            holds: floor_holds,
            details: floor_details.join("; "),
        });

        // V2: pure loss below the ceiling never costs convergence.
        let mut conv_holds = true;
        let mut conv_details = Vec::new();
        for (coords, cell) in &levels {
            if coords.stale == 0.0 && coords.churn == 0 && coords.drop <= CONVERGENCE_DROP_CEILING {
                if cell.converged != cell.trials {
                    conv_holds = false;
                }
                conv_details.push(format!(
                    "{}: {}/{} trials converged",
                    level_token(coords),
                    cell.converged,
                    cell.trials
                ));
            }
        }
        verdicts.push(Verdict {
            claim: format!(
                "convergence retained at drop rates ≤ {CONVERGENCE_DROP_CEILING} ({label})"
            ),
            holds: conv_holds,
            details: conv_details.join("; "),
        });

        // V3: pure loss inflates cost by at most 1/(1-p), up to slack.
        let baseline = levels
            .iter()
            .find(|(coords, _)| coords.is_none())
            .map(|(_, cell)| cell.mean_transmissions);
        let mut cost_holds = true;
        let mut cost_details = Vec::new();
        if let Some(baseline) = baseline {
            for (coords, cell) in &levels {
                if coords.drop > 0.0 && coords.stale == 0.0 && coords.churn == 0 {
                    let bound = baseline * DEGRADATION_SLACK / (1.0 - coords.drop);
                    if cell.mean_transmissions > bound {
                        cost_holds = false;
                    }
                    cost_details.push(format!(
                        "tx({}) = {:.0} vs bound {:.0} (baseline {:.0})",
                        level_token(coords),
                        cell.mean_transmissions,
                        bound,
                        baseline
                    ));
                }
            }
        }
        if !cost_details.is_empty() {
            verdicts.push(Verdict {
                claim: format!("transmission cost inflation bounded by 1/(1-p) ({label})"),
                holds: cost_holds,
                details: cost_details.join("; "),
            });
        }
    }
    verdicts
}

/// Upper bound on transmission-cost inflation across a latency ladder,
/// relative to the ladder's zero-latency rung: message delay staleness wastes
/// some exchanges but must not blow the cost up by more than this factor at
/// the mean latencies the committed sweeps probe (≲ a few clock slots).
pub const LATENCY_COST_CEILING: f64 = 3.0;

/// One rung of a latency ladder, parsed back out of a group key's `lat=`
/// tail (or the bare group, which is the shared-memory zero-latency rung).
#[derive(Debug, Clone, Copy, PartialEq)]
struct LatencyCoords {
    /// Mean per-message latency (0 for instant and shared-memory).
    mean: f64,
    /// Whether the cell actually ran on the message-passing transport.
    transported: bool,
}

/// Splits a group key into its transport-free base and the latency rung its
/// final segment encodes (`…/eps=0.05/lat=exp:0.01`). Groups without a
/// `lat=` tail are the shared-memory rung of their own base.
fn split_latency_group(group: &str) -> (&str, LatencyCoords) {
    let shared_memory = LatencyCoords {
        mean: 0.0,
        transported: false,
    };
    let Some((base, tail)) = group.rsplit_once('/') else {
        return (group, shared_memory);
    };
    let Some(model) = tail.strip_prefix("lat=") else {
        return (group, shared_memory);
    };
    let mean = match model {
        "instant" => Some(0.0),
        other => other
            .strip_prefix("fixed:")
            .or_else(|| other.strip_prefix("exp:"))
            .and_then(|v| v.parse().ok()),
    };
    match mean {
        Some(mean) => (
            base,
            LatencyCoords {
                mean,
                transported: true,
            },
        ),
        None => (group, shared_memory),
    }
}

/// Derives the latency-degradation verdicts, one triple per
/// `(protocol, transport-free group, n)` ladder holding at least two rungs of
/// which at least one ran on the message-passing transport:
///
/// * **convergence retained** — every rung converges on all trials (the
///   committed sweeps keep mean latency within a few clock slots, where
///   staleness slows gossip but cannot stall it);
/// * **cost monotone** — ordering rungs by mean latency, mean transmissions
///   never *drop* by more than [`DEGRADATION_SLACK`]: delay can only waste
///   exchanges, never save them;
/// * **cost bounded** — no rung costs more than [`LATENCY_COST_CEILING`]
///   times the ladder's zero-latency rung.
fn derive_latency_verdicts(cells: &[CellSummary]) -> Vec<Verdict> {
    fn base_name(protocol: &str) -> &str {
        protocol.split('{').next().unwrap_or(protocol)
    }
    type LadderKey = (String, String, usize);
    let mut ladders: Vec<(LadderKey, Vec<(LatencyCoords, &CellSummary)>)> = Vec::new();
    for cell in cells {
        let (base_group, coords) = split_latency_group(&cell.group);
        // Fault-ladder and reliability-ladder cells have their own verdict
        // families; neither tail is a latency rung.
        if !coords.transported && split_fault_group(&cell.group).0 != cell.group.as_str() {
            continue;
        }
        if split_reliability_group(&cell.group).1.is_some() {
            continue;
        }
        let key = (
            base_name(&cell.protocol).to_string(),
            base_group.to_string(),
            cell.n,
        );
        match ladders.iter_mut().find(|(k, _)| *k == key) {
            Some((_, rungs)) => rungs.push((coords, cell)),
            None => ladders.push((key, vec![(coords, cell)])),
        }
    }
    let mut verdicts = Vec::new();
    for ((protocol, base_group, n), mut rungs) in ladders {
        if rungs.len() < 2 || !rungs.iter().any(|(coords, _)| coords.transported) {
            continue;
        }
        rungs.sort_by(|a, b| {
            a.0.mean
                .partial_cmp(&b.0.mean)
                .expect("latency means are finite")
        });
        let label = format!("{protocol}, {base_group}, n={n}");

        // L1: every rung still converges.
        let conv_holds = rungs
            .iter()
            .all(|(_, cell)| cell.trials > 0 && cell.converged == cell.trials);
        let conv_details: Vec<String> = rungs
            .iter()
            .map(|(coords, cell)| {
                format!(
                    "{}: {}/{} trials converged",
                    latency_token(coords),
                    cell.converged,
                    cell.trials
                )
            })
            .collect();
        verdicts.push(Verdict {
            claim: format!("convergence retained at every latency rung ({label})"),
            holds: conv_holds,
            details: conv_details.join("; "),
        });

        // L2: cost is monotone in mean latency, up to slack.
        let mut monotone_holds = true;
        let mut monotone_details = Vec::new();
        for pair in rungs.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            if hi.1.mean_transmissions * DEGRADATION_SLACK < lo.1.mean_transmissions {
                monotone_holds = false;
            }
            monotone_details.push(format!(
                "tx({}) = {:.0} → tx({}) = {:.0}",
                latency_token(&lo.0),
                lo.1.mean_transmissions,
                latency_token(&hi.0),
                hi.1.mean_transmissions
            ));
        }
        verdicts.push(Verdict {
            claim: format!("transmission cost monotone in mean latency ({label})"),
            holds: monotone_holds,
            details: monotone_details.join("; "),
        });

        // L3: cost inflation over the zero-latency rung stays bounded.
        let baseline = rungs[0].1.mean_transmissions;
        let bound = baseline * LATENCY_COST_CEILING;
        let worst = rungs
            .iter()
            .map(|(_, cell)| cell.mean_transmissions)
            .fold(f64::NEG_INFINITY, f64::max);
        verdicts.push(Verdict {
            claim: format!(
                "transmission cost inflation bounded by {LATENCY_COST_CEILING}x at every \
                 latency rung ({label})"
            ),
            holds: worst <= bound,
            details: format!(
                "worst rung {worst:.0} tx vs bound {bound:.0} (zero-latency baseline \
                 {baseline:.0})"
            ),
        });
    }
    verdicts
}

/// Compact human token for one latency rung (`shared-memory`, `lat=0`,
/// `lat=0.01`, …).
fn latency_token(coords: &LatencyCoords) -> String {
    if coords.transported {
        format!("lat={}", coords.mean)
    } else {
        "shared-memory".into()
    }
}

/// Upper drop rate below which an unreliable wire with retries must still
/// reach convergence (verdict R1): with the default retry budget a message's
/// end-to-end loss probability at `p = 0.3` is `p⁴ < 1%`, so nearly every
/// round completes and gossip keeps contracting.
pub const RELIABILITY_DROP_CEILING: f64 = 0.3;

/// One rung of a reliability ladder, parsed back out of a group key's `rel=`
/// tail (absence of a tail is the lossless rung of its own base group).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct ReliabilityCoords {
    /// Per-message drop probability.
    drop: f64,
    /// Per-message duplication probability.
    dup: f64,
}

impl ReliabilityCoords {
    fn is_lossless(&self) -> bool {
        self.drop == 0.0 && self.dup == 0.0
    }

    /// Severity order: drop dominates (it costs retransmissions and rounds),
    /// duplication breaks ties (it only wastes uncharged wire copies).
    fn severity(&self) -> (f64, f64) {
        (self.drop, self.dup)
    }
}

/// Splits a group key into its reliability-free base and the wire coordinates
/// its final segment encodes (`…/lat=instant/rel=drop:0.3+dup:0.05` — note
/// the colon-separated values, which keep the `rel=` tail unambiguous to the
/// `=`-keyed fault parser). Groups without a `rel=` tail return `None`: they
/// are the lossless rung of their own base.
fn split_reliability_group(group: &str) -> (&str, Option<ReliabilityCoords>) {
    let Some((base, tail)) = group.rsplit_once('/') else {
        return (group, None);
    };
    let Some(parts) = tail.strip_prefix("rel=") else {
        return (group, None);
    };
    let mut coords = ReliabilityCoords::default();
    for part in parts.split('+') {
        let parsed = match part.split_once(':') {
            Some(("drop", v)) => v.parse().ok().map(|p| coords.drop = p),
            Some(("dup", v)) => v.parse().ok().map(|p| coords.dup = p),
            _ => None,
        };
        if parsed.is_none() {
            return (group, None);
        }
    }
    (base, Some(coords))
}

/// Derives the reliability-degradation verdicts, one triple per
/// `(protocol, reliability-free group, n)` ladder holding a lossless baseline
/// plus at least one lossy rung (the baseline is the same latency rung with a
/// reliable wire — `rel=` tails stack on top of `lat=` segments):
///
/// * **convergence retained** — every rung with drop rate
///   `p ≤` [`RELIABILITY_DROP_CEILING`] converges on all trials: the retry
///   budget makes end-to-end message loss rare, so loss slows gossip but
///   cannot stall it;
/// * **cost bounded** — a rung at drop rate `p` costs at most
///   `1/(1-p)² ·` [`DEGRADATION_SLACK`] times the lossless baseline: every
///   attempt is charged and the expected attempt count per delivered message
///   is below `1/(1-p)`, while retry timeouts stall in-flight exchange
///   chains and stretch the round count by roughly another `1/(1-p)`;
/// * **error floor monotone** — ordering rungs by severity (drop, then
///   duplication), the mean final error never *drops* by more than
///   [`DEGRADATION_SLACK`]: an unreliable wire can only hurt accuracy.
fn derive_reliability_verdicts(cells: &[CellSummary]) -> Vec<Verdict> {
    fn base_name(protocol: &str) -> &str {
        protocol.split('{').next().unwrap_or(protocol)
    }
    type LadderKey = (String, String, usize);
    let mut ladders: Vec<(LadderKey, Vec<(ReliabilityCoords, &CellSummary)>)> = Vec::new();
    for cell in cells {
        let (base_group, coords) = split_reliability_group(&cell.group);
        // Cells without a rel= tail join as the lossless rung of their own
        // group; ladders that never gain a lossy rung are skipped below.
        let coords = coords.unwrap_or_default();
        let key = (
            base_name(&cell.protocol).to_string(),
            base_group.to_string(),
            cell.n,
        );
        match ladders.iter_mut().find(|(k, _)| *k == key) {
            Some((_, rungs)) => rungs.push((coords, cell)),
            None => ladders.push((key, vec![(coords, cell)])),
        }
    }
    let mut verdicts = Vec::new();
    for ((protocol, base_group, n), mut rungs) in ladders {
        if rungs.len() < 2 || rungs.iter().all(|(coords, _)| coords.is_lossless()) {
            continue;
        }
        rungs.sort_by(|a, b| {
            a.0.severity()
                .partial_cmp(&b.0.severity())
                .expect("reliability coordinates are finite")
        });
        let label = format!("{protocol}, {base_group}, n={n}");

        // R1: loss below the ceiling never costs convergence (retries hold).
        let mut conv_holds = true;
        let mut conv_details = Vec::new();
        for (coords, cell) in &rungs {
            if coords.drop <= RELIABILITY_DROP_CEILING {
                if cell.trials == 0 || cell.converged != cell.trials {
                    conv_holds = false;
                }
                conv_details.push(format!(
                    "{}: {}/{} trials converged",
                    reliability_token(coords),
                    cell.converged,
                    cell.trials
                ));
            }
        }
        verdicts.push(Verdict {
            claim: format!(
                "convergence retained with retries at drop rates ≤ \
                 {RELIABILITY_DROP_CEILING} ({label})"
            ),
            holds: conv_holds,
            details: conv_details.join("; "),
        });

        // R2: retransmissions inflate cost by at most 1/(1-p)² up to slack —
        // one 1/(1-p) factor for charged attempts per delivered message, one
        // for rounds stalled behind retry timeouts.
        let baseline = rungs
            .iter()
            .find(|(coords, _)| coords.is_lossless())
            .map(|(_, cell)| cell.mean_transmissions);
        let mut cost_holds = true;
        let mut cost_details = Vec::new();
        if let Some(baseline) = baseline {
            for (coords, cell) in &rungs {
                if coords.drop > 0.0 {
                    let keep = 1.0 - coords.drop;
                    let bound = baseline * DEGRADATION_SLACK / (keep * keep);
                    if cell.mean_transmissions > bound {
                        cost_holds = false;
                    }
                    cost_details.push(format!(
                        "tx({}) = {:.0} vs bound {:.0} (lossless baseline {:.0})",
                        reliability_token(coords),
                        cell.mean_transmissions,
                        bound,
                        baseline
                    ));
                }
            }
        }
        verdicts.push(Verdict {
            claim: format!("retransmission cost inflation bounded by 1/(1-p)\u{b2} ({label})"),
            holds: cost_holds && baseline.is_some(),
            details: if cost_details.is_empty() {
                "no lossless baseline rung in the ladder".into()
            } else {
                cost_details.join("; ")
            },
        });

        // R3: the error floor is monotone in wire severity.
        let mut floor_holds = true;
        let mut floor_details = Vec::new();
        for pair in rungs.windows(2) {
            let (lo, hi) = (&pair[0], &pair[1]);
            if hi.1.mean_final_error * DEGRADATION_SLACK < lo.1.mean_final_error {
                floor_holds = false;
            }
            floor_details.push(format!(
                "err({}) = {:.4} → err({}) = {:.4}",
                reliability_token(&lo.0),
                lo.1.mean_final_error,
                reliability_token(&hi.0),
                hi.1.mean_final_error
            ));
        }
        verdicts.push(Verdict {
            claim: format!("error floor monotone in wire loss severity ({label})"),
            holds: floor_holds,
            details: floor_details.join("; "),
        });
    }
    verdicts
}

/// Compact human token for one reliability rung (`lossless`, `drop=0.3`,
/// `drop=0.3+dup=0.05`, …).
fn reliability_token(coords: &ReliabilityCoords) -> String {
    if coords.is_lossless() {
        return "lossless".into();
    }
    let mut parts = Vec::new();
    if coords.drop > 0.0 {
        parts.push(format!("drop={}", coords.drop));
    }
    if coords.dup > 0.0 {
        parts.push(format!("dup={}", coords.dup));
    }
    parts.join("+")
}

/// Compact human token for one fault level (`none`, `drop=0.3`, …).
fn level_token(coords: &FaultCoords) -> String {
    if coords.is_none() {
        return "none".into();
    }
    let mut parts = Vec::new();
    if coords.drop > 0.0 {
        parts.push(format!("drop={}", coords.drop));
    }
    if coords.stale > 0.0 {
        parts.push(format!("stale={}", coords.stale));
    }
    if coords.churn > 0 {
        parts.push(format!("churn={}", coords.churn));
    }
    parts.join("+")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::TrialOutcome;

    fn trial(transmissions: u64, ticks: u64) -> TrialOutcome {
        TrialOutcome {
            converged: true,
            transmissions,
            routing: transmissions / 2,
            local: transmissions - transmissions / 2,
            control: 0,
            rounds: ticks,
            ticks,
            final_error: 0.04,
            seconds: 0.1,
            engine_seconds: 0.08,
        }
    }

    fn record(index: u64, protocol: &str, n: usize, cost: u64) -> CellRecord {
        CellRecord {
            index,
            name: format!("s/c{index:04}-{protocol}-n{n}"),
            protocol: protocol.into(),
            group: "unit-square/uniform-square/cc=1.5/eps=0.05".into(),
            n,
            epsilon: 0.05,
            trials: vec![trial(cost - 10, 100), trial(cost + 10, 120)],
        }
    }

    /// Synthetic records with exact power-law mean costs.
    fn power_law_records(protocol: &str, k: f64, start_index: u64) -> Vec<CellRecord> {
        [64usize, 128, 256, 512]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let cost = (3.0 * (n as f64).powf(k)).round() as u64;
                record(start_index + i as u64, protocol, n, cost)
            })
            .collect()
    }

    #[test]
    fn cell_summaries_compute_means_cis_and_quantiles() {
        let mut agg = SweepAggregator::new();
        agg.push(&record(0, "pairwise", 64, 1000));
        let result = agg.finish();
        let cell = &result.cells[0];
        assert_eq!(cell.trials, 2);
        assert_eq!(cell.converged, 2);
        assert!((cell.mean_transmissions - 1000.0).abs() < 1e-9);
        assert!((cell.median_transmissions - 1000.0).abs() < 1e-9);
        assert!(cell.ci_transmissions.contains(1000.0));
        assert!((cell.mean_ticks - 110.0).abs() < 1e-9);
        assert!((cell.mean_hops - 500.0).abs() < 1.0);
        assert!((cell.mean_seconds - 0.1).abs() < 1e-12);
        // One cell alone cannot support a fit.
        assert!(result.fits.is_empty());
    }

    #[test]
    fn fits_recover_planted_exponents_with_intervals() {
        let mut agg = SweepAggregator::new();
        for r in power_law_records("geographic", 1.5, 0) {
            agg.push(&r);
        }
        for r in power_law_records("affine-idealized", 1.05, 4) {
            agg.push(&r);
        }
        for r in power_law_records("pairwise", 2.0, 8) {
            agg.push(&r);
        }
        let result = agg.finish();
        assert_eq!(result.fits.len(), 3);
        for fit in &result.fits {
            let expected = match fit.protocol.as_str() {
                "geographic" => 1.5,
                "affine-idealized" => 1.05,
                "pairwise" => 2.0,
                other => panic!("unexpected series {other}"),
            };
            assert!(
                (fit.detail.fit.exponent - expected).abs() < 0.02,
                "{}: fitted {} expected {expected}",
                fit.protocol,
                fit.detail.fit.exponent
            );
            // The CI is symmetric around the fitted exponent (the planted
            // value can fall just outside it: integer-rounding the costs
            // biases the fit while leaving a near-zero stderr).
            assert!(fit.interval.contains(fit.detail.fit.exponent));
            assert!(fit.interval.width() >= 0.0);
            assert_eq!(fit.points, 4);
        }
    }

    #[test]
    fn verdicts_cover_the_headline_claims_and_hold_on_planted_data() {
        let mut agg = SweepAggregator::new();
        for r in power_law_records("geographic", 1.5, 0) {
            agg.push(&r);
        }
        for r in power_law_records("affine-idealized", 1.05, 4) {
            agg.push(&r);
        }
        for r in power_law_records("pairwise", 2.0, 8) {
            agg.push(&r);
        }
        let result = agg.finish();
        assert_eq!(result.verdicts.len(), 3);
        assert!(
            result.verdicts.iter().all(|v| v.holds),
            "{:#?}",
            result.verdicts
        );
        assert!(result
            .verdicts
            .iter()
            .any(|v| v.claim.contains("within [1.3, 1.7]")));
        assert!(result
            .verdicts
            .iter()
            .any(|v| v.claim.contains("strictly below geographic")));
        assert!(result
            .verdicts
            .iter()
            .any(|v| v.claim.contains("strictly below pairwise")));
    }

    #[test]
    fn verdicts_flag_violations() {
        let mut agg = SweepAggregator::new();
        // Geographic planted at k = 2.5: outside the window, and *below*
        // nothing — an affine series planted above it must fail the
        // strictly-below verdict.
        for r in power_law_records("geographic", 2.5, 0) {
            agg.push(&r);
        }
        for r in power_law_records("affine-idealized", 2.8, 4) {
            agg.push(&r);
        }
        let result = agg.finish();
        assert!(
            result.verdicts.iter().all(|v| !v.holds),
            "{:#?}",
            result.verdicts
        );
    }

    #[test]
    fn non_converged_cells_are_excluded_from_fits_and_counted() {
        let mut agg = SweepAggregator::new();
        let mut records = power_law_records("geographic", 1.5, 0);
        // Saturate the largest-n cell at a cap: one trial fails to converge
        // and its cost is far off the power law.
        let last = records.last_mut().unwrap();
        last.trials[0].converged = false;
        last.trials[0].transmissions = 1_000_000_000;
        for r in &records {
            agg.push(r);
        }
        let result = agg.finish();
        assert_eq!(result.fits.len(), 1);
        let fit = &result.fits[0];
        assert_eq!(fit.points, 3, "the saturated cell must not be fitted");
        assert_eq!(fit.excluded, 1);
        assert!(
            (fit.detail.fit.exponent - 1.5).abs() < 0.02,
            "exponent distorted by a cap-saturated cell: {}",
            fit.detail.fit.exponent
        );
        // The excluded cell still appears in the per-cell summaries.
        assert_eq!(result.cells.len(), 4);
        assert_eq!(result.cells[3].converged, 1);
    }

    /// A record at one fault level of the degradation ladder.
    fn fault_record(
        index: u64,
        fault_tail: &str,
        cost: u64,
        final_error: f64,
        converged: bool,
    ) -> CellRecord {
        let group = if fault_tail.is_empty() {
            "unit-square/uniform-square/cc=1.5/eps=0.05".to_string()
        } else {
            format!("unit-square/uniform-square/cc=1.5/eps=0.05/{fault_tail}")
        };
        let mut t = trial(cost, 100);
        t.final_error = final_error;
        t.converged = converged;
        CellRecord {
            index,
            name: format!("s/c{index:04}-pairwise-n96"),
            protocol: "pairwise".into(),
            group,
            n: 96,
            epsilon: 0.05,
            trials: vec![t],
        }
    }

    #[test]
    fn fault_groups_split_into_base_and_coordinates() {
        let (base, coords) =
            split_fault_group("unit-square/uniform-square/cc=1.5/eps=0.05/drop=0.1+stale=0.05");
        assert_eq!(base, "unit-square/uniform-square/cc=1.5/eps=0.05");
        assert_eq!(coords.drop, 0.1);
        assert_eq!(coords.stale, 0.05);
        assert_eq!(coords.churn, 0);
        // A fault-free group is its own base.
        let (base, coords) = split_fault_group("unit-square/uniform-square/cc=1.5/eps=0.05");
        assert_eq!(base, "unit-square/uniform-square/cc=1.5/eps=0.05");
        assert!(coords.is_none());
    }

    #[test]
    fn degradation_verdicts_pass_on_a_well_behaved_ladder() {
        let mut agg = SweepAggregator::new();
        agg.push(&fault_record(0, "", 1000, 0.048, true));
        agg.push(&fault_record(1, "drop=0.1", 1100, 0.047, true));
        agg.push(&fault_record(2, "drop=0.3", 1400, 0.049, true));
        agg.push(&fault_record(3, "drop=0.1+stale=0.05", 1200, 0.09, false));
        let result = agg.finish();
        let degradation: Vec<&Verdict> = result
            .verdicts
            .iter()
            .filter(|v| !v.claim.contains("exponent"))
            .collect();
        assert_eq!(degradation.len(), 3, "{:#?}", result.verdicts);
        assert!(
            degradation.iter().all(|v| v.holds),
            "{:#?}",
            result.verdicts
        );
        assert!(degradation
            .iter()
            .any(|v| v.claim.contains("error floor monotone")));
        assert!(degradation
            .iter()
            .any(|v| v.claim.contains("convergence retained")));
        assert!(degradation
            .iter()
            .any(|v| v.claim.contains("cost inflation bounded")));
    }

    #[test]
    fn degradation_verdicts_flag_each_failure_mode() {
        // Error floor *collapsing* under faults (nonsense → fail), a
        // non-converged pure-drop cell below the ceiling, and runaway cost.
        let mut agg = SweepAggregator::new();
        agg.push(&fault_record(0, "", 1000, 0.048, true));
        agg.push(&fault_record(1, "drop=0.3", 9000, 0.002, false));
        let result = agg.finish();
        let degradation: Vec<&Verdict> = result
            .verdicts
            .iter()
            .filter(|v| !v.claim.contains("exponent"))
            .collect();
        assert_eq!(degradation.len(), 3);
        assert!(
            degradation.iter().all(|v| !v.holds),
            "{:#?}",
            result.verdicts
        );
    }

    #[test]
    fn degradation_verdicts_need_at_least_two_fault_levels() {
        let mut agg = SweepAggregator::new();
        agg.push(&fault_record(0, "", 1000, 0.048, true));
        let result = agg.finish();
        assert!(result.verdicts.is_empty(), "{:#?}", result.verdicts);
    }

    /// A record at one rung of a latency ladder (empty tail = shared-memory).
    fn latency_record(
        index: u64,
        latency_tail: &str,
        cost: u64,
        final_error: f64,
        converged: bool,
    ) -> CellRecord {
        let group = if latency_tail.is_empty() {
            "unit-square/uniform-square/cc=1.5/eps=0.05".to_string()
        } else {
            format!("unit-square/uniform-square/cc=1.5/eps=0.05/{latency_tail}")
        };
        let mut t = trial(cost, 100);
        t.final_error = final_error;
        t.converged = converged;
        CellRecord {
            index,
            name: format!("s/c{index:04}-pairwise-n96"),
            protocol: "pairwise".into(),
            group,
            n: 96,
            epsilon: 0.05,
            trials: vec![t],
        }
    }

    #[test]
    fn latency_groups_split_into_base_and_rungs() {
        let (base, coords) =
            split_latency_group("unit-square/uniform-square/cc=1.5/eps=0.05/lat=exp:0.01");
        assert_eq!(base, "unit-square/uniform-square/cc=1.5/eps=0.05");
        assert_eq!(coords.mean, 0.01);
        assert!(coords.transported);
        let (_, coords) = split_latency_group("a/b/lat=instant");
        assert_eq!(coords.mean, 0.0);
        assert!(coords.transported);
        let (_, coords) = split_latency_group("a/b/lat=fixed:0.25");
        assert_eq!(coords.mean, 0.25);
        // Plain and fault-tailed groups are the shared-memory rung of
        // themselves.
        for group in ["a/b/eps=0.05", "a/b/eps=0.05/drop=0.1"] {
            let (base, coords) = split_latency_group(group);
            assert_eq!(base, group);
            assert!(!coords.transported);
        }
    }

    #[test]
    fn latency_verdicts_pass_on_a_well_behaved_ladder() {
        let mut agg = SweepAggregator::new();
        agg.push(&latency_record(0, "", 1000, 0.048, true));
        agg.push(&latency_record(1, "lat=instant", 1000, 0.048, true));
        agg.push(&latency_record(2, "lat=fixed:0.005", 1200, 0.047, true));
        agg.push(&latency_record(3, "lat=exp:0.01", 1600, 0.049, true));
        let result = agg.finish();
        let latency: Vec<&Verdict> = result
            .verdicts
            .iter()
            .filter(|v| v.claim.contains("latency"))
            .collect();
        assert_eq!(latency.len(), 3, "{:#?}", result.verdicts);
        assert!(latency.iter().all(|v| v.holds), "{:#?}", result.verdicts);
        assert!(latency.iter().any(|v| v
            .claim
            .contains("convergence retained at every latency rung")));
        assert!(latency
            .iter()
            .any(|v| v.claim.contains("cost monotone in mean latency")));
        assert!(latency
            .iter()
            .any(|v| v.claim.contains("cost inflation bounded")));
        // No fault-degradation verdicts piggy-back on a pure latency ladder.
        assert_eq!(result.verdicts.len(), 3, "{:#?}", result.verdicts);
    }

    #[test]
    fn latency_verdicts_flag_each_failure_mode() {
        // A rung that fails to converge, costs *less* than a lower rung by
        // more than slack, and blows through the inflation ceiling.
        let mut agg = SweepAggregator::new();
        agg.push(&latency_record(0, "lat=instant", 9000, 0.048, true));
        agg.push(&latency_record(1, "lat=exp:0.01", 1000, 0.2, false));
        let mut failing = latency_record(2, "lat=exp:0.02", 40000, 0.3, true);
        failing.trials[0].transmissions = 40000;
        agg.push(&failing);
        let result = agg.finish();
        let latency: Vec<&Verdict> = result
            .verdicts
            .iter()
            .filter(|v| v.claim.contains("latency"))
            .collect();
        assert_eq!(latency.len(), 3);
        assert!(latency.iter().all(|v| !v.holds), "{:#?}", result.verdicts);
    }

    #[test]
    fn latency_verdicts_need_a_transported_rung() {
        // Two shared-memory cells in the same group never form a ladder
        // (they are one cell's group in real sweeps anyway), and a single
        // transported cell has nothing to compare against.
        let mut agg = SweepAggregator::new();
        agg.push(&latency_record(0, "lat=instant", 1000, 0.048, true));
        let result = agg.finish();
        assert!(result.verdicts.is_empty(), "{:#?}", result.verdicts);
    }

    fn reliability_record(
        index: u64,
        rel_tail: &str,
        cost: u64,
        final_error: f64,
        converged: bool,
    ) -> CellRecord {
        let group = if rel_tail.is_empty() {
            "unit-square/uniform-square/cc=1.5/eps=0.05/lat=instant".to_string()
        } else {
            format!("unit-square/uniform-square/cc=1.5/eps=0.05/lat=instant/{rel_tail}")
        };
        let mut t = trial(cost, 100);
        t.final_error = final_error;
        t.converged = converged;
        CellRecord {
            index,
            name: format!("s/c{index:04}-pairwise-n96"),
            protocol: "pairwise".into(),
            group,
            n: 96,
            epsilon: 0.05,
            trials: vec![t],
        }
    }

    #[test]
    fn reliability_groups_split_into_base_and_coordinates() {
        let (base, coords) = split_reliability_group(
            "unit-square/uniform-square/cc=1.5/eps=0.05/lat=instant/rel=drop:0.3+dup:0.05",
        );
        assert_eq!(
            base,
            "unit-square/uniform-square/cc=1.5/eps=0.05/lat=instant"
        );
        let coords = coords.expect("rel tail parses");
        assert_eq!(coords.drop, 0.3);
        assert_eq!(coords.dup, 0.05);
        let (_, coords) = split_reliability_group("a/b/rel=drop:0.1");
        assert_eq!(
            coords,
            Some(ReliabilityCoords {
                drop: 0.1,
                dup: 0.0
            })
        );
        // Plain, latency-tailed, and fault-tailed groups carry no wire
        // coordinates; a malformed tail is treated the same way.
        for group in [
            "a/b/eps=0.05",
            "a/b/eps=0.05/lat=instant",
            "a/b/eps=0.05/drop=0.1",
            "a/b/eps=0.05/rel=drop=0.1",
        ] {
            let (base, coords) = split_reliability_group(group);
            assert_eq!(base, group);
            assert_eq!(coords, None);
        }
    }

    #[test]
    fn reliability_verdicts_pass_on_a_well_behaved_ladder() {
        let mut agg = SweepAggregator::new();
        agg.push(&reliability_record(0, "", 1000, 0.048, true));
        agg.push(&reliability_record(1, "rel=drop:0.1", 1150, 0.048, true));
        agg.push(&reliability_record(2, "rel=drop:0.3", 1500, 0.049, true));
        agg.push(&reliability_record(
            3,
            "rel=drop:0.3+dup:0.05",
            1550,
            0.049,
            true,
        ));
        let result = agg.finish();
        let reliability: Vec<&Verdict> = result
            .verdicts
            .iter()
            .filter(|v| {
                v.claim.contains("retries")
                    || v.claim.contains("retransmission")
                    || v.claim.contains("wire loss")
            })
            .collect();
        assert_eq!(reliability.len(), 3, "{:#?}", result.verdicts);
        assert!(
            reliability.iter().all(|v| v.holds),
            "{:#?}",
            result.verdicts
        );
        assert!(reliability
            .iter()
            .any(|v| v.claim.contains("convergence retained with retries")));
        assert!(reliability
            .iter()
            .any(|v| v.claim.contains("cost inflation bounded by 1/(1-p)")));
        assert!(reliability.iter().any(|v| v
            .claim
            .contains("error floor monotone in wire loss severity")));
        // The lossless rungs do not double as a latency ladder.
        assert_eq!(result.verdicts.len(), 3, "{:#?}", result.verdicts);
    }

    #[test]
    fn reliability_verdicts_flag_each_failure_mode() {
        // A below-ceiling rung that fails to converge, costs far beyond the
        // 1/(1-p) bound, and *improves* the error floor by more than slack.
        let mut agg = SweepAggregator::new();
        agg.push(&reliability_record(0, "", 1000, 0.048, true));
        agg.push(&reliability_record(1, "rel=drop:0.3", 10_000, 0.01, false));
        let result = agg.finish();
        let reliability: Vec<&Verdict> = result
            .verdicts
            .iter()
            .filter(|v| {
                v.claim.contains("retries")
                    || v.claim.contains("retransmission")
                    || v.claim.contains("wire loss")
            })
            .collect();
        assert_eq!(reliability.len(), 3, "{:#?}", result.verdicts);
        assert!(
            reliability.iter().all(|v| !v.holds),
            "{:#?}",
            result.verdicts
        );
    }

    #[test]
    fn reliability_verdicts_need_a_lossy_rung() {
        let mut agg = SweepAggregator::new();
        agg.push(&reliability_record(0, "", 1000, 0.048, true));
        let result = agg.finish();
        assert!(result.verdicts.is_empty(), "{:#?}", result.verdicts);
    }

    #[test]
    fn push_order_does_not_change_the_aggregate() {
        let mut forward = SweepAggregator::new();
        let mut reverse = SweepAggregator::new();
        let records = power_law_records("geographic", 1.5, 0);
        for r in &records {
            forward.push(r);
        }
        for r in records.iter().rev() {
            reverse.push(r);
        }
        let a = forward.finish();
        let b = reverse.finish();
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.fits, b.fits);
        assert_eq!(a.verdicts, b.verdicts);
    }
}
