//! Checkpointed, resumable sweep execution through the scenario [`Runner`].
//!
//! Cells execute **in canonical index order**, one at a time; each cell's
//! trials run rayon-parallel inside [`Runner::run`] under the workspace's
//! determinism contract. After every completed cell, its [`CellRecord`]
//! streams to the append-only results log — so the log is always a prefix of
//! the full campaign, a kill loses at most the in-flight cell, and a resumed
//! run produces a log whose records are bit-identical (modulo wall-clock
//! fields) to an uninterrupted run.

use crate::log::{CellRecord, ResultsLog};
use geogossip_sim::scenario::{Runner, SweepSpec};
use geogossip_sim::ProtocolError;
use geogossip_telemetry::{Event, Probe};
use std::collections::BTreeMap;
use std::path::Path;

/// Execution options for one sweep invocation.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Continue a log that already holds cells. Without this, a non-empty
    /// log is an error — accidentally mixing two campaigns in one log must
    /// fail loudly.
    pub resume: bool,
    /// Execute at most this many *missing* cells, then stop (used by tests
    /// and CI to simulate a kill at a deterministic point). `None` runs the
    /// whole remainder.
    pub max_cells: Option<usize>,
}

/// What one sweep invocation did.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Records for every cell completed so far (log order = cell order);
    /// covers the whole sweep unless `max_cells` stopped it early.
    pub records: Vec<CellRecord>,
    /// Cells skipped because the log already held them.
    pub skipped: usize,
    /// Cells executed by this invocation.
    pub executed: usize,
    /// Cells still missing (non-zero only when `max_cells` stopped early).
    pub remaining: usize,
    /// Whether a torn trailing log line was dropped on load.
    pub recovered_torn_tail: bool,
}

impl SweepOutcome {
    /// Whether every cell of the sweep has a record.
    pub fn complete(&self) -> bool {
        self.remaining == 0
    }
}

/// Progress callback payload: emitted once per cell, in order.
#[derive(Debug, Clone)]
pub enum SweepProgress<'a> {
    /// The cell was found in the results log and skipped.
    Skipped(&'a CellRecord),
    /// The cell was just executed (wall-clock seconds of the whole cell).
    Completed(&'a CellRecord, f64),
}

/// Runs (or resumes) a sweep, streaming each completed cell to
/// `log_path` when given. Pass `None` to run purely in memory (the example
/// and one-shot studies).
///
/// # Errors
///
/// * Spec validation and runner errors propagate.
/// * A non-empty log without `options.resume` is rejected.
/// * A log whose records do not match the sweep's cells (wrong index or
///   name) is rejected — it belongs to a different campaign.
pub fn run_sweep(
    runner: &Runner,
    sweep: &SweepSpec,
    log_path: Option<&Path>,
    options: &SweepOptions,
    progress: impl FnMut(SweepProgress<'_>),
) -> Result<SweepOutcome, ProtocolError> {
    run_sweep_inner(runner, sweep, log_path, options, progress, None)
}

/// Runs (or resumes) a sweep exactly like [`run_sweep`] while streaming
/// telemetry into `probe`: each *executed* cell is bracketed by
/// `cell-started` / `cell-finished` events (the latter carrying the per-cell
/// summary counters), with the cell's per-trial event stream in between.
/// Cells skipped from the results log emit nothing — they did not run.
pub fn run_sweep_probed(
    runner: &Runner,
    sweep: &SweepSpec,
    log_path: Option<&Path>,
    options: &SweepOptions,
    progress: impl FnMut(SweepProgress<'_>),
    probe: &mut dyn Probe,
) -> Result<SweepOutcome, ProtocolError> {
    run_sweep_inner(runner, sweep, log_path, options, progress, Some(probe))
}

fn run_sweep_inner(
    runner: &Runner,
    sweep: &SweepSpec,
    log_path: Option<&Path>,
    options: &SweepOptions,
    mut progress: impl FnMut(SweepProgress<'_>),
    mut probe: Option<&mut dyn Probe>,
) -> Result<SweepOutcome, ProtocolError> {
    sweep.validate()?;
    let cells = sweep.expand();

    let mut completed: BTreeMap<u64, CellRecord> = BTreeMap::new();
    let mut recovered_torn_tail = false;
    if let Some(path) = log_path {
        let contents = ResultsLog::load(path)?;
        recovered_torn_tail = contents.dropped_torn_tail;
        if contents.dropped_torn_tail {
            // Discard the torn fragment on disk, or the next append would
            // concatenate onto it and corrupt the line.
            ResultsLog::truncate(path, contents.valid_len)?;
        }
        if !contents.records.is_empty() && !options.resume {
            return Err(ProtocolError::malformed(format!(
                "results log `{}` already holds {} cell(s); pass --resume to continue it \
                 or choose a fresh log",
                path.display(),
                contents.records.len()
            )));
        }
        for record in contents.records {
            let cell = cells.get(record.index as usize).ok_or_else(|| {
                ProtocolError::malformed(format!(
                    "results log `{}` holds cell {} but the sweep has only {} cells \
                     — the log belongs to a different campaign",
                    path.display(),
                    record.index,
                    cells.len()
                ))
            })?;
            if cell.spec.name != record.name {
                return Err(ProtocolError::malformed(format!(
                    "results log `{}` cell {} is named `{}` but the sweep expands it as `{}` \
                     — the log belongs to a different campaign",
                    path.display(),
                    record.index,
                    record.name,
                    cell.spec.name
                )));
            }
            completed.insert(record.index, record);
        }
    }

    let mut records = Vec::with_capacity(cells.len());
    let mut skipped = 0usize;
    let mut executed = 0usize;
    let mut remaining = 0usize;
    for cell in &cells {
        if let Some(record) = completed.remove(&cell.index) {
            records.push(record);
            skipped += 1;
            progress(SweepProgress::Skipped(records.last().expect("just pushed")));
            continue;
        }
        if options.max_cells.is_some_and(|cap| executed >= cap) {
            remaining += 1;
            continue;
        }
        let start = std::time::Instant::now();
        let report = match probe.as_deref_mut() {
            Some(probe) => {
                probe.on_event(Event::CellStarted {
                    index: cell.index,
                    name: cell.spec.name.clone(),
                });
                let report = runner.run_probed(&cell.spec, probe)?;
                probe.on_event(Event::CellFinished {
                    index: cell.index,
                    name: cell.spec.name.clone(),
                    trials: report.trials.len() as u64,
                    converged_trials: report.trials.iter().filter(|t| t.converged).count() as u64,
                    ticks: report.trials.iter().map(|t| t.ticks).sum(),
                    transmissions: report.trials.iter().map(|t| t.transmissions.total()).sum(),
                });
                report
            }
            None => runner.run(&cell.spec)?,
        };
        let record = CellRecord::new(cell, &report);
        if let Some(path) = log_path {
            ResultsLog::append(path, &record)?;
        }
        records.push(record);
        executed += 1;
        progress(SweepProgress::Completed(
            records.last().expect("just pushed"),
            start.elapsed().as_secs_f64(),
        ));
    }
    Ok(SweepOutcome {
        records,
        skipped,
        executed,
        remaining,
        recovered_torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_sim::clock::Tick;
    use geogossip_sim::engine::Activation;
    use geogossip_sim::scenario::{ProtocolFactory, ProtocolSpec};
    use geogossip_sim::TransmissionCounter;
    use rand::{Rng, RngCore};

    /// The runner-test drift protocol, reused: outcome depends on every RNG
    /// stream, so determinism violations would show up immediately.
    struct DriftProtocol {
        error: f64,
    }

    impl Activation for DriftProtocol {
        fn on_tick(&mut self, _tick: Tick, tx: &mut TransmissionCounter, rng: &mut dyn RngCore) {
            tx.charge_local(1);
            self.error *= 0.9 + 0.05 * rng.gen::<f64>();
        }
        fn relative_error(&self) -> f64 {
            self.error
        }
        fn name(&self) -> &str {
            "drift"
        }
    }

    struct DriftFactory;

    impl ProtocolFactory for DriftFactory {
        fn names(&self) -> Vec<String> {
            vec!["drift".into()]
        }
        fn seed_tag(&self, name: &str) -> Option<u64> {
            (name == "drift").then_some(11)
        }
        fn build<'a>(
            &self,
            spec: &ProtocolSpec,
            _graph: &'a geogossip_graph::GeometricGraph,
            _values: Vec<f64>,
            _epsilon: f64,
            _rng: &mut dyn RngCore,
        ) -> Result<Box<dyn Activation + 'a>, ProtocolError> {
            spec.reject_unknown(&[])?;
            Ok(Box::new(DriftProtocol { error: 1.0 }))
        }
    }

    fn sweep() -> SweepSpec {
        SweepSpec::new(
            "drift-sweep",
            vec![32, 48],
            vec![ProtocolSpec::named("drift")],
        )
        .with_trials(2)
        .with_epsilons(vec![0.1, 0.2])
        .with_seed(5)
    }

    fn temp_log(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("geogossip-lab-run-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn in_memory_run_covers_every_cell_deterministically() {
        let runner = Runner::new(Box::new(DriftFactory));
        let opts = SweepOptions::default();
        let a = run_sweep(&runner, &sweep(), None, &opts, |_| {}).unwrap();
        let b = run_sweep(&runner, &sweep(), None, &opts, |_| {}).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.records.len(), 4);
        assert!(a.complete());
        assert_eq!(a.executed, 4);
        assert_eq!(a.skipped, 0);
        // Cells see independent randomness (distinct derived seeds).
        assert_ne!(a.records[0].trials[0].ticks, a.records[1].trials[0].ticks);
    }

    #[test]
    fn killed_and_resumed_runs_match_an_uninterrupted_run() {
        let runner = Runner::new(Box::new(DriftFactory));
        let uninterrupted =
            run_sweep(&runner, &sweep(), None, &SweepOptions::default(), |_| {}).unwrap();

        let path = temp_log("resume.jsonl");
        // "Kill" after 1 cell, then after 2 more, then finish.
        let first = run_sweep(
            &runner,
            &sweep(),
            Some(&path),
            &SweepOptions {
                resume: false,
                max_cells: Some(1),
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(first.executed, 1);
        assert_eq!(first.remaining, 3);
        assert!(!first.complete());
        let second = run_sweep(
            &runner,
            &sweep(),
            Some(&path),
            &SweepOptions {
                resume: true,
                max_cells: Some(2),
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(second.skipped, 1);
        assert_eq!(second.executed, 2);
        let last = run_sweep(
            &runner,
            &sweep(),
            Some(&path),
            &SweepOptions {
                resume: true,
                max_cells: None,
            },
            |_| {},
        )
        .unwrap();
        assert!(last.complete());
        assert_eq!(last.skipped, 3);
        assert_eq!(last.executed, 1);
        assert_eq!(last.records, uninterrupted.records);
        // The on-disk log holds every cell, in order.
        let logged = ResultsLog::load(&path).unwrap();
        assert_eq!(logged.records, uninterrupted.records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_empty_log_without_resume_is_rejected() {
        let runner = Runner::new(Box::new(DriftFactory));
        let path = temp_log("no-resume.jsonl");
        run_sweep(
            &runner,
            &sweep(),
            Some(&path),
            &SweepOptions {
                resume: false,
                max_cells: Some(1),
            },
            |_| {},
        )
        .unwrap();
        let err = run_sweep(
            &runner,
            &sweep(),
            Some(&path),
            &SweepOptions::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("--resume"), "got {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn logs_from_a_different_campaign_are_rejected() {
        let runner = Runner::new(Box::new(DriftFactory));
        let path = temp_log("foreign.jsonl");
        run_sweep(
            &runner,
            &sweep(),
            Some(&path),
            &SweepOptions {
                resume: false,
                max_cells: Some(1),
            },
            |_| {},
        )
        .unwrap();
        // Same log, different campaign (renamed sweep → different cell names).
        let mut other = sweep();
        other.name = "other-campaign".into();
        let err = run_sweep(
            &runner,
            &other,
            Some(&path),
            &SweepOptions {
                resume: true,
                max_cells: None,
            },
            |_| {},
        )
        .unwrap_err();
        assert!(err.to_string().contains("different campaign"), "got {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn progress_reports_skips_and_completions_in_cell_order() {
        let runner = Runner::new(Box::new(DriftFactory));
        let path = temp_log("progress.jsonl");
        run_sweep(
            &runner,
            &sweep(),
            Some(&path),
            &SweepOptions {
                resume: false,
                max_cells: Some(2),
            },
            |_| {},
        )
        .unwrap();
        let mut events = Vec::new();
        run_sweep(
            &runner,
            &sweep(),
            Some(&path),
            &SweepOptions {
                resume: true,
                max_cells: None,
            },
            |p| {
                events.push(match p {
                    SweepProgress::Skipped(r) => ("skip", r.index),
                    SweepProgress::Completed(r, _) => ("run", r.index),
                });
            },
        )
        .unwrap();
        assert_eq!(
            events,
            vec![("skip", 0), ("skip", 1), ("run", 2), ("run", 3)]
        );
        let _ = std::fs::remove_file(&path);
    }
}
