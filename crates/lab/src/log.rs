//! The append-only JSONL results log — the sweep lab's checkpoint format.
//!
//! Every completed cell becomes **one line** of JSON, written with a single
//! `write` + flush after the cell's trials finish. Re-running a sweep against
//! the same log skips every cell already present, so a campaign can be killed
//! at any point and resumed bit-identically: the already-written lines are
//! never touched (append-only discipline), and the missing cells re-run from
//! their own `(master_seed, cell_index)`-derived seeds.
//!
//! A kill can tear the final line mid-write. [`ResultsLog::load`] therefore
//! drops a trailing line that does not parse (the cell simply re-runs on
//! resume); a malformed line anywhere *else* is a hard error — that is
//! corruption, not a torn tail.
//!
//! Wall-clock fields (`seconds`, `engine-seconds`) ride along in every trial
//! record for observability but are **excluded from record equality**, the
//! same contract as `TrialCost`.

use geogossip_analysis::json::JsonValue;
use geogossip_sim::scenario::{ParamValue, PlacementSpec, RadiusSpec, ScenarioReport, SweepCell};
use geogossip_sim::ProtocolError;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::Path;

/// One trial's outcome, reduced to the log's schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Whether the accuracy target was reached.
    pub converged: bool,
    /// Total one-hop transmissions.
    pub transmissions: u64,
    /// Routing (multi-hop) share of the total — the "hops" cost.
    pub routing: u64,
    /// Local-exchange share of the total.
    pub local: u64,
    /// Control-traffic share of the total.
    pub control: u64,
    /// Protocol rounds (engine ticks for tick-driven protocols).
    pub rounds: u64,
    /// Engine ticks consumed.
    pub ticks: u64,
    /// Final relative ℓ₂ error.
    pub final_error: f64,
    /// Whole-trial wall-clock seconds (timing, not semantics).
    pub seconds: f64,
    /// Engine-run wall-clock seconds (timing, not semantics).
    pub engine_seconds: f64,
}

/// Semantic equality: wall-clock timings are excluded, mirroring
/// `TrialCost`'s contract — determinism is about results, not machine speed.
impl PartialEq for TrialOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.converged == other.converged
            && self.transmissions == other.transmissions
            && self.routing == other.routing
            && self.local == other.local
            && self.control == other.control
            && self.rounds == other.rounds
            && self.ticks == other.ticks
            && self.final_error.to_bits() == other.final_error.to_bits()
    }
}

/// One completed sweep cell: its grid coordinates plus per-trial outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Flat cell index in the sweep's canonical expansion order.
    pub index: u64,
    /// The cell's scenario name (`{sweep}/c{index:04}-{protocol}-n{n}`).
    pub name: String,
    /// Protocol key: registry name plus rendered params when present.
    pub protocol: String,
    /// The non-protocol, non-`n` axis coordinates
    /// (`surface/placement/radius/eps=…`, plus the fault token as a
    /// `/drop=…+stale=…` segment when the cell injects faults, plus the
    /// transport token as a `/lat=…` segment when the cell runs on the
    /// message-passing transport) — the fit-grouping key. Default cells keep
    /// the historical four-segment key.
    pub group: String,
    /// Network size of the cell.
    pub n: usize,
    /// Stop target of the cell.
    pub epsilon: f64,
    /// Per-trial outcomes in trial order.
    pub trials: Vec<TrialOutcome>,
}

/// Renders a protocol spec as a stable key: the registry name, plus compact
/// `{k=v, …}` params when any are set (two axis entries sharing a name but
/// differing in params must group separately).
fn protocol_key(spec: &geogossip_sim::scenario::ProtocolSpec) -> String {
    if spec.params.is_empty() {
        return spec.name.clone();
    }
    let params: Vec<String> = spec
        .params
        .iter()
        .map(|(k, v)| match v {
            ParamValue::Number(x) => format!("{k}={x}"),
            ParamValue::Text(s) => format!("{k}={s}"),
            ParamValue::Flag(b) => format!("{k}={b}"),
        })
        .collect();
    format!("{}{{{}}}", spec.name, params.join(","))
}

impl CellRecord {
    /// Builds the record for a just-completed cell from its scenario report.
    pub fn new(cell: &SweepCell, report: &ScenarioReport) -> Self {
        let spec = &cell.spec;
        let placement = match spec.topology.placement {
            PlacementSpec::UniformSquare => "uniform-square".to_string(),
            PlacementSpec::Clustered { clusters, spread } => {
                format!("clustered(k={clusters},spread={spread})")
            }
            PlacementSpec::Perforated { hole } => format!(
                "perforated({},{},{},{})",
                hole.min().x,
                hole.min().y,
                hole.max().x,
                hole.max().y
            ),
        };
        let radius = match spec.topology.radius {
            RadiusSpec::ConnectivityConstant(c) => format!("cc={c}"),
            RadiusSpec::Absolute(r) => format!("r={r}"),
        };
        // `/`-separated (not `|`): group strings land in Markdown table
        // cells, where a pipe would split the column.
        let mut group = format!(
            "{}/{}/{}/eps={}",
            spec.topology.surface.token(),
            placement,
            radius,
            spec.stop.epsilon
        );
        if !spec.faults.is_none() {
            group.push('/');
            group.push_str(&spec.faults.token());
        }
        if let Some(transport) = &spec.transport {
            group.push('/');
            group.push_str(&transport.token());
        }
        let trials = report
            .trials
            .iter()
            .map(|t| TrialOutcome {
                converged: t.converged,
                transmissions: t.transmissions.total(),
                routing: t.transmissions.routing(),
                local: t.transmissions.local(),
                control: t.transmissions.control(),
                rounds: t.rounds,
                ticks: t.ticks,
                final_error: t.final_error,
                seconds: t.seconds,
                engine_seconds: t.engine_seconds,
            })
            .collect();
        CellRecord {
            index: cell.index,
            name: spec.name.clone(),
            protocol: protocol_key(&spec.protocol),
            group,
            n: spec.topology.n,
            epsilon: spec.stop.epsilon,
            trials,
        }
    }

    /// Serialises the record to its (single-line) JSON document model.
    pub fn to_json_value(&self) -> JsonValue {
        let trials = self
            .trials
            .iter()
            .map(|t| {
                JsonValue::object(vec![
                    ("converged", JsonValue::Bool(t.converged)),
                    ("transmissions", t.transmissions.into()),
                    ("routing", t.routing.into()),
                    ("local", t.local.into()),
                    ("control", t.control.into()),
                    ("rounds", t.rounds.into()),
                    ("ticks", t.ticks.into()),
                    ("final-error", t.final_error.into()),
                    ("seconds", t.seconds.into()),
                    ("engine-seconds", t.engine_seconds.into()),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("cell", self.index.into()),
            ("name", JsonValue::string(self.name.clone())),
            ("protocol", JsonValue::string(self.protocol.clone())),
            ("group", JsonValue::string(self.group.clone())),
            ("n", self.n.into()),
            ("epsilon", self.epsilon.into()),
            ("trials", JsonValue::Array(trials)),
        ])
    }

    /// Parses a record from its JSON document model.
    pub fn from_json_value(doc: &JsonValue) -> Result<Self, ProtocolError> {
        let field_u64 = |key: &str| {
            doc.get(key).and_then(JsonValue::as_u64).ok_or_else(|| {
                ProtocolError::malformed(format!("record `{key}` must be a whole number"))
            })
        };
        let field_str = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| ProtocolError::malformed(format!("record `{key}` must be a string")))
        };
        let epsilon = doc
            .get("epsilon")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| ProtocolError::malformed("record `epsilon` must be a number"))?;
        let trial_docs = doc
            .get("trials")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ProtocolError::malformed("record `trials` must be an array"))?;
        let mut trials = Vec::with_capacity(trial_docs.len());
        for t in trial_docs {
            let u = |key: &str| {
                t.get(key).and_then(JsonValue::as_u64).ok_or_else(|| {
                    ProtocolError::malformed(format!("trial `{key}` must be a whole number"))
                })
            };
            let f = |key: &str| {
                t.get(key).and_then(JsonValue::as_f64).ok_or_else(|| {
                    ProtocolError::malformed(format!("trial `{key}` must be a number"))
                })
            };
            trials.push(TrialOutcome {
                converged: t
                    .get("converged")
                    .and_then(JsonValue::as_bool)
                    .ok_or_else(|| ProtocolError::malformed("trial `converged` must be a bool"))?,
                transmissions: u("transmissions")?,
                routing: u("routing")?,
                local: u("local")?,
                control: u("control")?,
                rounds: u("rounds")?,
                ticks: u("ticks")?,
                final_error: f("final-error")?,
                seconds: f("seconds")?,
                engine_seconds: f("engine-seconds")?,
            });
        }
        Ok(CellRecord {
            index: field_u64("cell")?,
            name: field_str("name")?,
            protocol: field_str("protocol")?,
            group: field_str("group")?,
            n: field_u64("n")? as usize,
            epsilon,
            trials,
        })
    }
}

/// What [`ResultsLog::load`] found on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct LogContents {
    /// The parsed records, in file order.
    pub records: Vec<CellRecord>,
    /// Whether a torn (unparseable) trailing line was dropped — the sign of
    /// a kill mid-append; the affected cell simply re-runs.
    pub dropped_torn_tail: bool,
    /// Byte length of the valid prefix (up to and including the newline of
    /// the last good record). When a torn tail was dropped, the file must be
    /// truncated to this length **before** the next append — otherwise the
    /// appended record would concatenate onto the torn fragment and corrupt
    /// the line ([`ResultsLog::truncate`]).
    pub valid_len: u64,
}

/// Handle on an append-only JSONL results log.
pub struct ResultsLog;

impl ResultsLog {
    /// Loads every record from `path`. A missing file is an empty log. A
    /// trailing line that fails to parse — or parses but lost its trailing
    /// newline — is dropped (torn by a kill); a malformed line anywhere else
    /// is a hard error carrying its line number.
    pub fn load(path: &Path) -> Result<LogContents, ProtocolError> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(LogContents {
                    records: Vec::new(),
                    dropped_torn_tail: false,
                    valid_len: 0,
                })
            }
            Err(e) => {
                return Err(ProtocolError::malformed(format!(
                    "cannot read results log `{}`: {e}",
                    path.display()
                )))
            }
        };
        // Non-empty lines with the byte offset where each starts, so the
        // valid prefix length survives interleaved blank lines.
        let mut lines: Vec<(usize, &str)> = Vec::new();
        let mut offset = 0usize;
        for segment in text.split_inclusive('\n') {
            if !segment.trim().is_empty() {
                lines.push((offset, segment));
            }
            offset += segment.len();
        }
        let mut records = Vec::with_capacity(lines.len());
        let mut dropped_torn_tail = false;
        let mut valid_len = 0u64;
        for (i, (start, line)) in lines.iter().enumerate() {
            let parsed = JsonValue::parse(line.trim_end())
                .map_err(|e| ProtocolError::malformed(e.to_string()))
                .and_then(|doc| CellRecord::from_json_value(&doc));
            match parsed {
                Ok(record) if line.ends_with('\n') => {
                    records.push(record);
                    valid_len = (start + line.len()) as u64;
                }
                Ok(_) => {
                    // A record that parses but lost its trailing newline can
                    // only be the final line (the append was killed between
                    // the JSON and the `\n`). Keeping it would make the next
                    // append concatenate onto it and corrupt the line — so it
                    // is torn, like any other interrupted append: dropped,
                    // truncated away, and its cell re-runs.
                    dropped_torn_tail = true;
                }
                Err(e) if i + 1 == lines.len() => {
                    // Torn tail: the final append was interrupted. Drop the
                    // line; its cell re-runs on resume.
                    let _ = e;
                    dropped_torn_tail = true;
                }
                Err(e) => {
                    return Err(ProtocolError::malformed(format!(
                        "results log `{}` line {}: {e}",
                        path.display(),
                        i + 1
                    )))
                }
            }
        }
        Ok(LogContents {
            records,
            dropped_torn_tail,
            valid_len,
        })
    }

    /// Truncates the log to its valid prefix, discarding a torn tail so the
    /// next append starts on a fresh line. The only write that ever shortens
    /// the file; callers invoke it exactly when `load` reported
    /// `dropped_torn_tail`.
    pub fn truncate(path: &Path, valid_len: u64) -> Result<(), ProtocolError> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| {
                ProtocolError::malformed(format!(
                    "cannot open results log `{}` for repair: {e}",
                    path.display()
                ))
            })?;
        file.set_len(valid_len).map_err(|e| {
            ProtocolError::malformed(format!(
                "cannot truncate results log `{}` to {valid_len} bytes: {e}",
                path.display()
            ))
        })
    }

    /// Appends one record as a single compact line (one `write` call plus a
    /// flush, so a kill can tear at most the final line).
    pub fn append(path: &Path, record: &CellRecord) -> Result<(), ProtocolError> {
        let io_err = |e: std::io::Error| {
            ProtocolError::malformed(format!(
                "cannot append to results log `{}`: {e}",
                path.display()
            ))
        };
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(io_err)?;
        let line = record.to_json_value().render() + "\n";
        file.write_all(line.as_bytes()).map_err(io_err)?;
        file.flush().map_err(io_err)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: u64) -> CellRecord {
        CellRecord {
            index,
            name: format!("demo/c{index:04}-pairwise-n64"),
            protocol: "pairwise".into(),
            group: "unit-square/uniform-square/cc=1.5/eps=0.05".into(),
            n: 64,
            epsilon: 0.05,
            trials: vec![TrialOutcome {
                converged: true,
                transmissions: 1000 + index,
                routing: 400,
                local: 600,
                control: index,
                rounds: 37,
                ticks: 37,
                final_error: 0.042,
                seconds: 0.5,
                engine_seconds: 0.4,
            }],
        }
    }

    /// The group key of a transport cell carries the `lat=` token as its
    /// final segment (the latency-ladder coordinate the aggregator parses).
    #[test]
    fn transport_cells_append_the_latency_token_to_the_group() {
        use geogossip_sim::scenario::{ScenarioReport, ScenarioSpec, SweepCell};
        use geogossip_sim::transport::{LatencyModel, TransportSpec};
        let bare = ScenarioSpec::standard("pairwise", 16, 0.1);
        let transported =
            bare.clone()
                .with_transport(TransportSpec::with_latency(LatencyModel::Exponential {
                    mean: 0.01,
                }));
        for (spec, suffix) in [(bare, None), (transported, Some("/lat=exp:0.01"))] {
            let cell = SweepCell {
                index: 0,
                spec: spec.clone(),
            };
            let report = ScenarioReport::new(spec, "pairwise (Boyd)".into(), Vec::new());
            let record = CellRecord::new(&cell, &report);
            match suffix {
                Some(suffix) => assert!(
                    record.group.ends_with(suffix),
                    "group `{}` lacks `{suffix}`",
                    record.group
                ),
                None => assert!(
                    !record.group.contains("lat="),
                    "default cell got a transport tail: `{}`",
                    record.group
                ),
            }
        }
    }

    #[test]
    fn records_round_trip_through_single_line_json() {
        let r = record(3);
        let line = r.to_json_value().render();
        assert!(!line.contains('\n'), "records must be single-line");
        let parsed = CellRecord::from_json_value(&JsonValue::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn equality_ignores_wall_clock() {
        let a = record(1);
        let mut b = a.clone();
        b.trials[0].seconds = 99.0;
        b.trials[0].engine_seconds = 98.0;
        assert_eq!(a, b);
        b.trials[0].ticks += 1;
        assert_ne!(a, b);
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = std::env::temp_dir().join("geogossip-lab-log-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        for i in 0..3 {
            ResultsLog::append(&path, &record(i)).unwrap();
        }
        let contents = ResultsLog::load(&path).unwrap();
        assert!(!contents.dropped_torn_tail);
        assert_eq!(contents.records, vec![record(0), record(1), record(2)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_log_is_empty() {
        let contents = ResultsLog::load(Path::new("/nonexistent/geogossip-lab.jsonl")).unwrap();
        assert!(contents.records.is_empty());
        assert!(!contents.dropped_torn_tail);
    }

    #[test]
    fn torn_tail_is_dropped_but_interior_corruption_is_fatal() {
        let dir = std::env::temp_dir().join("geogossip-lab-log-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let good = record(0).to_json_value().render();
        // Torn tail: final line cut mid-JSON.
        std::fs::write(&path, format!("{good}\n{}", &good[..good.len() / 2])).unwrap();
        let contents = ResultsLog::load(&path).unwrap();
        assert!(contents.dropped_torn_tail);
        assert_eq!(contents.records, vec![record(0)]);
        assert_eq!(contents.valid_len as usize, good.len() + 1);
        // Interior corruption: the same torn text followed by a good line.
        std::fs::write(&path, format!("{}\n{good}\n", &good[..good.len() / 2])).unwrap();
        let err = ResultsLog::load(&path).unwrap_err();
        assert!(err.to_string().contains("line 1"), "got {err}");
        let _ = std::fs::remove_file(&path);
    }

    /// The torn-tail property, exhaustively: truncate a valid 3-record log at
    /// EVERY byte offset. Whatever the cut, `load` must recover every fully
    /// written record (none silently dropped), report a torn tail exactly
    /// when trailing bytes remain beyond the valid prefix, and after
    /// repair + re-append the log must parse cleanly with exactly one cell
    /// re-run.
    #[test]
    fn every_byte_truncation_recovers_the_valid_prefix_and_repairs() {
        let dir = std::env::temp_dir().join("geogossip-lab-log-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("every-byte.jsonl");
        let lines: Vec<String> = (0..3)
            .map(|i| record(i).to_json_value().render() + "\n")
            .collect();
        let text = lines.concat();
        // Byte offset where each fully-written record ends.
        let boundaries: Vec<usize> = lines
            .iter()
            .scan(0usize, |acc, l| {
                *acc += l.len();
                Some(*acc)
            })
            .collect();
        for cut in 0..=text.len() {
            let complete = boundaries.iter().filter(|&&b| b <= cut).count();
            let valid_len = if complete == 0 {
                0
            } else {
                boundaries[complete - 1]
            };
            std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();
            let contents = ResultsLog::load(&path)
                .unwrap_or_else(|e| panic!("cut at byte {cut} must not hard-error: {e}"));
            let expected: Vec<CellRecord> = (0..complete as u64).map(record).collect();
            assert_eq!(contents.records, expected, "cut at byte {cut}");
            assert_eq!(contents.valid_len as usize, valid_len, "cut at byte {cut}");
            assert_eq!(
                contents.dropped_torn_tail,
                cut > valid_len,
                "cut at byte {cut}"
            );
            // Repair exactly as the sweep runner does, then re-run the one
            // torn cell: the log must come back complete and untorn.
            if contents.dropped_torn_tail {
                ResultsLog::truncate(&path, contents.valid_len).unwrap();
            }
            ResultsLog::append(&path, &record(complete as u64)).unwrap();
            let repaired = ResultsLog::load(&path).unwrap();
            assert!(!repaired.dropped_torn_tail, "cut at byte {cut}");
            let expected: Vec<CellRecord> = (0..=complete as u64).map(record).collect();
            assert_eq!(repaired.records, expected, "cut at byte {cut}");
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Interior corruption at every line: a half-written line that is NOT the
    /// tail must hard-error with that line's number — resuming over it would
    /// silently drop a committed cell.
    #[test]
    fn interior_corruption_reports_the_right_line_number() {
        let dir = std::env::temp_dir().join("geogossip-lab-log-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("interior.jsonl");
        let lines: Vec<String> = (0..3)
            .map(|i| record(i).to_json_value().render() + "\n")
            .collect();
        for corrupt in 0..2 {
            let mut text = String::new();
            for (i, line) in lines.iter().enumerate() {
                if i == corrupt {
                    text.push_str(&line[..line.len() / 2]);
                    text.push('\n');
                } else {
                    text.push_str(line);
                }
            }
            std::fs::write(&path, &text).unwrap();
            let err = ResultsLog::load(&path).unwrap_err();
            assert!(
                err.to_string().contains(&format!("line {}", corrupt + 1)),
                "corrupting line {corrupt} gave `{err}`"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_then_append_keeps_the_log_parseable() {
        let dir = std::env::temp_dir().join("geogossip-lab-log-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repair.jsonl");
        let good = record(0).to_json_value().render();
        std::fs::write(&path, format!("{good}\n{}", &good[..good.len() / 2])).unwrap();
        let contents = ResultsLog::load(&path).unwrap();
        assert!(contents.dropped_torn_tail);
        // Repair, then append the re-run cell: the log must parse cleanly
        // with both records (without the truncation the append would
        // concatenate onto the torn fragment and corrupt the line).
        ResultsLog::truncate(&path, contents.valid_len).unwrap();
        ResultsLog::append(&path, &record(1)).unwrap();
        let repaired = ResultsLog::load(&path).unwrap();
        assert!(!repaired.dropped_torn_tail);
        assert_eq!(repaired.records, vec![record(0), record(1)]);
        let _ = std::fs::remove_file(&path);
    }
}
