//! Log-bucketed histograms for wall-clock phase profiling.
//!
//! Durations span many orders of magnitude (a field draw takes microseconds,
//! a large engine run minutes), so buckets are powers of two: bucket `i`
//! covers `[2^(MIN_EXP+i), 2^(MIN_EXP+i+1))` seconds. All state is integer
//! counts — no floating-point accumulators — so [`LogHistogram::merge`] is
//! exactly associative and commutative, and a sweep can fold per-trial
//! histograms in any grouping and land on identical bytes.

use crate::json::JsonValue;

/// Exponent of the lowest finite bucket boundary (`2^-30 s` ≈ 0.93 ns).
pub const MIN_EXP: i32 = -30;

/// Exponent of the overflow boundary (`2^16 s` ≈ 18.2 h).
pub const MAX_EXP: i32 = 16;

/// Number of finite buckets.
pub const BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize;

/// A histogram with power-of-two bucket boundaries plus three out-of-range
/// counters: `zero` (samples ≤ 0 or NaN), `underflow` (positive but below
/// `2^MIN_EXP`), and `overflow` (at or above `2^MAX_EXP`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    zero: u64,
    underflow: u64,
    overflow: u64,
    counts: Vec<u64>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            zero: 0,
            underflow: 0,
            overflow: 0,
            counts: vec![0; BUCKETS],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            // ≤ 0 and NaN both land here: durations are never negative, and
            // a NaN would otherwise vanish silently.
            self.zero += 1;
            return;
        }
        let exp = exponent_of(x);
        if exp < MIN_EXP {
            self.underflow += 1;
        } else if exp >= MAX_EXP {
            self.overflow += 1;
        } else {
            self.counts[(exp - MIN_EXP) as usize] += 1;
        }
    }

    /// Total number of recorded samples, out-of-range counters included.
    pub fn count(&self) -> u64 {
        self.zero + self.underflow + self.overflow + self.counts.iter().copied().sum::<u64>()
    }

    /// Samples that were ≤ 0 (or NaN).
    pub fn zero(&self) -> u64 {
        self.zero
    }

    /// Positive samples below the lowest bucket boundary.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the overflow boundary.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The count in finite bucket `i` (see [`bucket_bounds`]).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Iterates the non-empty finite buckets as `(lo, hi, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// Adds every counter of `other` into `self`.
    ///
    /// Counts are integers, so the merge is exactly associative and
    /// commutative — folding per-trial histograms in any order produces the
    /// same histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        self.zero += other.zero;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// Renders the histogram as JSON: out-of-range counters plus a sparse
    /// `buckets` array of `[exponent, count]` pairs.
    pub fn to_json_value(&self) -> JsonValue {
        let buckets: Vec<JsonValue> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                JsonValue::Array(vec![
                    JsonValue::Number((MIN_EXP + i as i32) as f64),
                    JsonValue::from(c),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("zero", JsonValue::from(self.zero)),
            ("underflow", JsonValue::from(self.underflow)),
            ("overflow", JsonValue::from(self.overflow)),
            ("buckets", JsonValue::Array(buckets)),
        ])
    }

    /// Parses the [`to_json_value`](Self::to_json_value) form back.
    pub fn from_json_value(value: &JsonValue) -> Option<LogHistogram> {
        let mut histogram = LogHistogram::new();
        histogram.zero = value.get("zero")?.as_u64()?;
        histogram.underflow = value.get("underflow")?.as_u64()?;
        histogram.overflow = value.get("overflow")?.as_u64()?;
        for pair in value.get("buckets")?.as_array()? {
            let pair = pair.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            let exp = pair[0].as_f64()? as i32;
            if !(MIN_EXP..MAX_EXP).contains(&exp) {
                return None;
            }
            histogram.counts[(exp - MIN_EXP) as usize] = pair[1].as_u64()?;
        }
        Some(histogram)
    }
}

/// The `[lo, hi)` boundaries of finite bucket `i`.
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    let exp = MIN_EXP + i as i32;
    (2f64.powi(exp), 2f64.powi(exp + 1))
}

/// `floor(log2(x))` for positive finite `x`, computed exactly from the IEEE
/// exponent field (no floating-point log, so boundaries are never off by an
/// ulp). Subnormals report their true magnitude, far below [`MIN_EXP`].
fn exponent_of(x: f64) -> i32 {
    let biased = ((x.to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormal: smaller than 2^-1022, always an underflow sample.
        return -1075;
    }
    biased - 1023
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        let mut h = LogHistogram::new();
        // 2^0 = 1.0 is the *inclusive lower* boundary of the exponent-0
        // bucket; the value just below it belongs to exponent -1.
        h.record(1.0);
        h.record(0.999_999_999);
        h.record(2.0 - f64::EPSILON);
        let zero_bucket = (0 - MIN_EXP) as usize;
        assert_eq!(h.bucket_count(zero_bucket), 2);
        assert_eq!(h.bucket_count(zero_bucket - 1), 1);
        assert_eq!(bucket_bounds(zero_bucket), (1.0, 2.0));

        // The lowest finite boundary is inclusive too.
        let mut low = LogHistogram::new();
        low.record(2f64.powi(MIN_EXP));
        assert_eq!(low.bucket_count(0), 1);
        assert_eq!(low.underflow(), 0);
    }

    #[test]
    fn zero_underflow_and_overflow_samples() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-1.5);
        h.record(f64::NAN);
        h.record(2f64.powi(MIN_EXP) / 2.0);
        h.record(f64::MIN_POSITIVE / 4.0); // subnormal
        h.record(2f64.powi(MAX_EXP));
        h.record(f64::INFINITY);
        assert_eq!(h.zero(), 3);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
        assert!(h.nonzero_buckets().next().is_none());
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for (h, values) in [
            (&mut a, vec![0.5, 3.0, 0.0]),
            (&mut b, vec![1.0e-12, 700.0]),
            (&mut c, vec![1.0e9, 0.25, 0.26]),
        ] {
            for v in values {
                h.record(v);
            }
        }

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), a.count() + b.count());
    }

    #[test]
    fn json_round_trip() {
        let mut h = LogHistogram::new();
        for v in [0.0, 1.0e-20, 1.0, 1.5, 4.0, 1.0e30] {
            h.record(v);
        }
        let rendered = h.to_json_value().render();
        let parsed = JsonValue::parse(&rendered).unwrap();
        let back = LogHistogram::from_json_value(&parsed).unwrap();
        assert_eq!(h, back);
        // And the re-render is byte-identical.
        assert_eq!(back.to_json_value().render(), rendered);
    }

    #[test]
    fn from_json_rejects_out_of_range_exponents() {
        let bad = format!(
            r#"{{"zero":0,"underflow":0,"overflow":0,"buckets":[[{},1]]}}"#,
            MAX_EXP
        );
        let parsed = JsonValue::parse(&bad).unwrap();
        assert!(LogHistogram::from_json_value(&parsed).is_none());
    }
}
