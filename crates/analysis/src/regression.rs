//! Least-squares fits, in particular log–log power-law fits.
//!
//! The paper's headline comparison is about *scaling exponents*: the number of
//! transmissions to ε-average grows like `n^2` for pairwise gossip, `n^{1.5}`
//! for geographic gossip, and `n^{1+o(1)}` for the affine hierarchical
//! protocol. Experiment E4 measures transmissions at a ladder of network sizes
//! and fits `cost ≈ C·n^k` by ordinary least squares in log–log space; the
//! fitted `k` values are the reproduction's headline numbers.

use crate::stats::ConfidenceInterval;
use serde::{Deserialize, Serialize};

/// Result of an ordinary least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 = perfect fit, 0 = no better than
    /// the mean).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y ≈ slope·x + intercept` by ordinary least squares.
///
/// Returns `None` when fewer than two points are given, when the slices have
/// different lengths, or when all `x` values coincide (the slope would be
/// undefined).
///
/// # Example
///
/// ```
/// use geogossip_analysis::linear_fit;
/// let fit = linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// A [`LinearFit`] together with the sampling uncertainty of its slope.
///
/// The slope standard error is the textbook OLS estimate
/// `√(SSE / ((m − 2) · Sxx))`; with exactly two points there are no residual
/// degrees of freedom and the standard error is reported as `0` (the fit is
/// an interpolation, not an estimate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFitDetail {
    /// The underlying least-squares fit.
    pub fit: LinearFit,
    /// Standard error of the fitted slope (0 when `m == 2`).
    pub slope_stderr: f64,
    /// Residual degrees of freedom (`m − 2`).
    pub dof: u64,
}

impl LinearFitDetail {
    /// Normal-approximation confidence interval around the slope at the
    /// given z-score (1.96 ≈ 95%).
    pub fn slope_interval(&self, z: f64) -> ConfidenceInterval {
        let half = z * self.slope_stderr;
        ConfidenceInterval {
            lower: self.fit.slope - half,
            upper: self.fit.slope + half,
        }
    }
}

/// Fits `y ≈ slope·x + intercept` and additionally reports the slope's
/// standard error. Same degeneracy rules as [`linear_fit`].
pub fn linear_fit_detailed(xs: &[f64], ys: &[f64]) -> Option<LinearFitDetail> {
    let fit = linear_fit(xs, ys)?;
    let m = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / m;
    let mut sxx = 0.0;
    let mut sse = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        sxx += dx * dx;
        let r = y - fit.predict(x);
        sse += r * r;
    }
    let dof = xs.len().saturating_sub(2) as u64;
    let slope_stderr = if dof == 0 {
        0.0
    } else {
        (sse / (dof as f64 * sxx)).sqrt()
    };
    Some(LinearFitDetail {
        fit,
        slope_stderr,
        dof,
    })
}

/// Result of a power-law fit `y ≈ prefactor · x^exponent`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Fitted exponent `k` in `y ≈ C·x^k`.
    pub exponent: f64,
    /// Fitted prefactor `C`.
    pub prefactor: f64,
    /// `R²` of the underlying log–log linear fit.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.prefactor * x.powf(self.exponent)
    }
}

/// Fits `y ≈ C·x^k` by least squares on `ln y` vs `ln x`.
///
/// Returns `None` for fewer than two points, mismatched lengths, or any
/// non-positive coordinate (logarithms must exist).
///
/// # Example
///
/// ```
/// use geogossip_analysis::fit_power_law;
/// let xs = [100.0, 200.0, 400.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x * x).collect();
/// let fit = fit_power_law(&xs, &ys).unwrap();
/// assert!((fit.exponent - 2.0).abs() < 1e-9);
/// assert!((fit.prefactor - 0.5).abs() < 1e-9);
/// ```
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> Option<PowerLawFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    if xs.iter().chain(ys).any(|v| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_x: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let log_y: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let fit = linear_fit(&log_x, &log_y)?;
    Some(PowerLawFit {
        exponent: fit.slope,
        prefactor: fit.intercept.exp(),
        r_squared: fit.r_squared,
    })
}

/// A [`PowerLawFit`] together with the sampling uncertainty of its exponent.
///
/// The exponent of a power-law fit is the slope of the underlying log–log
/// linear fit, so its standard error is that slope's standard error — this
/// is the number the sweep lab's scaling report prints a confidence interval
/// from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFitDetail {
    /// The underlying power-law fit.
    pub fit: PowerLawFit,
    /// Standard error of the fitted exponent (0 when only two points were
    /// fitted — no residual degrees of freedom).
    pub exponent_stderr: f64,
    /// Residual degrees of freedom of the log–log fit (`m − 2`).
    pub dof: u64,
}

impl PowerLawFitDetail {
    /// Normal-approximation confidence interval around the exponent at the
    /// given z-score (1.96 ≈ 95%).
    pub fn exponent_interval(&self, z: f64) -> ConfidenceInterval {
        let half = z * self.exponent_stderr;
        ConfidenceInterval {
            lower: self.fit.exponent - half,
            upper: self.fit.exponent + half,
        }
    }
}

/// Fits `y ≈ C·x^k` and additionally reports the exponent's standard error.
/// Same degeneracy rules as [`fit_power_law`].
pub fn fit_power_law_detailed(xs: &[f64], ys: &[f64]) -> Option<PowerLawFitDetail> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    if xs.iter().chain(ys).any(|v| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_x: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let log_y: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let detail = linear_fit_detailed(&log_x, &log_y)?;
    Some(PowerLawFitDetail {
        fit: PowerLawFit {
            exponent: detail.fit.slope,
            prefactor: detail.fit.intercept.exp(),
            r_squared: detail.fit.r_squared,
        },
        exponent_stderr: detail.slope_stderr,
        dof: detail.dof,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| -3.0 * x + 7.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope + 3.0).abs() < 1e-12);
        assert!((fit.intercept - 7.0).abs() < 1e-12);
        assert!((fit.predict(10.0) + 23.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_rejects_degenerate_input() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[2.0]).is_none());
    }

    #[test]
    fn noisy_linear_fit_has_reasonable_r_squared() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 2.0 * x + if *x as i64 % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn power_law_fit_recovers_known_exponents() {
        for &k in &[1.0, 1.5, 2.0] {
            let xs: [f64; 5] = [64.0, 128.0, 256.0, 512.0, 1024.0];
            let ys: Vec<f64> = xs.iter().map(|&x| 2.5 * x.powf(k)).collect();
            let fit = fit_power_law(&xs, &ys).unwrap();
            assert!((fit.exponent - k).abs() < 1e-9, "failed for exponent {k}");
            assert!((fit.prefactor - 2.5).abs() < 1e-6);
            assert!((fit.r_squared - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn power_law_fit_rejects_nonpositive_data() {
        assert!(fit_power_law(&[1.0, 2.0], &[0.0, 1.0]).is_none());
        assert!(fit_power_law(&[-1.0, 2.0], &[1.0, 1.0]).is_none());
        assert!(fit_power_law(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn power_law_prediction_interpolates() {
        let xs: [f64; 3] = [10.0, 100.0, 1000.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 4.0 * x.powf(1.2)).collect();
        let fit = fit_power_law(&xs, &ys).unwrap();
        assert!((fit.predict(50.0) - 4.0 * 50.0_f64.powf(1.2)).abs() / fit.predict(50.0) < 1e-6);
    }

    #[test]
    fn detailed_fit_matches_plain_fit_and_exact_data_has_zero_stderr() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let detail = linear_fit_detailed(&xs, &ys).unwrap();
        assert_eq!(detail.fit, linear_fit(&xs, &ys).unwrap());
        assert_eq!(detail.dof, 2);
        assert!(detail.slope_stderr < 1e-12);
        let ci = detail.slope_interval(1.96);
        assert!(ci.contains(2.0) && ci.width() < 1e-9);
    }

    #[test]
    fn slope_stderr_matches_textbook_value() {
        // y = x with one outlier: stderr computable by hand.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.0, 2.0, 4.0];
        let detail = linear_fit_detailed(&xs, &ys).unwrap();
        // slope = Sxy/Sxx = 6.5/5 = 1.3, SSE = Σ(y − ŷ)², Sxx = 5.
        let fit = detail.fit;
        let sse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| (y - fit.predict(x)).powi(2))
            .sum();
        let expected = (sse / (2.0 * 5.0)).sqrt();
        assert!((fit.slope - 1.3).abs() < 1e-12);
        assert!((detail.slope_stderr - expected).abs() < 1e-12);
        assert!(detail.slope_stderr > 0.0);
    }

    #[test]
    fn two_point_fits_report_zero_stderr() {
        let detail = linear_fit_detailed(&[1.0, 2.0], &[3.0, 5.0]).unwrap();
        assert_eq!(detail.dof, 0);
        assert_eq!(detail.slope_stderr, 0.0);
        let pl = fit_power_law_detailed(&[2.0, 4.0], &[4.0, 16.0]).unwrap();
        assert_eq!(pl.dof, 0);
        assert_eq!(pl.exponent_stderr, 0.0);
        assert!((pl.fit.exponent - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_detail_recovers_exponent_with_tight_interval_on_clean_data() {
        let xs: [f64; 5] = [64.0, 128.0, 256.0, 512.0, 1024.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.powf(1.5)).collect();
        let detail = fit_power_law_detailed(&xs, &ys).unwrap();
        assert_eq!(detail.fit, fit_power_law(&xs, &ys).unwrap());
        assert!(detail.exponent_interval(1.96).contains(1.5));
        assert!(detail.exponent_stderr < 1e-9);
        // Noisy data widens the interval but still covers the truth.
        let noisy: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 3.0 * x.powf(1.5) * if i % 2 == 0 { 1.15 } else { 0.85 })
            .collect();
        let noisy_detail = fit_power_law_detailed(&xs, &noisy).unwrap();
        assert!(noisy_detail.exponent_stderr > 1e-3);
        assert!(noisy_detail.exponent_interval(1.96).contains(1.5));
    }

    #[test]
    fn detailed_fits_reject_degenerate_input() {
        assert!(linear_fit_detailed(&[1.0], &[1.0]).is_none());
        assert!(fit_power_law_detailed(&[1.0, 2.0], &[0.0, 1.0]).is_none());
        assert!(fit_power_law_detailed(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn constant_y_has_unit_r_squared() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
