//! Chernoff-style occupancy concentration checks.
//!
//! Section 3 of the paper uses the Chernoff bound to argue that when the unit
//! square is partitioned into `~√n` cells, every cell's population is within
//! 10% of its expectation w.h.p. Experiment E7 measures how the worst-case
//! relative deviation shrinks with `n`; this module holds the bookkeeping.

use serde::{Deserialize, Serialize};

/// Result of checking the occupancy of a collection of cells against their
/// common expected population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyCheck {
    /// Number of cells examined.
    pub cells: usize,
    /// Expected population per cell.
    pub expected: f64,
    /// Worst relative deviation `max_i |#(□_i)/E# − 1|`.
    pub max_relative_deviation: f64,
    /// Mean relative deviation.
    pub mean_relative_deviation: f64,
    /// Number of empty cells.
    pub empty_cells: usize,
    /// Number of cells violating the paper's 10% tolerance.
    pub cells_beyond_ten_percent: usize,
}

impl OccupancyCheck {
    /// Builds the check from observed per-cell counts and the common expected
    /// population.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is not strictly positive or `counts` is empty.
    pub fn from_counts(counts: &[usize], expected: f64) -> Self {
        assert!(expected > 0.0, "expected population must be positive");
        assert!(
            !counts.is_empty(),
            "occupancy check needs at least one cell"
        );
        let deviations: Vec<f64> = counts
            .iter()
            .map(|&c| (c as f64 / expected - 1.0).abs())
            .collect();
        OccupancyCheck {
            cells: counts.len(),
            expected,
            max_relative_deviation: deviations.iter().copied().fold(0.0, f64::max),
            mean_relative_deviation: deviations.iter().sum::<f64>() / deviations.len() as f64,
            empty_cells: counts.iter().filter(|&&c| c == 0).count(),
            cells_beyond_ten_percent: deviations.iter().filter(|&&d| d > 0.1).count(),
        }
    }

    /// Whether every cell satisfied the paper's `|#/E# − 1| < 1/10` condition.
    pub fn satisfies_paper_bound(&self) -> bool {
        self.cells_beyond_ten_percent == 0
    }

    /// The Chernoff upper bound on the probability that a single cell deviates
    /// by more than `tolerance` from an expectation of `expected`:
    /// `2·exp(−expected·tolerance²/3)`, union-bounded over `cells` cells.
    ///
    /// This is the quantity the paper's "w.h.p." appeals to; the experiment
    /// reports it next to the observed violation counts.
    pub fn chernoff_union_bound(&self, tolerance: f64) -> f64 {
        let single = 2.0 * (-self.expected * tolerance * tolerance / 3.0).exp();
        (single * self.cells as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_occupancy_has_zero_deviation() {
        let check = OccupancyCheck::from_counts(&[10, 10, 10], 10.0);
        assert_eq!(check.max_relative_deviation, 0.0);
        assert_eq!(check.mean_relative_deviation, 0.0);
        assert!(check.satisfies_paper_bound());
        assert_eq!(check.empty_cells, 0);
    }

    #[test]
    fn deviations_are_measured_relative_to_expectation() {
        let check = OccupancyCheck::from_counts(&[5, 10, 15], 10.0);
        assert!((check.max_relative_deviation - 0.5).abs() < 1e-12);
        assert_eq!(check.cells_beyond_ten_percent, 2);
        assert!(!check.satisfies_paper_bound());
    }

    #[test]
    fn empty_cells_are_counted() {
        let check = OccupancyCheck::from_counts(&[0, 20], 10.0);
        assert_eq!(check.empty_cells, 1);
        assert!((check.max_relative_deviation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chernoff_bound_decreases_with_expectation() {
        let small = OccupancyCheck::from_counts(&[10; 4], 10.0);
        let large = OccupancyCheck::from_counts(&[1000; 4], 1000.0);
        assert!(large.chernoff_union_bound(0.1) < small.chernoff_union_bound(0.1));
        assert!(small.chernoff_union_bound(0.1) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_expectation_rejected() {
        let _ = OccupancyCheck::from_counts(&[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_counts_rejected() {
        let _ = OccupancyCheck::from_counts(&[], 1.0);
    }
}
