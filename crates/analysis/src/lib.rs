//! Statistics, regression and table rendering for the gossip experiments.
//!
//! Every experiment in EXPERIMENTS.md reduces simulation output to one of a
//! few statistical summaries:
//!
//! * [`stats`] — streaming mean/variance/min/max, quantiles, and confidence
//!   intervals over repeated trials;
//! * [`regression`] — ordinary least squares and log–log power-law fits, used
//!   to extract the scaling exponents the paper's headline claim is about
//!   (`~n²` vs `~n^1.5` vs `~n^{1+o(1)}`);
//! * [`concentration`] — Chernoff-style occupancy checks for the partition
//!   (Section 3's `|#(□_i)/√n − 1| < 1/10` claim);
//! * [`table`] — plain-text/Markdown table rendering and CSV/JSON emission so
//!   the benchmark binaries print exactly the rows quoted in EXPERIMENTS.md;
//! * [`histogram`] — log-bucketed (power-of-two) histograms with exactly
//!   associative merges, backing the telemetry layer's wall-clock phase
//!   profiles;
//! * [`json`] — a minimal JSON document model (parser + writer) backing the
//!   scenario spec/report serialization and the benchmark baseline file
//!   (the vendored `serde` is a no-op stand-in, so JSON is hand-rendered
//!   throughout the workspace).
//!
//! # Example
//!
//! ```
//! use geogossip_analysis::regression::fit_power_law;
//! // Perfect n^1.5 data recovers exponent 1.5.
//! let xs: [f64; 4] = [64.0, 128.0, 256.0, 512.0];
//! let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.powf(1.5)).collect();
//! let fit = fit_power_law(&xs, &ys).unwrap();
//! assert!((fit.exponent - 1.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concentration;
pub mod histogram;
pub mod json;
pub mod regression;
pub mod stats;
pub mod table;

pub use concentration::OccupancyCheck;
pub use histogram::LogHistogram;
pub use json::JsonValue;
pub use regression::{
    fit_power_law, fit_power_law_detailed, linear_fit, linear_fit_detailed, LinearFit,
    LinearFitDetail, PowerLawFit, PowerLawFitDetail,
};
pub use stats::{ConfidenceInterval, P2Quantile, Summary};
pub use table::Table;
