//! A minimal JSON document model, parser and writer.
//!
//! The build environment has no crates.io access, so the workspace's vendored
//! `serde` is a marker-trait stand-in and real (de)serialization is written by
//! hand. This module centralises the JSON plumbing behind that convention:
//! scenario specs, scenario reports and the benchmark baseline all go through
//! [`JsonValue`].
//!
//! The subset implemented is RFC 8259 minus two deliberate simplifications:
//! numbers are carried as `f64` (integers above 2⁵³ lose precision — none of
//! the workspace's documents need them), and object key order is preserved as
//! written rather than treated as a map (which keeps round-trips stable).
//!
//! # Example
//!
//! ```
//! use geogossip_analysis::json::JsonValue;
//! let doc = JsonValue::parse(r#"{"n": 256, "torus": false, "tags": ["a"]}"#).unwrap();
//! assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(256));
//! assert_eq!(JsonValue::parse(&doc.render()).unwrap(), doc);
//! ```

use std::fmt::Write as _;

/// A JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (carried as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed, trailing
    /// content rejected).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing content after the document"));
        }
        Ok(value)
    }

    /// Renders the value compactly (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value with two-space indentation, ending without a
    /// trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(v) => out.push_str(&render_number(*v)),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                write_sequence(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            JsonValue::Object(entries) => {
                write_sequence(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    let (key, value) = &entries[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, d);
                });
            }
        }
    }

    /// Looks a key up in an object (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole number
    /// representable in 53 bits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9e15 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's entries, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Convenience constructor for an object from owned entries.
    pub fn object(entries: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn string(s: impl Into<String>) -> JsonValue {
        JsonValue::String(s.into())
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

/// Shared array/object rendering: the open/close brackets plus one item per
/// line when pretty-printing.
fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        write_item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Renders a number: whole values in integer form, everything else through
/// Rust's shortest-round-trip float formatting.
fn render_number(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no NaN/∞; null is the least-wrong representation and the
        // writer documents it here rather than panicking mid-report.
        return "null".to_string();
    }
    if v.fract() == 0.0 && v.abs() <= 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escapes `s` as a JSON string literal (quotes included) per RFC 8259.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected byte `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            // A high surrogate must be completed by a low
                            // surrogate escape; anything else (including a
                            // lone surrogate) is an error rather than a
                            // garbage code point.
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("lone high surrogate in \\u escape"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self
                                        .error("high surrogate not followed by a low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(ch.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        c => return Err(self.error(format!("invalid escape `\\{}`", c as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input originated from &str");
                    let ch = rest.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("non-ASCII \\u escape"))?;
        let value = u32::from_str_radix(text, 16).map_err(|_| self.error("non-hex \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse(" -2.5e2 ").unwrap(),
            JsonValue::Number(-250.0)
        );
        assert_eq!(
            JsonValue::parse(r#""hi\nthere""#).unwrap(),
            JsonValue::String("hi\nthere".into())
        );
    }

    #[test]
    fn parses_nested_documents() {
        let doc = JsonValue::parse(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(JsonValue::as_str), Some("x"));
        let items = doc.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].get("b").and_then(JsonValue::as_bool), Some(false));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn render_round_trips() {
        let doc = JsonValue::parse(
            r#"{"name": "smoke \"run\"", "n": 256, "ratio": 0.125, "caps": [null, 1e9], "flag": true}"#,
        )
        .unwrap();
        assert_eq!(JsonValue::parse(&doc.render()).unwrap(), doc);
        assert_eq!(JsonValue::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn pretty_output_is_indented() {
        let doc = JsonValue::object(vec![("a", JsonValue::Array(vec![1u64.into()]))]);
        assert_eq!(doc.pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
        assert_eq!(doc.render(), r#"{"a":[1]}"#);
    }

    #[test]
    fn numbers_render_integers_without_fraction() {
        assert_eq!(render_number(200_000_000.0), "200000000");
        assert_eq!(render_number(0.05), "0.05");
        assert_eq!(render_number(f64::NAN), "null");
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        assert_eq!(
            JsonValue::parse(r#""é""#).unwrap(),
            JsonValue::String("é".into())
        );
        assert_eq!(
            JsonValue::parse(r#""😀""#).unwrap(),
            JsonValue::String("😀".into())
        );
        // An escaped surrogate pair decodes to the combined scalar.
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("😀".into())
        );
        // Broken pairs are errors, not garbage characters: a high surrogate
        // followed by a non-surrogate escape, a lone high surrogate, and a
        // lone low surrogate.
        assert!(JsonValue::parse("\"\\ud83d\\u0041\"").is_err());
        assert!(JsonValue::parse("\"\\ud83dA\"").is_err());
        assert!(JsonValue::parse("\"\\udc00\"").is_err());
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let doc = JsonValue::parse(r#"{"x": 1.5}"#).unwrap();
        assert_eq!(doc.get("x").unwrap().as_u64(), None);
        assert_eq!(doc.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(doc.get("missing"), None);
        assert!(JsonValue::Null.is_null());
        assert_eq!(doc.as_object().unwrap().len(), 1);
    }
}
