//! Plain-text / Markdown / CSV table rendering for the experiment binaries.
//!
//! Every experiment binary prints a Markdown table (the rows quoted in
//! EXPERIMENTS.md) and can additionally emit the same rows as CSV or JSON so
//! the numbers can be re-plotted without re-running the simulation.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple column-oriented table of strings.
///
/// # Example
///
/// ```
/// use geogossip_analysis::Table;
/// let mut t = Table::new(vec!["n", "transmissions"]);
/// t.add_row(vec!["256".into(), "12345".into()]);
/// let markdown = t.to_markdown();
/// assert!(markdown.contains("| n | transmissions |"));
/// assert!(markdown.contains("| 256 | 12345 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no headers are given.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of headers.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row length must match the number of columns"
        );
        self.rows.push(row);
    }

    /// Convenience: appends a row of displayable values.
    pub fn push_display<D: std::fmt::Display>(&mut self, row: &[D]) {
        self.add_row(row.iter().map(|d| d.to_string()).collect());
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders the table as CSV (comma-separated; fields containing commas are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Serialises the table as a JSON array of objects keyed by header.
    ///
    /// Rendered by hand (all cells are strings) so the crate needs no JSON
    /// dependency; strings are escaped per RFC 8259.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            for (c, (header, cell)) in self.headers.iter().zip(row).enumerate() {
                if c > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_string(header), json_string(cell));
            }
            out.push('}');
        }
        out.push_str("\n]");
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["protocol", "n", "cost"]);
        t.add_row(vec!["pairwise".into(), "256".into(), "1000".into()]);
        t.add_row(vec!["affine".into(), "256".into(), "200".into()]);
        t
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains("---"));
        assert!(lines[3].starts_with("| affine"));
    }

    #[test]
    fn csv_round_trips_simple_fields() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("protocol,n,cost\n"));
        assert!(csv.contains("pairwise,256,1000"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["name"]);
        t.add_row(vec!["a,b".into()]);
        t.add_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn json_emits_one_object_per_row() {
        let json = sample().to_json();
        assert_eq!(json.matches('{').count(), 2);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"protocol\": \"pairwise\""));
        assert!(json.contains("\"cost\": \"200\""));
    }

    #[test]
    fn json_escapes_quotes_and_control_characters() {
        let mut t = Table::new(vec!["note"]);
        t.add_row(vec!["say \"hi\"\nback\\slash".into()]);
        let json = t.to_json();
        assert!(json.contains(r#""say \"hi\"\nback\\slash""#));
    }

    #[test]
    fn push_display_formats_values() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_display(&[1.5, 2.0]);
        assert_eq!(t.rows()[0], vec!["1.5".to_string(), "2".to_string()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_rejected() {
        let _ = Table::new(Vec::<String>::new());
    }
}
