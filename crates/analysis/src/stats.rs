//! Summary statistics over repeated trials.

use serde::{Deserialize, Serialize};

/// Streaming summary of a sample: count, mean, variance (Welford), extremes.
///
/// # Example
///
/// ```
/// use geogossip_analysis::Summary;
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.std_dev() - 2.138089935299395).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN (a NaN observation would silently poison every
    /// downstream statistic).
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "summary observations must not be NaN");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` for an empty summary).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` for an empty summary).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Normal-approximation confidence interval around the mean at the given
    /// z-score (1.96 ≈ 95%).
    pub fn confidence_interval(&self, z: f64) -> ConfidenceInterval {
        let half = z * self.standard_error();
        ConfidenceInterval {
            lower: self.mean() - half,
            upper: self.mean() + half,
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

/// A symmetric confidence interval around a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower end of the interval.
    pub lower: f64,
    /// Upper end of the interval.
    pub upper: f64,
}

impl ConfidenceInterval {
    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation between
/// order statistics. Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or the data contains NaN.
///
/// # Example
///
/// ```
/// use geogossip_analysis::stats::quantile;
/// let data = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&data, 0.5), Some(2.5));
/// assert_eq!(quantile(&data, 1.0), Some(4.0));
/// ```
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("quantile data must not contain NaN")
    });
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median of a sample (`None` for an empty sample).
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// Streaming quantile estimator (the P² algorithm of Jain & Chlamtac, 1985).
///
/// Tracks a single `q`-quantile in `O(1)` memory: five markers whose heights
/// are nudged toward their ideal positions with a piecewise-parabolic update
/// on every observation. The sweep lab uses it for per-cell medians and p95s
/// over trials without buffering whole sweeps.
///
/// Up to five observations the estimate is **exact** (the observations are
/// simply kept and interpolated like [`quantile`]); beyond that it is an
/// approximation whose error vanishes as the sample grows.
///
/// # Example
///
/// ```
/// use geogossip_analysis::stats::P2Quantile;
/// let mut med = P2Quantile::new(0.5);
/// for v in [5.0, 1.0, 3.0] {
///     med.push(v);
/// }
/// assert_eq!(med.value(), Some(3.0)); // exact while the sample is small
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    count: u64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    initial: [f64; 5],
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1` (the extremes are tracked exactly by
    /// [`Summary::min`]/[`Summary::max`]; P² needs an interior quantile).
    pub fn new(q: f64) -> Self {
        assert!(
            q > 0.0 && q < 1.0,
            "P² tracks interior quantiles (0 < q < 1), got {q}"
        );
        P2Quantile {
            q,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            initial: [0.0; 5],
        }
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "quantile observations must not be NaN");
        if self.count < 5 {
            self.initial[self.count as usize] = value;
            self.count += 1;
            if self.count == 5 {
                let mut sorted = self.initial;
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN rejected above"));
                self.heights = sorted;
            }
            return;
        }
        self.count += 1;

        // Locate the cell of the new observation, absorbing it into the
        // extreme markers when it falls outside the current range.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            // heights[k] <= value < heights[k+1] for some k in 0..=3.
            (0..4)
                .rev()
                .find(|&i| self.heights[i] <= value)
                .expect("value is within [heights[0], heights[4])")
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Nudge the three interior markers toward their desired positions.
        for i in 1..4 {
            let gap = self.desired[i] - self.positions[i];
            let room_right = self.positions[i + 1] - self.positions[i] > 1.0;
            let room_left = self.positions[i - 1] - self.positions[i] < -1.0;
            if (gap >= 1.0 && room_right) || (gap <= -1.0 && room_left) {
                let d = gap.signum();
                let parabolic = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// The piecewise-parabolic (P²) height update for marker `i` moved by
    /// `d ∈ {−1, +1}`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// The linear fallback height update when the parabola would leave the
    /// bracket.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.heights, &self.positions);
        let j = (i as f64 + d) as usize;
        q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
    }

    /// The current estimate, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            return quantile(&self.initial[..self.count as usize], self.q);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn summary_matches_textbook_values() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].iter().copied().collect();
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn confidence_interval_contains_true_mean_of_constant_data() {
        let s: Summary = std::iter::repeat_n(7.0, 50).collect();
        let ci = s.confidence_interval(1.96);
        assert!(ci.contains(7.0));
        assert!(ci.width() < 1e-12);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 3.0]);
        s.extend([5.0]);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&data, 0.0), Some(10.0));
        assert_eq!(quantile(&data, 0.25), Some(20.0));
        assert_eq!(median(&data), Some(30.0));
        assert_eq!(quantile(&data, 1.0), Some(50.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let data = vec![5.0, 1.0, 3.0];
        assert_eq!(median(&data), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_observations_rejected() {
        let mut s = Summary::new();
        s.push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_range_checked() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn p2_is_exact_on_small_inputs() {
        // Up to five observations the estimator keeps the sample and must
        // agree bit-for-bit with the exact interpolated quantile.
        let data = [7.0, 2.0, 9.0, 4.0, 5.5];
        for &q in &[0.25, 0.5, 0.9, 0.95] {
            let mut est = P2Quantile::new(q);
            assert_eq!(est.value(), None);
            for (i, &v) in data.iter().enumerate() {
                est.push(v);
                let exact = quantile(&data[..=i], q).unwrap();
                assert_eq!(
                    est.value(),
                    Some(exact),
                    "q={q} after {} observations",
                    i + 1
                );
            }
            assert_eq!(est.count(), 5);
            assert_eq!(est.quantile(), q);
        }
    }

    #[test]
    fn p2_median_tracks_exact_median_on_uniform_stream() {
        // Deterministic low-discrepancy stream in (0, 1): the true median is
        // 0.5 and P² must land close to the exact sample median.
        let mut est = P2Quantile::new(0.5);
        let mut data = Vec::new();
        let mut x = 0.0f64;
        for _ in 0..500 {
            x = (x + 0.618_033_988_749_895) % 1.0;
            est.push(x);
            data.push(x);
        }
        let exact = median(&data).unwrap();
        let approx = est.value().unwrap();
        assert!(
            (approx - exact).abs() < 0.02,
            "P² median {approx} vs exact {exact}"
        );
    }

    #[test]
    fn p2_p95_tracks_exact_p95() {
        // A skewed deterministic stream (squares of a low-discrepancy
        // sequence) exercises the parabolic and linear update paths.
        let mut est = P2Quantile::new(0.95);
        let mut data = Vec::new();
        let mut x = 0.0f64;
        for _ in 0..2000 {
            x = (x + 0.618_033_988_749_895) % 1.0;
            let v = x * x * 100.0;
            est.push(v);
            data.push(v);
        }
        let exact = quantile(&data, 0.95).unwrap();
        let approx = est.value().unwrap();
        assert!(
            (approx - exact).abs() / exact < 0.05,
            "P² p95 {approx} vs exact {exact}"
        );
    }

    #[test]
    fn p2_handles_sorted_and_constant_streams() {
        let mut up = P2Quantile::new(0.5);
        for i in 0..100 {
            up.push(i as f64);
        }
        let v = up.value().unwrap();
        assert!((v - 49.5).abs() < 3.0, "sorted-stream median drifted: {v}");

        let mut flat = P2Quantile::new(0.9);
        for _ in 0..50 {
            flat.push(4.25);
        }
        assert_eq!(flat.value(), Some(4.25));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn p2_rejects_nan() {
        P2Quantile::new(0.5).push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "interior quantiles")]
    fn p2_rejects_extreme_quantiles() {
        let _ = P2Quantile::new(1.0);
    }
}
