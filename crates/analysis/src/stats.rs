//! Summary statistics over repeated trials.

use serde::{Deserialize, Serialize};

/// Streaming summary of a sample: count, mean, variance (Welford), extremes.
///
/// # Example
///
/// ```
/// use geogossip_analysis::Summary;
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.std_dev() - 2.138089935299395).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN (a NaN observation would silently poison every
    /// downstream statistic).
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "summary observations must not be NaN");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` for an empty summary).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` for an empty summary).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Normal-approximation confidence interval around the mean at the given
    /// z-score (1.96 ≈ 95%).
    pub fn confidence_interval(&self, z: f64) -> ConfidenceInterval {
        let half = z * self.standard_error();
        ConfidenceInterval {
            lower: self.mean() - half,
            upper: self.mean() + half,
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

/// A symmetric confidence interval around a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower end of the interval.
    pub lower: f64,
    /// Upper end of the interval.
    pub upper: f64,
}

impl ConfidenceInterval {
    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation between
/// order statistics. Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or the data contains NaN.
///
/// # Example
///
/// ```
/// use geogossip_analysis::stats::quantile;
/// let data = vec![1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&data, 0.5), Some(2.5));
/// assert_eq!(quantile(&data, 1.0), Some(4.0));
/// ```
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("quantile data must not contain NaN")
    });
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median of a sample (`None` for an empty sample).
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn summary_matches_textbook_values() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].iter().copied().collect();
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn confidence_interval_contains_true_mean_of_constant_data() {
        let s: Summary = std::iter::repeat_n(7.0, 50).collect();
        let ci = s.confidence_interval(1.96);
        assert!(ci.contains(7.0));
        assert!(ci.width() < 1e-12);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 3.0]);
        s.extend([5.0]);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let data = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&data, 0.0), Some(10.0));
        assert_eq!(quantile(&data, 0.25), Some(20.0));
        assert_eq!(median(&data), Some(30.0));
        assert_eq!(quantile(&data, 1.0), Some(50.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let data = vec![5.0, 1.0, 3.0];
        assert_eq!(median(&data), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_observations_rejected() {
        let mut s = Summary::new();
        s.push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_range_checked() {
        let _ = quantile(&[1.0], 1.5);
    }
}
