//! Criterion micro-benchmarks for the primitives behind the experiments.
//!
//! One benchmark group per experiment family:
//!
//! * `graph_construction` — building `G(n, r)` (backs every experiment's setup
//!   cost column).
//! * `routing` — one greedy leader-to-leader routing (the per-round cost of
//!   E3/E4/E5).
//! * `updates` — one tick of the Lemma-1 dynamics and one pairwise/affine
//!   exchange (E1/E2/E8).
//! * `protocol_round` — one full top-level round of the round-based affine
//!   protocol and one tick of each baseline (E3/E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geogossip_bench::legacy::{csr_geographic_tick, legacy_geographic_tick, LegacyGraph};
use geogossip_core::model::AffineCompleteGraph;
use geogossip_core::prelude::*;
use geogossip_core::update::{affine_exchange, convex_average, AffineCoefficient};
use geogossip_geometry::point::NodeId;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Point;
use geogossip_graph::GeometricGraph;
use geogossip_routing::greedy::{route_terminus, route_to_position};
use geogossip_sim::{AsyncEngine, SeedStream, StopCondition};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn graph_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_construction");
    for &n in &[256usize, 1024, 4096] {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| GeometricGraph::build_at_connectivity_radius(pts.clone(), 2.0));
        });
    }
    group.finish();
}

fn routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for &n in &[1024usize, 4096] {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(2));
        let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
        let source = graph
            .nearest_node(Point::new(0.05, 0.05))
            .expect("non-empty");
        group.bench_with_input(BenchmarkId::new("corner_to_corner", n), &graph, |b, g| {
            b.iter(|| route_terminus(g, source, Point::new(0.95, 0.95)));
        });
        group.bench_with_input(
            BenchmarkId::new("corner_to_corner_with_path", n),
            &graph,
            |b, g| {
                b.iter(|| route_to_position(g, source, Point::new(0.95, 0.95)));
            },
        );
    }
    group.finish();
}

/// The acceptance-criterion benchmark: one geographic-gossip tick (partner
/// route + reply route + exchange) on the CSR/allocation-free hot path versus
/// the preserved pre-CSR implementation, same instances, same RNG streams.
fn gossip_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip_tick");
    for &n in &[1024usize, 4096] {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(6));
        let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
        let legacy = LegacyGraph::from_graph(&graph);
        group.bench_with_input(BenchmarkId::new("csr_allocfree", n), &graph, |b, g| {
            let mut values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let mut activated = 0usize;
            b.iter(|| {
                activated = (activated + 101) % n;
                csr_geographic_tick(g, &mut values, NodeId(activated), &mut rng)
            });
        });
        group.bench_with_input(BenchmarkId::new("pre_csr_vecvec", n), &legacy, |b, lg| {
            let mut values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let mut activated = 0usize;
            b.iter(|| {
                activated = (activated + 101) % n;
                legacy_geographic_tick(lg, &mut values, NodeId(activated), &mut rng)
            });
        });
    }
    group.finish();
}

fn updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("updates");
    group.bench_function("convex_average", |b| {
        b.iter(|| convex_average(std::hint::black_box(0.3), std::hint::black_box(0.7)));
    });
    group.bench_function("affine_exchange_2sqrt_n_over_5", |b| {
        let alpha = AffineCoefficient::paper_far(64.0);
        b.iter(|| affine_exchange(std::hint::black_box(0.3), std::hint::black_box(0.7), alpha));
    });
    group.bench_function("lemma1_model_1000_ticks_n256", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let mut model = AffineCompleteGraph::with_uniform_alpha(256, 0.4).expect("valid");
            model
                .set_centered_values((0..256).map(|i| i as f64).collect())
                .expect("length matches");
            model.run(1000, &mut rng);
            model.squared_norm()
        });
    });
    group.finish();
}

fn protocol_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_round");
    group.sample_size(10);
    let n = 512;
    let seeds = SeedStream::new(4);
    let pts = sample_unit_square(n, &mut seeds.stream("placement"));
    let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
    let values = InitialCondition::Spike.generate(n, &mut seeds.stream("values"));

    group.bench_function("affine_idealized_to_5pct_n512", |b| {
        b.iter(|| {
            let mut protocol =
                RoundBasedAffineGossip::new(&graph, values.clone(), RoundBasedConfig::idealized(n))
                    .expect("valid instance");
            protocol.run_until(0.05, &mut seeds.stream("affine-run"))
        });
    });
    group.bench_function("geographic_to_5pct_n512", |b| {
        b.iter(|| {
            let mut protocol =
                GeographicGossip::new(&graph, values.clone()).expect("valid instance");
            AsyncEngine::new(n).run(
                &mut protocol,
                StopCondition::at_epsilon(0.05).with_max_ticks(10_000_000),
                &mut seeds.stream("geo-run"),
            )
        });
    });
    group.bench_function("pairwise_to_20pct_n512", |b| {
        b.iter(|| {
            let mut protocol = PairwiseGossip::new(&graph, values.clone()).expect("valid instance");
            AsyncEngine::new(n).run(
                &mut protocol,
                StopCondition::at_epsilon(0.2).with_max_ticks(10_000_000),
                &mut seeds.stream("pw-run"),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    graph_construction,
    routing,
    gossip_tick,
    updates,
    protocol_round
);
criterion_main!(benches);
