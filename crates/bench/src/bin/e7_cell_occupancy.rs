//! Binary for experiment E7 — see EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p geogossip-bench --bin e7_cell_occupancy [smoke|quick|full] [seed]`

use geogossip_bench::experiments::{e07_occupancy, Scale, DEFAULT_SEED};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let output = e07_occupancy::run(scale, seed);
    println!("{}", output.render());
}
