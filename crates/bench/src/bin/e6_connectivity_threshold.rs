//! Binary for experiment E6 — see EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p geogossip-bench --bin e6_connectivity_threshold [smoke|quick|full] [seed]`

use geogossip_bench::experiments::{e06_connectivity, Scale, DEFAULT_SEED};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let output = e06_connectivity::run(scale, seed);
    println!("{}", output.render());
}
