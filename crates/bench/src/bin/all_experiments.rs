//! Runs every experiment (E1–E10) at the requested scale and prints all
//! tables — the single command that regenerates EXPERIMENTS.md's numbers.
//!
//! Usage: `cargo run --release -p geogossip-bench --bin all_experiments [smoke|quick|full] [seed]`

use geogossip_bench::experiments::{self as ex, Scale, DEFAULT_SEED};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_arg(args.get(1).map(String::as_str));
    let seed = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let outputs = [
        ex::e01_lemma1::run(scale, seed),
        ex::e02_lemma2::run(scale, seed),
        ex::e03_trajectories::run(scale, seed),
        ex::e04_scaling::run(scale, seed),
        ex::e05_routing::run(scale, seed),
        ex::e06_connectivity::run(scale, seed),
        ex::e07_occupancy::run(scale, seed),
        ex::e08_coefficient::run(scale, seed),
        ex::e09_uniformity::run(scale, seed),
        ex::e10_hierarchy::run(scale, seed),
    ];
    for output in outputs {
        println!("{}", output.render());
    }
}
