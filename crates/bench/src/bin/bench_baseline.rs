//! Writes the headline performance baseline to `BENCH_baseline.json`.
//!
//! Measures median wall-clock times for the hot-path primitives at
//! `n ∈ {1024, 4096}`:
//!
//! * building `G(n, 2·sqrt(log n / n))`,
//! * one corner-to-corner greedy route (allocation-free fast path),
//! * one geographic-gossip tick (partner route + reply route + exchange),
//!   against both the CSR/allocation-free implementation and the preserved
//!   pre-optimization (`Vec<Vec<usize>>` + per-call path allocation) hot path
//!   from [`geogossip_bench::legacy`], so the speedup is measured in the same
//!   tree on the same instances.
//!
//! Usage:
//!
//! * `cargo run --release -p geogossip-bench --bin bench_baseline
//!   [output.json]` — writes the classic baseline (default output:
//!   `BENCH_baseline.json`).
//! * `… --bin bench_baseline -- --append-dyn [output.json]` — measures the
//!   scenario redesign's dyn-dispatch overhead (one geographic-gossip tick
//!   through `&mut dyn Activation` + `&mut dyn RngCore` versus the inherent
//!   generic `step` path) and **appends** the record to the existing file's
//!   `dyn_dispatch` array, preserving all prior entries (the BENCH history
//!   rule: append comparable numbers, never overwrite history).
//! * `… --bin bench_baseline -- --append-build [output.json]` — measures the
//!   two-pass parallel graph build at `n ∈ {65 536, 262 144, 1 048 576}`
//!   against the preserved sequential reference
//!   ([`GeometricGraph::build_reference`], skipped at the largest size where
//!   it would take minutes) and **appends** the records to the file's
//!   `graph_build` array under the same never-clobber-history discipline.

use geogossip_analysis::json::JsonValue;
use geogossip_bench::legacy::{csr_geographic_tick, legacy_geographic_tick, LegacyGraph};
use geogossip_bench::timing::median_ns_per_iter;
use geogossip_core::prelude::*;
use geogossip_geometry::point::NodeId;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Point;
use geogossip_graph::GeometricGraph;
use geogossip_routing::greedy::route_terminus;
use geogossip_sim::clock::Tick;
use geogossip_sim::engine::Activation;
use geogossip_sim::SeedStream;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Duration;

struct SizeBaseline {
    n: usize,
    graph_build_ns: f64,
    route_corner_ns: f64,
    tick_csr_ns: f64,
    tick_legacy_ns: f64,
}

fn measure(n: usize, seeds: &SeedStream) -> SizeBaseline {
    let budget = Duration::from_millis(800);
    let positions = sample_unit_square(n, &mut seeds.trial("bench-placement", n as u64));
    let graph = GeometricGraph::build_at_connectivity_radius(positions.clone(), 2.0);
    let legacy = LegacyGraph::from_graph(&graph);

    let graph_build_ns = median_ns_per_iter(
        || {
            std::hint::black_box(GeometricGraph::build_at_connectivity_radius(
                positions.clone(),
                2.0,
            ));
        },
        budget,
    );

    let source = graph
        .nearest_node(Point::new(0.05, 0.05))
        .expect("non-empty graph");
    let route_corner_ns = median_ns_per_iter(
        || {
            std::hint::black_box(route_terminus(&graph, source, Point::new(0.95, 0.95)));
        },
        budget,
    );

    // Both tick variants consume identical RNG streams and start from a
    // freshly rebuilt value vector, so the comparison isolates the adjacency
    // layout + allocation behaviour.
    let mut values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let mut rng = seeds.trial("bench-ticks", n as u64);
    let mut activated = 0usize;
    let tick_csr_ns = median_ns_per_iter(
        || {
            activated = (activated + 101) % n;
            std::hint::black_box(csr_geographic_tick(
                &graph,
                &mut values,
                geogossip_geometry::point::NodeId(activated),
                &mut rng,
            ));
        },
        budget,
    );
    let mut values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let mut rng = seeds.trial("bench-ticks", n as u64);
    let mut activated = 0usize;
    let tick_legacy_ns = median_ns_per_iter(
        || {
            activated = (activated + 101) % n;
            std::hint::black_box(legacy_geographic_tick(
                &legacy,
                &mut values,
                geogossip_geometry::point::NodeId(activated),
                &mut rng,
            ));
        },
        budget,
    );

    SizeBaseline {
        n,
        graph_build_ns,
        route_corner_ns,
        tick_csr_ns,
        tick_legacy_ns,
    }
}

/// One dyn-vs-generic tick measurement at size `n`.
struct DynBaseline {
    n: usize,
    generic_ns: f64,
    dyn_ns: f64,
}

/// Measures a geographic-gossip tick through the monomorphised inherent
/// `step` (concrete RNG, full inlining) against the object-safe
/// `dyn Activation::on_tick` path (vtable call + `dyn RngCore` draws) on the
/// same instance with identical RNG streams.
fn measure_dyn(n: usize, seeds: &SeedStream) -> DynBaseline {
    let budget = Duration::from_millis(800);
    let positions = sample_unit_square(n, &mut seeds.trial("bench-placement", n as u64));
    let graph = GeometricGraph::build_at_connectivity_radius(positions, 2.0);
    let values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();

    let mut protocol = GeographicGossip::new(&graph, values.clone()).expect("valid instance");
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut tx = geogossip_sim::TransmissionCounter::new();
    let mut index = 0u64;
    let mut activated = 0usize;
    let generic_ns = median_ns_per_iter(
        || {
            index += 1;
            activated = (activated + 101) % n;
            let tick = Tick {
                time: index as f64,
                index,
                node: NodeId(activated),
            };
            protocol.step(tick, &mut tx, &mut rng);
        },
        budget,
    );

    let mut protocol = GeographicGossip::new(&graph, values).expect("valid instance");
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut tx = geogossip_sim::TransmissionCounter::new();
    let mut index = 0u64;
    let mut activated = 0usize;
    let dyn_protocol: &mut dyn Activation = &mut protocol;
    let dyn_ns = median_ns_per_iter(
        || {
            index += 1;
            activated = (activated + 101) % n;
            let tick = Tick {
                time: index as f64,
                index,
                node: NodeId(activated),
            };
            let dyn_rng: &mut dyn RngCore = &mut rng;
            dyn_protocol.on_tick(tick, &mut tx, dyn_rng);
        },
        budget,
    );

    DynBaseline {
        n,
        generic_ns,
        dyn_ns,
    }
}

/// One large-`n` graph-build measurement.
struct BuildBaseline {
    n: usize,
    samples: usize,
    parallel_ns: f64,
    /// `None` when the sequential reference was skipped (largest size).
    reference_ns: Option<f64>,
}

/// Measures the two-pass parallel build — and, when affordable, the preserved
/// sequential reference build — on one placement of `n` sensors at the
/// standard bench radius `2·sqrt(log n / n)` (the constant the classic
/// `graph_build_median_ns` rows used, so the series stays comparable).
fn measure_build(
    n: usize,
    samples: usize,
    with_reference: bool,
    seeds: &SeedStream,
) -> BuildBaseline {
    let budget = Duration::from_millis(1500);
    let positions = sample_unit_square(n, &mut seeds.trial("bench-placement", n as u64));
    let radius = geogossip_geometry::connectivity_radius(n, 2.0);
    let parallel_ns = geogossip_bench::timing::median_ns_per_iter_with_samples(
        || {
            std::hint::black_box(GeometricGraph::build(positions.clone(), radius));
        },
        budget,
        samples,
    );
    let reference_ns = with_reference.then(|| {
        geogossip_bench::timing::median_ns_per_iter_with_samples(
            || {
                std::hint::black_box(GeometricGraph::build_reference(
                    positions.clone(),
                    radius,
                    geogossip_geometry::Topology::UnitSquare,
                ));
            },
            budget,
            samples,
        )
    });
    BuildBaseline {
        n,
        samples,
        parallel_ns,
        reference_ns,
    }
}

/// Appends the large-`n` build measurements to `out_path`'s `graph_build`
/// array, preserving every existing entry of the file.
fn append_build_baseline(out_path: &str) {
    let seeds = SeedStream::new(20070612);
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    // Sample counts shrink as the per-build cost grows; the sequential
    // reference is skipped at the largest size (it would add minutes for a
    // number the 65k/262k rows already establish).
    let records: Vec<JsonValue> = [(65_536usize, 15, true), (262_144, 7, true), (1_048_576, 5, false)]
        .iter()
        .map(|&(n, samples, with_reference)| {
            let b = measure_build(n, samples, with_reference, &seeds);
            let speedup = b.reference_ns.map(|r| r / b.parallel_ns);
            match (b.reference_ns, speedup) {
                (Some(r), Some(s)) => println!(
                    "n={:8}  parallel build {:>12.0} ns | sequential reference {:>12.0} ns | speedup {:.2}x",
                    b.n, b.parallel_ns, r, s
                ),
                _ => println!(
                    "n={:8}  parallel build {:>12.0} ns | sequential reference skipped",
                    b.n, b.parallel_ns
                ),
            }
            JsonValue::object(vec![
                ("n", b.n.into()),
                ("samples", b.samples.into()),
                ("threads", threads.into()),
                ("parallel_build_median_ns", b.parallel_ns.round().into()),
                (
                    "reference_build_median_ns",
                    b.reference_ns.map_or(JsonValue::Null, |r| r.round().into()),
                ),
                (
                    "speedup_vs_reference",
                    speedup.map_or(JsonValue::Null, |s| ((s * 100.0).round() / 100.0).into()),
                ),
            ])
        })
        .collect();
    append_records(out_path, "graph_build", records);
    println!("appended graph-build baseline to {out_path}");
}

/// Appends the dyn-dispatch measurements to `out_path`'s `dyn_dispatch`
/// array, preserving every existing entry of the file.
fn append_dyn_baseline(out_path: &str) {
    let seeds = SeedStream::new(20070612);
    let records: Vec<JsonValue> = [1024usize, 4096]
        .iter()
        .map(|&n| {
            let b = measure_dyn(n, &seeds);
            let overhead_pct = (b.dyn_ns / b.generic_ns - 1.0) * 100.0;
            println!(
                "n={:5}  generic tick {:>8.0} ns | dyn tick {:>8.0} ns | overhead {:+.1}%",
                b.n, b.generic_ns, b.dyn_ns, overhead_pct
            );
            JsonValue::object(vec![
                ("n", b.n.into()),
                ("generic_tick_median_ns", (b.generic_ns.round()).into()),
                ("dyn_tick_median_ns", (b.dyn_ns.round()).into()),
                (
                    "overhead_pct",
                    ((overhead_pct * 10.0).round() / 10.0).into(),
                ),
            ])
        })
        .collect();

    append_records(out_path, "dyn_dispatch", records);
    println!("appended dyn-dispatch baseline to {out_path}");
}

/// Appends `records` to the array under `key` in the JSON document at
/// `out_path`, preserving every existing entry (and every other key) of the
/// file — the BENCH history rule shared by every `--append-*` mode.
fn append_records(out_path: &str, key: &str, records: Vec<JsonValue>) {
    let mut doc = match std::fs::read_to_string(out_path) {
        Ok(text) => JsonValue::parse(&text).expect("existing baseline file must be valid JSON"),
        Err(_) => JsonValue::object(vec![(
            "benchmark",
            JsonValue::string("geogossip hot-path baseline"),
        )]),
    };
    let JsonValue::Object(entries) = &mut doc else {
        panic!("baseline file must hold a JSON object");
    };
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some((_, JsonValue::Array(existing))) => existing.extend(records),
        Some((_, other)) => panic!("`{key}` must be an array, found {other:?}"),
        None => entries.push((key.to_string(), JsonValue::Array(records))),
    }
    std::fs::write(out_path, doc.pretty() + "\n").expect("writing the baseline file must succeed");
}

fn main() {
    // `--append-dyn` / `--append-build` are recognised anywhere on the
    // command line; any other flag is an error rather than silently being
    // taken for an output path (the classic mode overwrites its output, so a
    // mis-parsed flag would destroy the appended history).
    let mut append_dyn = false;
    let mut append_build = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--append-dyn" {
            append_dyn = true;
        } else if arg == "--append-build" {
            append_build = true;
        } else if arg.starts_with('-') {
            eprintln!("unknown flag `{arg}` (only --append-dyn and --append-build are supported)");
            std::process::exit(2);
        } else if out_path.replace(arg).is_some() {
            eprintln!("expected at most one output path");
            std::process::exit(2);
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_baseline.json".to_string());
    if append_dyn || append_build {
        if append_dyn {
            append_dyn_baseline(&out_path);
        }
        if append_build {
            append_build_baseline(&out_path);
        }
        return;
    }
    let seeds = SeedStream::new(20070612);
    // Keep the rng type exercised so the binary fails loudly if the vendored
    // stack regresses (the tick measurement relies on it).
    let _: u64 = seeds.stream("smoke").gen();

    let baselines: Vec<SizeBaseline> = [1024usize, 4096]
        .iter()
        .map(|&n| measure(n, &seeds))
        .collect();

    let mut json = String::from("{\n  \"benchmark\": \"geogossip hot-path baseline\",\n");
    let _ = writeln!(
        json,
        "  \"samples_per_median\": {},",
        geogossip_bench::timing::SAMPLES
    );
    json.push_str("  \"sizes\": [\n");
    for (i, b) in baselines.iter().enumerate() {
        let speedup = b.tick_legacy_ns / b.tick_csr_ns;
        let _ = write!(
            json,
            "    {{\"n\": {}, \"graph_build_median_ns\": {:.0}, \"route_corner_to_corner_median_ns\": {:.0}, \"geo_gossip_tick_median_ns\": {:.0}, \"geo_gossip_tick_pre_csr_median_ns\": {:.0}, \"tick_speedup_vs_pre_csr\": {:.2}}}",
            b.n, b.graph_build_ns, b.route_corner_ns, b.tick_csr_ns, b.tick_legacy_ns, speedup
        );
        json.push_str(if i + 1 < baselines.len() { ",\n" } else { "\n" });
        println!(
            "n={:5}  graph build {:>10.0} ns | corner route {:>8.0} ns | tick {:>8.0} ns (pre-CSR {:>8.0} ns, speedup {:.2}x)",
            b.n, b.graph_build_ns, b.route_corner_ns, b.tick_csr_ns, b.tick_legacy_ns, speedup
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, json).expect("writing the baseline file must succeed");
    println!("wrote {out_path}");
}
