//! Writes the headline performance baseline to `BENCH_baseline.json`.
//!
//! Measures median wall-clock times for the hot-path primitives at
//! `n ∈ {1024, 4096}`:
//!
//! * building `G(n, 2·sqrt(log n / n))`,
//! * one corner-to-corner greedy route (allocation-free fast path),
//! * one geographic-gossip tick (partner route + reply route + exchange),
//!   against both the CSR/allocation-free implementation and the preserved
//!   pre-optimization (`Vec<Vec<usize>>` + per-call path allocation) hot path
//!   from [`geogossip_bench::legacy`], so the speedup is measured in the same
//!   tree on the same instances.
//!
//! Usage: `cargo run --release -p geogossip-bench --bin bench_baseline
//! [output.json]` (default output: `BENCH_baseline.json`).

use geogossip_bench::legacy::{csr_geographic_tick, legacy_geographic_tick, LegacyGraph};
use geogossip_bench::timing::median_ns_per_iter;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Point;
use geogossip_graph::GeometricGraph;
use geogossip_routing::greedy::route_terminus;
use geogossip_sim::SeedStream;
use rand::Rng;
use std::fmt::Write as _;
use std::time::Duration;

struct SizeBaseline {
    n: usize,
    graph_build_ns: f64,
    route_corner_ns: f64,
    tick_csr_ns: f64,
    tick_legacy_ns: f64,
}

fn measure(n: usize, seeds: &SeedStream) -> SizeBaseline {
    let budget = Duration::from_millis(800);
    let positions = sample_unit_square(n, &mut seeds.trial("bench-placement", n as u64));
    let graph = GeometricGraph::build_at_connectivity_radius(positions.clone(), 2.0);
    let legacy = LegacyGraph::from_graph(&graph);

    let graph_build_ns = median_ns_per_iter(
        || {
            std::hint::black_box(GeometricGraph::build_at_connectivity_radius(
                positions.clone(),
                2.0,
            ));
        },
        budget,
    );

    let source = graph
        .nearest_node(Point::new(0.05, 0.05))
        .expect("non-empty graph");
    let route_corner_ns = median_ns_per_iter(
        || {
            std::hint::black_box(route_terminus(&graph, source, Point::new(0.95, 0.95)));
        },
        budget,
    );

    // Both tick variants consume identical RNG streams and start from a
    // freshly rebuilt value vector, so the comparison isolates the adjacency
    // layout + allocation behaviour.
    let mut values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let mut rng = seeds.trial("bench-ticks", n as u64);
    let mut activated = 0usize;
    let tick_csr_ns = median_ns_per_iter(
        || {
            activated = (activated + 101) % n;
            std::hint::black_box(csr_geographic_tick(
                &graph,
                &mut values,
                geogossip_geometry::point::NodeId(activated),
                &mut rng,
            ));
        },
        budget,
    );
    let mut values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let mut rng = seeds.trial("bench-ticks", n as u64);
    let mut activated = 0usize;
    let tick_legacy_ns = median_ns_per_iter(
        || {
            activated = (activated + 101) % n;
            std::hint::black_box(legacy_geographic_tick(
                &legacy,
                &mut values,
                geogossip_geometry::point::NodeId(activated),
                &mut rng,
            ));
        },
        budget,
    );

    SizeBaseline {
        n,
        graph_build_ns,
        route_corner_ns,
        tick_csr_ns,
        tick_legacy_ns,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let seeds = SeedStream::new(20070612);
    // Keep the rng type exercised so the binary fails loudly if the vendored
    // stack regresses (the tick measurement relies on it).
    let _: u64 = seeds.stream("smoke").gen();

    let baselines: Vec<SizeBaseline> = [1024usize, 4096]
        .iter()
        .map(|&n| measure(n, &seeds))
        .collect();

    let mut json = String::from("{\n  \"benchmark\": \"geogossip hot-path baseline\",\n");
    let _ = writeln!(
        json,
        "  \"samples_per_median\": {},",
        geogossip_bench::timing::SAMPLES
    );
    json.push_str("  \"sizes\": [\n");
    for (i, b) in baselines.iter().enumerate() {
        let speedup = b.tick_legacy_ns / b.tick_csr_ns;
        let _ = write!(
            json,
            "    {{\"n\": {}, \"graph_build_median_ns\": {:.0}, \"route_corner_to_corner_median_ns\": {:.0}, \"geo_gossip_tick_median_ns\": {:.0}, \"geo_gossip_tick_pre_csr_median_ns\": {:.0}, \"tick_speedup_vs_pre_csr\": {:.2}}}",
            b.n, b.graph_build_ns, b.route_corner_ns, b.tick_csr_ns, b.tick_legacy_ns, speedup
        );
        json.push_str(if i + 1 < baselines.len() { ",\n" } else { "\n" });
        println!(
            "n={:5}  graph build {:>10.0} ns | corner route {:>8.0} ns | tick {:>8.0} ns (pre-CSR {:>8.0} ns, speedup {:.2}x)",
            b.n, b.graph_build_ns, b.route_corner_ns, b.tick_csr_ns, b.tick_legacy_ns, speedup
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, json).expect("writing the baseline file must succeed");
    println!("wrote {out_path}");
}
