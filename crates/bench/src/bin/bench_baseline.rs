//! Writes the headline performance baseline to `BENCH_baseline.json`.
//!
//! Measures median wall-clock times for the hot-path primitives at
//! `n ∈ {1024, 4096}`:
//!
//! * building `G(n, 2·sqrt(log n / n))`,
//! * one corner-to-corner greedy route (allocation-free fast path),
//! * one geographic-gossip tick (partner route + reply route + exchange),
//!   against both the CSR/allocation-free implementation and the preserved
//!   pre-optimization (`Vec<Vec<usize>>` + per-call path allocation) hot path
//!   from [`geogossip_bench::legacy`], so the speedup is measured in the same
//!   tree on the same instances.
//!
//! Usage:
//!
//! * `cargo run --release -p geogossip-bench --bin bench_baseline
//!   [output.json]` — writes the classic baseline (default output:
//!   `BENCH_baseline.json`).
//! * `… --bin bench_baseline -- --append-dyn [output.json]` — measures the
//!   scenario redesign's dyn-dispatch overhead (one geographic-gossip tick
//!   through `&mut dyn Activation` + `&mut dyn RngCore` versus the inherent
//!   generic `step` path) and **appends** the record to the existing file's
//!   `dyn_dispatch` array, preserving all prior entries (the BENCH history
//!   rule: append comparable numbers, never overwrite history).
//! * `… --bin bench_baseline -- --append-build [output.json]` — measures the
//!   two-pass parallel graph build at `n ∈ {65 536, 262 144, 1 048 576}`
//!   against the preserved sequential reference
//!   ([`GeometricGraph::build_reference`], skipped at the largest size where
//!   it would take minutes) and **appends** the records to the file's
//!   `graph_build` array under the same never-clobber-history discipline.
//! * `… --bin bench_baseline -- --append-tick-large [output.json]` — drives
//!   whole fixed-tick-budget geographic-gossip runs at `n ∈ {65 536, 262 144}`
//!   through the overhauled engine loop (`AsyncEngine::run`: batched clock,
//!   squared-domain stop check, vectorized greedy scan) and the preserved
//!   pre-overhaul loop (`AsyncEngine::run_reference`), and **appends** the
//!   per-tick medians to the file's `tick_loop_large` array.
//! * `… --bin bench_baseline -- --append-trial [output.json]` — runs every
//!   member of `scenarios/large_n.json` through the scenario `Runner` and
//!   **appends** whole-trial wall clock and tick throughput to the file's
//!   `trial_wall_clock` array.
//! * `… --bin bench_baseline -- --append-net [output.json]` — drives whole
//!   fixed-tick-budget geographic-gossip runs at `n ∈ {1024, 4096}` through
//!   the message-passing scheduler (`NetScheduler` + `GeographicNet` on the
//!   instant schedule) and the shared-memory engine (`AsyncEngine` +
//!   `GeographicGossip`), asserts the reports are **bit-identical** (the net
//!   layer's oracle pin), and **appends** per-tick medians and the overhead
//!   ratio to the file's `net_runtime` array.
//! * `… --bin bench_baseline -- --append-intra [output.json]` — drives whole
//!   fixed-tick-budget geographic-gossip runs at `n ∈ {65 536, 262 144}`
//!   through the parallel engine (`AsyncEngine::run_parallel` on the
//!   work-stealing pool, all available workers) and the sequential engine
//!   (`AsyncEngine::run`), asserts the reports are **bit-identical** every
//!   sample, and **appends** the whole-loop medians — thread count recorded
//!   per row — to the file's `intra_trial` array.
//! * `… --bin bench_baseline -- --append-telemetry [output.json]` — drives
//!   whole fixed-tick-budget geographic-gossip runs at `n ∈ {1024, 4096}`
//!   through `AsyncEngine::run_probed` (a counting probe attached) and
//!   `AsyncEngine::run` (the `NoProbe` monomorphization), asserts the reports
//!   are **bit-identical** (a probe observes, never steers), and **appends**
//!   the whole-loop medians and the overhead percentage to the file's
//!   `telemetry_overhead` array.
//! * `--smoke` (combinable with every mode) shrinks sizes and sample counts
//!   to seconds-scale so CI can exercise each append mode — and the
//!   never-clobber JSON parsing they share — against a scratch file on every
//!   push. Smoke numbers are not comparable to the real series; never point
//!   `--smoke` at the committed `BENCH_baseline.json`.

use geogossip_analysis::json::JsonValue;
use geogossip_bench::legacy::{
    csr_geographic_tick, legacy_geographic_tick, LegacyGraph, ReferenceGeographicGossip,
};
use geogossip_bench::timing::median_ns_per_iter;
use geogossip_core::prelude::*;
use geogossip_geometry::point::NodeId;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Point;
use geogossip_graph::GeometricGraph;
use geogossip_net::{GeographicNet, NetScheduler};
use geogossip_routing::greedy::route_terminus;
use geogossip_sim::clock::Tick;
use geogossip_sim::engine::Activation;
use geogossip_sim::scenario::ScenarioSpec;
use geogossip_sim::transport::{LatencyModel, ReliabilitySpec};
use geogossip_sim::{AsyncEngine, SeedStream, StopCondition, StopReason};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct SizeBaseline {
    n: usize,
    graph_build_ns: f64,
    route_corner_ns: f64,
    tick_csr_ns: f64,
    tick_legacy_ns: f64,
}

fn measure(n: usize, seeds: &SeedStream) -> SizeBaseline {
    let budget = Duration::from_millis(800);
    let positions = sample_unit_square(n, &mut seeds.trial("bench-placement", n as u64));
    let graph = GeometricGraph::build_at_connectivity_radius(positions.clone(), 2.0);
    let legacy = LegacyGraph::from_graph(&graph);

    let graph_build_ns = median_ns_per_iter(
        || {
            std::hint::black_box(GeometricGraph::build_at_connectivity_radius(
                positions.clone(),
                2.0,
            ));
        },
        budget,
    );

    let source = graph
        .nearest_node(Point::new(0.05, 0.05))
        .expect("non-empty graph");
    let route_corner_ns = median_ns_per_iter(
        || {
            std::hint::black_box(route_terminus(&graph, source, Point::new(0.95, 0.95)));
        },
        budget,
    );

    // Both tick variants consume identical RNG streams and start from a
    // freshly rebuilt value vector, so the comparison isolates the adjacency
    // layout + allocation behaviour.
    let mut values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let mut rng = seeds.trial("bench-ticks", n as u64);
    let mut activated = 0usize;
    let tick_csr_ns = median_ns_per_iter(
        || {
            activated = (activated + 101) % n;
            std::hint::black_box(csr_geographic_tick(
                &graph,
                &mut values,
                geogossip_geometry::point::NodeId(activated),
                &mut rng,
            ));
        },
        budget,
    );
    let mut values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let mut rng = seeds.trial("bench-ticks", n as u64);
    let mut activated = 0usize;
    let tick_legacy_ns = median_ns_per_iter(
        || {
            activated = (activated + 101) % n;
            std::hint::black_box(legacy_geographic_tick(
                &legacy,
                &mut values,
                geogossip_geometry::point::NodeId(activated),
                &mut rng,
            ));
        },
        budget,
    );

    SizeBaseline {
        n,
        graph_build_ns,
        route_corner_ns,
        tick_csr_ns,
        tick_legacy_ns,
    }
}

/// One dyn-vs-generic tick measurement at size `n`.
struct DynBaseline {
    n: usize,
    generic_ns: f64,
    dyn_ns: f64,
}

/// Measures a geographic-gossip tick through the monomorphised inherent
/// `step` (concrete RNG, full inlining) against the object-safe
/// `dyn Activation::on_tick` path (vtable call + `dyn RngCore` draws) on the
/// same instance with identical RNG streams.
fn measure_dyn(n: usize, seeds: &SeedStream) -> DynBaseline {
    let budget = Duration::from_millis(800);
    let positions = sample_unit_square(n, &mut seeds.trial("bench-placement", n as u64));
    let graph = GeometricGraph::build_at_connectivity_radius(positions, 2.0);
    let values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();

    let mut protocol = GeographicGossip::new(&graph, values.clone()).expect("valid instance");
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut tx = geogossip_sim::TransmissionCounter::new();
    let mut index = 0u64;
    let mut activated = 0usize;
    let generic_ns = median_ns_per_iter(
        || {
            index += 1;
            activated = (activated + 101) % n;
            let tick = Tick {
                time: index as f64,
                index,
                node: NodeId(activated),
            };
            protocol.step(tick, &mut tx, &mut rng);
        },
        budget,
    );

    let mut protocol = GeographicGossip::new(&graph, values).expect("valid instance");
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut tx = geogossip_sim::TransmissionCounter::new();
    let mut index = 0u64;
    let mut activated = 0usize;
    let dyn_protocol: &mut dyn Activation = &mut protocol;
    let dyn_ns = median_ns_per_iter(
        || {
            index += 1;
            activated = (activated + 101) % n;
            let tick = Tick {
                time: index as f64,
                index,
                node: NodeId(activated),
            };
            let dyn_rng: &mut dyn RngCore = &mut rng;
            dyn_protocol.on_tick(tick, &mut tx, dyn_rng);
        },
        budget,
    );

    DynBaseline {
        n,
        generic_ns,
        dyn_ns,
    }
}

/// One large-`n` graph-build measurement.
struct BuildBaseline {
    n: usize,
    samples: usize,
    parallel_ns: f64,
    /// `None` when the sequential reference was skipped (largest size).
    reference_ns: Option<f64>,
}

/// Measures the two-pass parallel build — and, when affordable, the preserved
/// sequential reference build — on one placement of `n` sensors at the
/// standard bench radius `2·sqrt(log n / n)` (the constant the classic
/// `graph_build_median_ns` rows used, so the series stays comparable).
fn measure_build(
    n: usize,
    samples: usize,
    with_reference: bool,
    seeds: &SeedStream,
) -> BuildBaseline {
    let budget = Duration::from_millis(1500);
    let positions = sample_unit_square(n, &mut seeds.trial("bench-placement", n as u64));
    let radius = geogossip_geometry::connectivity_radius(n, 2.0);
    let parallel_ns = geogossip_bench::timing::median_ns_per_iter_with_samples(
        || {
            std::hint::black_box(GeometricGraph::build(positions.clone(), radius));
        },
        budget,
        samples,
    );
    let reference_ns = with_reference.then(|| {
        geogossip_bench::timing::median_ns_per_iter_with_samples(
            || {
                std::hint::black_box(GeometricGraph::build_reference(
                    positions.clone(),
                    radius,
                    geogossip_geometry::Topology::UnitSquare,
                ));
            },
            budget,
            samples,
        )
    });
    BuildBaseline {
        n,
        samples,
        parallel_ns,
        reference_ns,
    }
}

/// One engine-tick-loop measurement at size `n`: whole fixed-budget runs
/// through the overhauled loop and the preserved reference loop, reduced to
/// per-tick medians.
struct TickLoopBaseline {
    n: usize,
    ticks_per_run: u64,
    samples: usize,
    engine_ns: f64,
    reference_ns: f64,
}

/// Times complete `AsyncEngine` runs of geographic gossip capped at
/// `ticks_per_run` ticks (the error target is unreachable in that budget, so
/// both paths execute exactly the same number of ticks) and reports the
/// median nanoseconds per tick for the overhauled loop
/// (`AsyncEngine::run` + `GeographicGossip`: batched clock, squared-domain
/// stop check, f32-filtered routing scan) and the complete pre-overhaul loop
/// (`AsyncEngine::run_reference` + [`ReferenceGeographicGossip`]: sequential
/// clock, exact per-tick sqrt/divide stop check, preserved scalar walk) on
/// the same instance. The two runs are asserted to produce **identical**
/// reports, so the speedup compares bit-identical work — this is the whole
/// tick loop the `≥ 1.5×` acceptance row asserts.
fn measure_tick_loop(
    n: usize,
    ticks_per_run: u64,
    samples: usize,
    seeds: &SeedStream,
) -> TickLoopBaseline {
    let positions = sample_unit_square(n, &mut seeds.trial("bench-placement", n as u64));
    let graph = GeometricGraph::build_at_connectivity_radius(positions, 2.0);
    let values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let stop = StopCondition::at_epsilon(1e-12).with_max_ticks(ticks_per_run);

    let run_once = |reference: bool| -> (f64, geogossip_sim::EngineReport) {
        let mut rng = ChaCha8Rng::seed_from_u64(4242);
        let mut engine = AsyncEngine::new(n);
        let start;
        let report = if reference {
            let mut protocol = ReferenceGeographicGossip::new(&graph, values.clone());
            start = Instant::now();
            engine.run_reference(&mut protocol, stop, &mut rng)
        } else {
            let mut protocol =
                GeographicGossip::new(&graph, values.clone()).expect("valid instance");
            start = Instant::now();
            engine.run(&mut protocol, stop, &mut rng)
        };
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(report.reason, StopReason::TickBudgetExhausted);
        assert_eq!(report.ticks, ticks_per_run);
        (elapsed * 1e9 / ticks_per_run as f64, report)
    };

    let median = |timings: &mut Vec<f64>| -> f64 {
        timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        timings[timings.len() / 2]
    };
    // Alternate the two paths so slow drift (thermal, background load)
    // affects both medians equally; assert the runs are bit-identical so the
    // comparison stays apples to apples.
    let mut engine_timings = Vec::with_capacity(samples);
    let mut reference_timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let (engine_ns, engine_report) = run_once(false);
        let (reference_ns, reference_report) = run_once(true);
        assert_eq!(
            engine_report, reference_report,
            "overhauled and reference loops diverged at n={n}"
        );
        engine_timings.push(engine_ns);
        reference_timings.push(reference_ns);
    }
    TickLoopBaseline {
        n,
        ticks_per_run,
        samples,
        engine_ns: median(&mut engine_timings),
        reference_ns: median(&mut reference_timings),
    }
}

/// One net-scheduler-vs-engine measurement at size `n`: whole fixed-budget
/// runs on both execution layers, reduced to per-tick medians.
struct NetBaseline {
    n: usize,
    ticks_per_run: u64,
    samples: usize,
    net_ns: f64,
    engine_ns: f64,
}

/// Times complete geographic-gossip runs capped at `ticks_per_run` ticks on
/// the message-passing scheduler (instant schedule, so no latency draws from
/// the net stream) and the shared-memory engine, from identical seeds on the
/// same instance. On a lossless wire the two reports are asserted
/// **bit-identical** — the instant-schedule oracle pin — so the ratio prices
/// exactly the actor/event-queue machinery: message envelopes, the delivery
/// heap, and the per-hop charge bookkeeping. On a lossy wire the reports
/// legitimately diverge (drops, retries, duplicate suppression), and the
/// ratio additionally prices the reliability layer itself.
fn measure_net(
    n: usize,
    ticks_per_run: u64,
    samples: usize,
    seeds: &SeedStream,
    reliability: &ReliabilitySpec,
) -> NetBaseline {
    let positions = sample_unit_square(n, &mut seeds.trial("bench-placement", n as u64));
    let graph = GeometricGraph::build_at_connectivity_radius(positions, 2.0);
    let values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let stop = StopCondition::at_epsilon(1e-12).with_max_ticks(ticks_per_run);

    let run_once = |net: bool| -> (f64, geogossip_sim::EngineReport) {
        let mut rng = ChaCha8Rng::seed_from_u64(4242);
        let start;
        let report = if net {
            let mut actors = GeographicNet::new(&graph, values.clone()).expect("valid actors");
            let mut net_rng = ChaCha8Rng::seed_from_u64(4243);
            start = Instant::now();
            NetScheduler::new(n)
                .run_wire(
                    &mut actors,
                    stop,
                    LatencyModel::Instant,
                    *reliability,
                    None,
                    &mut rng,
                    &mut net_rng,
                )
                .0
        } else {
            let mut protocol =
                GeographicGossip::new(&graph, values.clone()).expect("valid instance");
            start = Instant::now();
            AsyncEngine::new(n).run(&mut protocol, stop, &mut rng)
        };
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(report.reason, StopReason::TickBudgetExhausted);
        assert_eq!(report.ticks, ticks_per_run);
        (elapsed * 1e9 / ticks_per_run as f64, report)
    };

    let median = |timings: &mut Vec<f64>| -> f64 {
        timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        timings[timings.len() / 2]
    };
    // Alternate the layers so slow drift affects both medians equally, and
    // hold the lossless comparison to bit-identical work (a lossy wire
    // legitimately diverges from the shared-memory oracle).
    let mut net_timings = Vec::with_capacity(samples);
    let mut engine_timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let (net_ns, net_report) = run_once(true);
        let (engine_ns, engine_report) = run_once(false);
        if reliability.is_lossless() {
            assert_eq!(
                net_report, engine_report,
                "net scheduler diverged from the engine oracle at n={n}"
            );
        }
        net_timings.push(net_ns);
        engine_timings.push(engine_ns);
    }
    NetBaseline {
        n,
        ticks_per_run,
        samples,
        net_ns: median(&mut net_timings),
        engine_ns: median(&mut engine_timings),
    }
}

/// One telemetry-overhead measurement at size `n`: whole fixed-budget runs
/// with a probe attached and absent, reduced to per-tick medians.
struct TelemetryBaseline {
    n: usize,
    ticks_per_run: u64,
    samples: usize,
    probed_ns: f64,
    unprobed_ns: f64,
    events_per_run: u64,
}

/// A minimal counting probe: the cheapest real subscriber, so the measured
/// gap prices the probe plumbing itself (event construction + dyn dispatch),
/// not any particular sink's I/O.
#[derive(Default)]
struct CountingProbe {
    events: u64,
}

impl geogossip_telemetry::Probe for CountingProbe {
    fn on_event(&mut self, event: geogossip_telemetry::Event) {
        std::hint::black_box(&event);
        self.events += 1;
    }
}

/// Times complete geographic-gossip runs capped at `ticks_per_run` ticks
/// through `AsyncEngine::run_probed` (counting probe attached) and
/// `AsyncEngine::run` (the `NoProbe` monomorphization), from identical seeds
/// on the same instance. The two reports are asserted **bit-identical** every
/// sample — a probe observes, it never steers — so the ratio prices exactly
/// the telemetry hook: per-tick event construction plus one dyn call on the
/// probed side, and on the unprobed side whatever the `NoProbe` path failed
/// to compile away (the no-probe-no-overhead invariant says: nothing).
fn measure_telemetry(
    n: usize,
    ticks_per_run: u64,
    samples: usize,
    seeds: &SeedStream,
) -> TelemetryBaseline {
    let positions = sample_unit_square(n, &mut seeds.trial("bench-placement", n as u64));
    let graph = GeometricGraph::build_at_connectivity_radius(positions, 2.0);
    let values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let stop = StopCondition::at_epsilon(1e-12).with_max_ticks(ticks_per_run);

    let mut events_per_run = 0u64;
    let mut run_once = |probed: bool| -> (f64, geogossip_sim::EngineReport) {
        let mut rng = ChaCha8Rng::seed_from_u64(4242);
        let mut engine = AsyncEngine::new(n);
        let mut protocol = GeographicGossip::new(&graph, values.clone()).expect("valid instance");
        let start = Instant::now();
        let report = if probed {
            let mut probe = CountingProbe::default();
            let report = engine.run_probed(&mut protocol, stop, &mut rng, &mut probe);
            events_per_run = probe.events;
            report
        } else {
            engine.run(&mut protocol, stop, &mut rng)
        };
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(report.reason, StopReason::TickBudgetExhausted);
        assert_eq!(report.ticks, ticks_per_run);
        (elapsed * 1e9 / ticks_per_run as f64, report)
    };

    let median = |timings: &mut Vec<f64>| -> f64 {
        timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        timings[timings.len() / 2]
    };
    // Alternate the two paths so slow drift affects both medians equally, and
    // hold the comparison to bit-identical work.
    let mut probed_timings = Vec::with_capacity(samples);
    let mut unprobed_timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let (probed_ns, probed_report) = run_once(true);
        let (unprobed_ns, unprobed_report) = run_once(false);
        assert_eq!(
            probed_report, unprobed_report,
            "probed engine diverged from the unprobed oracle at n={n}"
        );
        probed_timings.push(probed_ns);
        unprobed_timings.push(unprobed_ns);
    }
    TelemetryBaseline {
        n,
        ticks_per_run,
        samples,
        probed_ns: median(&mut probed_timings),
        unprobed_ns: median(&mut unprobed_timings),
        events_per_run,
    }
}

/// One intra-trial parallelism measurement at size `n`: whole fixed-budget
/// runs through the parallel engine and the sequential engine, reduced to
/// per-tick medians.
struct IntraBaseline {
    n: usize,
    ticks_per_run: u64,
    samples: usize,
    threads: usize,
    parallel_ns: f64,
    sequential_ns: f64,
}

/// Times complete geographic-gossip runs capped at `ticks_per_run` ticks on
/// the parallel engine (`AsyncEngine::run_parallel`: pre-drawn tick batches,
/// batch-wide concurrent route resolution on the work-stealing pool) and the
/// sequential engine (`AsyncEngine::run`), from identical seeds on the same
/// instance. The two reports are asserted **bit-identical** every sample —
/// parallelism is an execution strategy, never a semantics change — so the
/// speedup compares exactly the same work. The worker count is whatever the
/// pool actually has (`RAYON_NUM_THREADS`-capped available parallelism) and
/// is recorded per row: the `≥ 1.5×` acceptance threshold applies to
/// multi-core rows, a single-worker row prices the batching overhead alone.
fn measure_intra(
    n: usize,
    ticks_per_run: u64,
    samples: usize,
    seeds: &SeedStream,
) -> IntraBaseline {
    let threads = geogossip_sim::batch::available_threads();
    let par = geogossip_sim::ParallelSpec::with_threads(threads);
    let positions = sample_unit_square(n, &mut seeds.trial("bench-placement", n as u64));
    let graph = GeometricGraph::build_at_connectivity_radius(positions, 2.0);
    let values: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let stop = StopCondition::at_epsilon(1e-12).with_max_ticks(ticks_per_run);

    let run_once = |parallel: bool| -> (f64, geogossip_sim::EngineReport) {
        let mut rng = ChaCha8Rng::seed_from_u64(4242);
        let mut engine = AsyncEngine::new(n);
        let mut protocol = GeographicGossip::new(&graph, values.clone()).expect("valid instance");
        let start = Instant::now();
        let report = if parallel {
            engine.run_parallel(&mut protocol, stop, &mut rng, par)
        } else {
            engine.run(&mut protocol, stop, &mut rng)
        };
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(report.reason, StopReason::TickBudgetExhausted);
        assert_eq!(report.ticks, ticks_per_run);
        (elapsed * 1e9 / ticks_per_run as f64, report)
    };

    let median = |timings: &mut Vec<f64>| -> f64 {
        timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        timings[timings.len() / 2]
    };
    // Alternate the two paths so slow drift affects both medians equally, and
    // hold the comparison to bit-identical work.
    let mut parallel_timings = Vec::with_capacity(samples);
    let mut sequential_timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let (parallel_ns, parallel_report) = run_once(true);
        let (sequential_ns, sequential_report) = run_once(false);
        assert_eq!(
            parallel_report, sequential_report,
            "parallel engine diverged from the sequential oracle at n={n}"
        );
        parallel_timings.push(parallel_ns);
        sequential_timings.push(sequential_ns);
    }
    IntraBaseline {
        n,
        ticks_per_run,
        samples,
        threads,
        parallel_ns: median(&mut parallel_timings),
        sequential_ns: median(&mut sequential_timings),
    }
}

/// Appends the parallel-vs-sequential whole-loop medians to `out_path`'s
/// `intra_trial` array, preserving every existing entry of the file.
fn append_intra_baseline(out_path: &str, smoke: bool) {
    let seeds = SeedStream::new(20070612);
    // Budgets stay well short of convergence to 1e-12, so both paths execute
    // exactly the same ticks; sizes match the tick-loop series so the rows
    // stay comparable.
    let sizes: &[(usize, u64, usize)] = if smoke {
        &[(512, 2_000, 3), (1_024, 2_000, 3)]
    } else {
        &[(65_536, 16_384, 5), (262_144, 8_192, 5)]
    };
    let records: Vec<JsonValue> = sizes
        .iter()
        .map(|&(n, ticks_per_run, samples)| {
            let b = measure_intra(n, ticks_per_run, samples, &seeds);
            let speedup = b.sequential_ns / b.parallel_ns;
            println!(
                "n={:7}  parallel tick {:>9.0} ns ({} thread{}) | sequential tick {:>9.0} ns | speedup {:.2}x",
                b.n,
                b.parallel_ns,
                b.threads,
                if b.threads == 1 { "" } else { "s" },
                b.sequential_ns,
                speedup
            );
            JsonValue::object(vec![
                ("n", b.n.into()),
                ("ticks_per_sample", b.ticks_per_run.into()),
                ("samples", b.samples.into()),
                ("threads", b.threads.into()),
                ("smoke", JsonValue::Bool(smoke)),
                ("parallel_tick_median_ns", b.parallel_ns.round().into()),
                ("sequential_tick_median_ns", b.sequential_ns.round().into()),
                (
                    "speedup_vs_sequential",
                    ((speedup * 100.0).round() / 100.0).into(),
                ),
            ])
        })
        .collect();
    append_records(out_path, "intra_trial", records);
    println!("appended intra-trial parallelism baseline to {out_path}");
}

/// Appends the probed-vs-unprobed whole-loop medians to `out_path`'s
/// `telemetry_overhead` array, preserving every existing entry of the file.
fn append_telemetry_baseline(out_path: &str, smoke: bool) {
    let seeds = SeedStream::new(20070612);
    // Budgets stay well short of convergence to 1e-12, so both paths execute
    // exactly the same ticks; sizes match the classic hot-path series.
    let sizes: &[(usize, u64, usize)] = if smoke {
        &[(256, 2_000, 3), (512, 2_000, 3)]
    } else {
        &[(1_024, 8_192, 5), (4_096, 16_384, 5)]
    };
    let records: Vec<JsonValue> = sizes
        .iter()
        .map(|&(n, ticks_per_run, samples)| {
            let b = measure_telemetry(n, ticks_per_run, samples, &seeds);
            let overhead_pct = (b.probed_ns / b.unprobed_ns - 1.0) * 100.0;
            println!(
                "n={:5}  probed tick {:>8.0} ns ({} events/run) | unprobed tick {:>8.0} ns | overhead {:+.1}%",
                b.n, b.probed_ns, b.events_per_run, b.unprobed_ns, overhead_pct
            );
            JsonValue::object(vec![
                ("n", b.n.into()),
                ("ticks_per_sample", b.ticks_per_run.into()),
                ("samples", b.samples.into()),
                ("smoke", JsonValue::Bool(smoke)),
                ("events_per_run", b.events_per_run.into()),
                ("probed_tick_median_ns", b.probed_ns.round().into()),
                ("unprobed_tick_median_ns", b.unprobed_ns.round().into()),
                (
                    "overhead_pct",
                    ((overhead_pct * 10.0).round() / 10.0).into(),
                ),
            ])
        })
        .collect();
    append_records(out_path, "telemetry_overhead", records);
    println!("appended telemetry-overhead baseline to {out_path}");
}

/// Appends the net-scheduler-vs-engine medians to `out_path`'s `net_runtime`
/// array, preserving every existing entry of the file.
fn append_net_baseline(out_path: &str, smoke: bool) {
    let seeds = SeedStream::new(20070612);
    // Budgets stay well short of convergence to 1e-12 (a handful of
    // activations per node), so both layers execute exactly the same ticks.
    let sizes: &[(usize, u64, usize)] = if smoke {
        &[(256, 2_000, 3), (512, 2_000, 3)]
    } else {
        &[(1_024, 8_192, 5), (4_096, 16_384, 5)]
    };
    // Each size is measured on a lossless wire (oracle-pinned) and on a lossy
    // wire (30% drop, 5% duplication, default retries); every row records the
    // reliability configuration it was measured under.
    let wires = [
        ReliabilitySpec::default(),
        ReliabilitySpec {
            drop: 0.3,
            duplicate: 0.05,
            ..ReliabilitySpec::default()
        },
    ];
    let records: Vec<JsonValue> = sizes
        .iter()
        .flat_map(|&(n, ticks_per_run, samples)| {
            wires.iter().map(move |wire| (n, ticks_per_run, samples, wire))
        })
        .map(|(n, ticks_per_run, samples, wire)| {
            let b = measure_net(n, ticks_per_run, samples, &seeds, wire);
            let wire_token = if wire.is_lossless() {
                "lossless".to_string()
            } else {
                format!("drop:{}+dup:{}", wire.drop, wire.duplicate)
            };
            let overhead = b.net_ns / b.engine_ns;
            let net_ticks_per_sec = 1e9 / b.net_ns;
            let engine_ticks_per_sec = 1e9 / b.engine_ns;
            println!(
                "n={:5}  {:18}  net tick {:>8.0} ns ({:>9.0} ticks/s) | engine tick {:>8.0} ns ({:>9.0} ticks/s) | overhead {:.2}x",
                b.n, wire_token, b.net_ns, net_ticks_per_sec, b.engine_ns, engine_ticks_per_sec, overhead
            );
            JsonValue::object(vec![
                ("n", b.n.into()),
                ("ticks_per_sample", b.ticks_per_run.into()),
                ("samples", b.samples.into()),
                ("smoke", JsonValue::Bool(smoke)),
                ("reliability", JsonValue::string(&wire_token)),
                ("net_tick_median_ns", b.net_ns.round().into()),
                ("engine_tick_median_ns", b.engine_ns.round().into()),
                ("net_ticks_per_sec", net_ticks_per_sec.round().into()),
                ("engine_ticks_per_sec", engine_ticks_per_sec.round().into()),
                (
                    "overhead_vs_engine",
                    ((overhead * 100.0).round() / 100.0).into(),
                ),
            ])
        })
        .collect();
    append_records(out_path, "net_runtime", records);
    println!("appended net-runtime baseline to {out_path}");
}

/// Appends the overhauled-vs-reference tick-loop medians to `out_path`'s
/// `tick_loop_large` array, preserving every existing entry of the file.
fn append_tick_large_baseline(out_path: &str, smoke: bool) {
    let seeds = SeedStream::new(20070612);
    // Tick budgets shrink with n so each sample stays sub-second-to-seconds;
    // per-tick cost grows with n (longer routes, wider neighbor blocks).
    let sizes: &[(usize, u64, usize)] = if smoke {
        &[(512, 2_000, 3), (1_024, 2_000, 3)]
    } else {
        &[(65_536, 16_384, 5), (262_144, 8_192, 5)]
    };
    let records: Vec<JsonValue> = sizes
        .iter()
        .map(|&(n, ticks_per_run, samples)| {
            let b = measure_tick_loop(n, ticks_per_run, samples, &seeds);
            let speedup = b.reference_ns / b.engine_ns;
            println!(
                "n={:7}  engine tick {:>9.0} ns | reference tick {:>9.0} ns | speedup {:.2}x",
                b.n, b.engine_ns, b.reference_ns, speedup
            );
            JsonValue::object(vec![
                ("n", b.n.into()),
                ("ticks_per_sample", b.ticks_per_run.into()),
                ("samples", b.samples.into()),
                ("smoke", JsonValue::Bool(smoke)),
                ("engine_tick_median_ns", b.engine_ns.round().into()),
                ("reference_tick_median_ns", b.reference_ns.round().into()),
                (
                    "speedup_vs_reference",
                    (((speedup) * 100.0).round() / 100.0).into(),
                ),
            ])
        })
        .collect();
    append_records(out_path, "tick_loop_large", records);
    println!("appended tick-loop baseline to {out_path}");
}

/// Appends whole-trial wall-clock rows for every member of the large-`n`
/// scenario sweep (`scenarios/smoke.json` under `--smoke`) to `out_path`'s
/// `trial_wall_clock` array, preserving every existing entry of the file.
fn append_trial_baseline(out_path: &str, smoke: bool) {
    let spec_path = if smoke {
        "scenarios/smoke.json"
    } else {
        "scenarios/large_n.json"
    };
    // Shared loader with the `geogossip` CLI, so the accepted file shapes
    // cannot drift between the two binaries.
    let specs = ScenarioSpec::load_file(spec_path)
        .unwrap_or_else(|e| panic!("cannot load scenario file `{spec_path}`: {e}"));
    let runner = builtin_runner();
    let records: Vec<JsonValue> = specs
        .iter()
        .map(|spec| {
            let start = Instant::now();
            let report = runner
                .run(spec)
                .unwrap_or_else(|e| panic!("scenario `{}` failed: {e}", spec.name));
            let seconds = start.elapsed().as_secs_f64();
            let ticks = report.total_ticks();
            let ticks_per_sec = report.ticks_per_second().unwrap_or(0.0);
            println!(
                "{:24} n={:7}  {:>8.2} s wall | {:>10} ticks | {:>9.0} ticks/s | converged {}/{}",
                spec.name,
                spec.topology.n,
                seconds,
                ticks,
                ticks_per_sec,
                report.summary.converged_trials,
                report.summary.trials
            );
            JsonValue::object(vec![
                ("scenario", JsonValue::string(spec.name.clone())),
                ("n", spec.topology.n.into()),
                ("protocol", JsonValue::string(spec.protocol.name.clone())),
                ("trials", spec.trials.into()),
                ("smoke", JsonValue::Bool(smoke)),
                ("wall_seconds", ((seconds * 1000.0).round() / 1000.0).into()),
                ("ticks", ticks.into()),
                ("ticks_per_sec", ticks_per_sec.round().into()),
                ("converged_trials", report.summary.converged_trials.into()),
            ])
        })
        .collect();
    append_records(out_path, "trial_wall_clock", records);
    println!("appended trial wall-clock baseline to {out_path}");
}

/// Appends the large-`n` build measurements to `out_path`'s `graph_build`
/// array, preserving every existing entry of the file.
fn append_build_baseline(out_path: &str, smoke: bool) {
    let seeds = SeedStream::new(20070612);
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    // Sample counts shrink as the per-build cost grows; the sequential
    // reference is skipped at the largest size (it would add minutes for a
    // number the 65k/262k rows already establish).
    let sizes: &[(usize, usize, bool)] = if smoke {
        &[(4_096, 3, true), (8_192, 2, true)]
    } else {
        &[
            (65_536, 15, true),
            (262_144, 7, true),
            (1_048_576, 5, false),
        ]
    };
    let records: Vec<JsonValue> = sizes
        .iter()
        .map(|&(n, samples, with_reference)| {
            let b = measure_build(n, samples, with_reference, &seeds);
            let speedup = b.reference_ns.map(|r| r / b.parallel_ns);
            match (b.reference_ns, speedup) {
                (Some(r), Some(s)) => println!(
                    "n={:8}  parallel build {:>12.0} ns | sequential reference {:>12.0} ns | speedup {:.2}x",
                    b.n, b.parallel_ns, r, s
                ),
                _ => println!(
                    "n={:8}  parallel build {:>12.0} ns | sequential reference skipped",
                    b.n, b.parallel_ns
                ),
            }
            JsonValue::object(vec![
                ("n", b.n.into()),
                ("samples", b.samples.into()),
                ("threads", threads.into()),
                ("parallel_build_median_ns", b.parallel_ns.round().into()),
                (
                    "reference_build_median_ns",
                    b.reference_ns.map_or(JsonValue::Null, |r| r.round().into()),
                ),
                (
                    "speedup_vs_reference",
                    speedup.map_or(JsonValue::Null, |s| ((s * 100.0).round() / 100.0).into()),
                ),
            ])
        })
        .collect();
    append_records(out_path, "graph_build", records);
    println!("appended graph-build baseline to {out_path}");
}

/// Appends the dyn-dispatch measurements to `out_path`'s `dyn_dispatch`
/// array, preserving every existing entry of the file.
fn append_dyn_baseline(out_path: &str, smoke: bool) {
    let seeds = SeedStream::new(20070612);
    let sizes: &[usize] = if smoke { &[256, 512] } else { &[1024, 4096] };
    let records: Vec<JsonValue> = sizes
        .iter()
        .map(|&n| {
            let b = measure_dyn(n, &seeds);
            let overhead_pct = (b.dyn_ns / b.generic_ns - 1.0) * 100.0;
            println!(
                "n={:5}  generic tick {:>8.0} ns | dyn tick {:>8.0} ns | overhead {:+.1}%",
                b.n, b.generic_ns, b.dyn_ns, overhead_pct
            );
            JsonValue::object(vec![
                ("n", b.n.into()),
                ("generic_tick_median_ns", (b.generic_ns.round()).into()),
                ("dyn_tick_median_ns", (b.dyn_ns.round()).into()),
                (
                    "overhead_pct",
                    ((overhead_pct * 10.0).round() / 10.0).into(),
                ),
            ])
        })
        .collect();

    append_records(out_path, "dyn_dispatch", records);
    println!("appended dyn-dispatch baseline to {out_path}");
}

/// Appends `records` to the array under `key` in the JSON document at
/// `out_path`, preserving every existing entry (and every other key) of the
/// file — the BENCH history rule shared by every `--append-*` mode.
fn append_records(out_path: &str, key: &str, records: Vec<JsonValue>) {
    let mut doc = match std::fs::read_to_string(out_path) {
        Ok(text) => JsonValue::parse(&text).expect("existing baseline file must be valid JSON"),
        Err(_) => JsonValue::object(vec![(
            "benchmark",
            JsonValue::string("geogossip hot-path baseline"),
        )]),
    };
    let JsonValue::Object(entries) = &mut doc else {
        panic!("baseline file must hold a JSON object");
    };
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some((_, JsonValue::Array(existing))) => existing.extend(records),
        Some((_, other)) => panic!("`{key}` must be an array, found {other:?}"),
        None => entries.push((key.to_string(), JsonValue::Array(records))),
    }
    std::fs::write(out_path, doc.pretty() + "\n").expect("writing the baseline file must succeed");
}

fn main() {
    // `--append-*` / `--smoke` are recognised anywhere on the command line;
    // any other flag is an error rather than silently being taken for an
    // output path (the classic mode overwrites its output, so a mis-parsed
    // flag would destroy the appended history).
    let mut append_dyn = false;
    let mut append_build = false;
    let mut append_tick_large = false;
    let mut append_trial = false;
    let mut append_net = false;
    let mut append_intra = false;
    let mut append_telemetry = false;
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--append-dyn" {
            append_dyn = true;
        } else if arg == "--append-build" {
            append_build = true;
        } else if arg == "--append-tick-large" {
            append_tick_large = true;
        } else if arg == "--append-trial" {
            append_trial = true;
        } else if arg == "--append-net" {
            append_net = true;
        } else if arg == "--append-intra" {
            append_intra = true;
        } else if arg == "--append-telemetry" {
            append_telemetry = true;
        } else if arg == "--smoke" {
            smoke = true;
        } else if arg.starts_with('-') {
            eprintln!(
                "unknown flag `{arg}` (supported: --append-dyn, --append-build, \
                 --append-tick-large, --append-trial, --append-net, \
                 --append-intra, --append-telemetry, --smoke)"
            );
            std::process::exit(2);
        } else if out_path.replace(arg).is_some() {
            eprintln!("expected at most one output path");
            std::process::exit(2);
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_baseline.json".to_string());
    if smoke && out_path == "BENCH_baseline.json" {
        // Smoke numbers are not comparable to the real series; refusing the
        // default path keeps them out of the committed history.
        eprintln!("--smoke requires an explicit scratch output path");
        std::process::exit(2);
    }
    if append_dyn
        || append_build
        || append_tick_large
        || append_trial
        || append_net
        || append_intra
        || append_telemetry
    {
        if append_dyn {
            append_dyn_baseline(&out_path, smoke);
        }
        if append_build {
            append_build_baseline(&out_path, smoke);
        }
        if append_tick_large {
            append_tick_large_baseline(&out_path, smoke);
        }
        if append_trial {
            append_trial_baseline(&out_path, smoke);
        }
        if append_net {
            append_net_baseline(&out_path, smoke);
        }
        if append_intra {
            append_intra_baseline(&out_path, smoke);
        }
        if append_telemetry {
            append_telemetry_baseline(&out_path, smoke);
        }
        return;
    }
    let seeds = SeedStream::new(20070612);
    // Keep the rng type exercised so the binary fails loudly if the vendored
    // stack regresses (the tick measurement relies on it).
    let _: u64 = seeds.stream("smoke").gen();

    let sizes: &[usize] = if smoke { &[256, 512] } else { &[1024, 4096] };
    let baselines: Vec<SizeBaseline> = sizes.iter().map(|&n| measure(n, &seeds)).collect();

    let mut json = String::from("{\n  \"benchmark\": \"geogossip hot-path baseline\",\n");
    let _ = writeln!(
        json,
        "  \"samples_per_median\": {},",
        geogossip_bench::timing::SAMPLES
    );
    json.push_str("  \"sizes\": [\n");
    for (i, b) in baselines.iter().enumerate() {
        let speedup = b.tick_legacy_ns / b.tick_csr_ns;
        let _ = write!(
            json,
            "    {{\"n\": {}, \"graph_build_median_ns\": {:.0}, \"route_corner_to_corner_median_ns\": {:.0}, \"geo_gossip_tick_median_ns\": {:.0}, \"geo_gossip_tick_pre_csr_median_ns\": {:.0}, \"tick_speedup_vs_pre_csr\": {:.2}}}",
            b.n, b.graph_build_ns, b.route_corner_ns, b.tick_csr_ns, b.tick_legacy_ns, speedup
        );
        json.push_str(if i + 1 < baselines.len() { ",\n" } else { "\n" });
        println!(
            "n={:5}  graph build {:>10.0} ns | corner route {:>8.0} ns | tick {:>8.0} ns (pre-CSR {:>8.0} ns, speedup {:.2}x)",
            b.n, b.graph_build_ns, b.route_corner_ns, b.tick_csr_ns, b.tick_legacy_ns, speedup
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, json).expect("writing the baseline file must succeed");
    println!("wrote {out_path}");
}
