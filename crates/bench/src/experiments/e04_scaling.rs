//! E4 — The headline table: scaling exponents of the transmission cost.
//!
//! For each protocol, measure the transmissions needed to reach a fixed
//! relative accuracy across a ladder of network sizes and fit
//! `cost ≈ C·n^k` in log–log space. The paper's comparison (Section 1.2):
//!
//! | protocol | predicted exponent |
//! |---|---|
//! | pairwise (Boyd et al.) | ≈ 2 |
//! | geographic (Dimakis et al.) | ≈ 1.5 |
//! | affine hierarchy (this paper) | 1 + o(1) |
//!
//! The experiment also reports the number of *long-range rounds* used by the
//! affine protocol, whose `O(√n·log n)` growth at the top level is the
//! Lemma-1 mechanism behind the headline exponent.
//!
//! The whole grid is a list of [`ScenarioSpec`]s executed by
//! [`Runner::run_all`](geogossip_sim::scenario::Runner::run_all): sizes ×
//! protocols × trials run in parallel across cores, bit-identically to a
//! sequential loop.

use super::{ExperimentOutput, Scale};
use crate::workload::{runner, standard_spec, COMPARISON_PROTOCOLS};
use geogossip_analysis::{fit_power_law, fit_power_law_detailed, Table};
use geogossip_sim::scenario::ScenarioSpec;

/// Runs experiment E4.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let (sizes, epsilon, trials): (&[usize], f64, u64) = match scale {
        Scale::Smoke => (&[64, 128], 0.1, 1),
        Scale::Quick => (&[128, 256, 512, 1024], 0.05, 1),
        Scale::Full => (&[128, 256, 512, 1024, 2048, 4096], 0.05, 3),
    };
    let protocols = COMPARISON_PROTOCOLS;

    // One spec per (protocol, n); the runner interleaves the grid trial-major
    // so every worker gets a mix of sizes.
    let specs: Vec<ScenarioSpec> = protocols
        .iter()
        .flat_map(|&protocol| {
            sizes
                .iter()
                .map(move |&n| standard_spec(protocol, n, epsilon, seed).with_trials(trials))
        })
        .collect();
    let reports = runner().run_all(&specs).expect("standard specs are valid");
    let report_for = |p_idx: usize, n_idx: usize| &reports[p_idx * sizes.len() + n_idx];

    let mut table = Table::new(vec![
        "n",
        "pairwise tx",
        "geographic tx",
        "affine idealized tx",
        "affine recursive tx",
        "affine top-level rounds",
    ]);
    // Per protocol: the (n, mean transmissions) points of CONVERGED runs only,
    // so a run that hit its stall floor cannot distort the exponent fit (it is
    // still shown in the table, marked with an asterisk).
    let mut points: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); protocols.len()];
    let mut rounds_points: (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());

    for (n_idx, &n) in sizes.iter().enumerate() {
        let mut row = vec![n.to_string()];
        let mut rounds_for_n = 0.0;
        for (p_idx, &protocol) in protocols.iter().enumerate() {
            let report = report_for(p_idx, n_idx);
            let tx_mean = report.summary.mean_transmissions;
            if report.all_converged() {
                points[p_idx].0.push(n as f64);
                points[p_idx].1.push(tx_mean);
                row.push(format!("{tx_mean:.0}"));
            } else {
                row.push(format!("{tx_mean:.0}*"));
            }
            if protocol == "affine-idealized" {
                rounds_for_n = report.summary.mean_rounds;
                if report.all_converged() {
                    rounds_points.0.push(n as f64);
                    rounds_points.1.push(rounds_for_n);
                }
            }
        }
        row.push(format!("{rounds_for_n:.0}"));
        table.add_row(row);
    }

    let mut summary = Vec::new();
    let predictions = ["≈ 2", "≈ 1.5", "1 + o(1)", "1 + o(1) (plus polylog)"];
    let mut exponents = Vec::new();
    for (p_idx, _) in protocols.iter().enumerate() {
        let label = &report_for(p_idx, 0).protocol_label;
        if let Some(detail) = fit_power_law_detailed(&points[p_idx].0, &points[p_idx].1) {
            let ci = detail.exponent_interval(1.96);
            exponents.push(detail.fit.exponent);
            summary.push(format!(
                "{}: fitted exponent k = {:.2} (95% CI [{:.2}, {:.2}], R² = {:.3}), paper predicts {}",
                label, detail.fit.exponent, ci.lower, ci.upper, detail.fit.r_squared, predictions[p_idx]
            ));
        } else {
            exponents.push(f64::NAN);
            summary.push(format!(
                "{label}: too few converged sizes to fit an exponent (entries marked * did not reach ε)"
            ));
        }
    }
    if let Some(rounds_fit) = fit_power_law(&rounds_points.0, &rounds_points.1) {
        summary.push(format!(
            "affine top-level rounds grow as n^{:.2} (paper: O(√n·log(n/ε)) at the top level)",
            rounds_fit.exponent
        ));
    }
    summary.push("entries marked * did not reach the target accuracy (stall floor of nested local averaging); they are excluded from the fits".into());
    if exponents.len() >= 3 {
        let ordering = exponents[2] < exponents[1] && exponents[1] < exponents[0];
        summary.push(format!(
            "exponent ordering affine < geographic < pairwise: {}",
            if ordering {
                "holds"
            } else {
                "DOES NOT HOLD at these sizes"
            }
        ));
    }

    ExperimentOutput {
        id: "E4".into(),
        title: format!("transmissions to reach relative error {epsilon} vs network size (east-west gradient field)"),
        table,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_fits_exponents() {
        let out = run(Scale::Smoke, 4);
        assert_eq!(out.table.len(), 2);
        assert!(out.summary.iter().any(|s| s.contains("fitted exponent")));
    }
}
