//! E7 — Chernoff concentration of cell occupancy.
//!
//! Section 3 argues via the Chernoff bound that when the unit square is cut
//! into `~√n` cells, every cell's population is within 10% of its expectation
//! w.h.p. The experiment builds the top-level partition at increasing `n` and
//! reports the worst relative deviation, the number of cells outside the 10%
//! tolerance, and the Chernoff union bound for comparison.

use super::{ExperimentOutput, Scale};
use geogossip_analysis::{OccupancyCheck, Table};
use geogossip_geometry::{PartitionConfig, SquarePartition};
use geogossip_sim::scenario::PlacementSpec;
use geogossip_sim::SeedStream;

/// Runs experiment E7.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let sizes: &[usize] = match scale {
        Scale::Smoke => &[256, 1024],
        Scale::Quick => &[256, 1024, 4096, 16384],
        Scale::Full => &[256, 1024, 4096, 16384, 65536, 262144],
    };
    let seeds = SeedStream::new(seed);
    let mut table = Table::new(vec![
        "n",
        "top-level cells",
        "expected per cell",
        "max |#/E# - 1|",
        "cells beyond 10%",
        "empty cells",
        "Chernoff union bound (10%)",
    ]);
    let mut deviations = Vec::new();

    for &n in sizes {
        let points = PlacementSpec::UniformSquare.sample(n, &mut seeds.trial("e7", n as u64));
        let partition = SquarePartition::build(&points, PartitionConfig::top_level_only(n));
        let counts: Vec<usize> = partition
            .cells_at_depth(1)
            .map(|(_, c)| c.members().len())
            .collect();
        let expected = partition
            .cells_at_depth(1)
            .next()
            .map(|(_, c)| c.expected_count())
            .unwrap_or(1.0);
        let check = OccupancyCheck::from_counts(&counts, expected);
        deviations.push(check.max_relative_deviation);
        table.add_row(vec![
            n.to_string(),
            check.cells.to_string(),
            format!("{expected:.1}"),
            format!("{:.3}", check.max_relative_deviation),
            check.cells_beyond_ten_percent.to_string(),
            check.empty_cells.to_string(),
            format!("{:.2e}", check.chernoff_union_bound(0.1)),
        ]);
    }

    let shrinking = deviations.windows(2).all(|w| w[1] <= w[0] * 1.25);
    ExperimentOutput {
        id: "E7".into(),
        title: "occupancy concentration of the ~√n top-level cells".into(),
        table,
        summary: vec![
            format!(
                "worst-case relative deviation {} as n grows (paper's w.h.p. claim is asymptotic; the 10% tolerance needs E# ≳ 10³ sensors per cell)",
                if shrinking { "shrinks" } else { "does not shrink monotonically" }
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reports_deviations() {
        let out = run(Scale::Smoke, 7);
        assert_eq!(out.table.len(), 2);
        // Larger n should have smaller relative deviation.
        let first: f64 = out.table.rows()[0][3].parse().unwrap();
        let last: f64 = out.table.rows()[1][3].parse().unwrap();
        assert!(last <= first * 1.5);
    }
}
