//! E6 — Connectivity threshold of `G(n, c·√(log n/n))`.
//!
//! Gupta–Kumar: above a constant `c` the graph is connected w.h.p.; the paper
//! assumes this regime throughout and notes the failure probability cannot be
//! pushed below `n^{-O(1)}`. The experiment sweeps the radius constant and
//! reports the empirical connectivity probability per size, plus the smallest
//! constant that reached 95% connectivity.
//!
//! Every `(n, c, trial)` cell is one [`TopologySpec`] build — the same
//! topology machinery scenarios use — plugged into the graph crate's
//! [`ConnectivityScan`] grid/threshold logic via its builder hook.

use super::{ExperimentOutput, Scale};
use geogossip_analysis::Table;
use geogossip_graph::ConnectivityScan;
use geogossip_sim::scenario::{RadiusSpec, TopologySpec};
use geogossip_sim::SeedStream;

/// Runs experiment E6.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let (sizes, constants, trials): (&[usize], &[f64], usize) = match scale {
        Scale::Smoke => (&[128], &[0.5, 1.0, 2.0], 5),
        Scale::Quick => (&[128, 256, 512, 1024], &[0.6, 0.8, 1.0, 1.2, 1.5, 2.0], 20),
        Scale::Full => (
            &[128, 256, 512, 1024, 2048, 4096],
            &[0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.5, 2.0],
            50,
        ),
    };
    let seeds = SeedStream::new(seed);
    let scan = ConnectivityScan::run_with(sizes, constants, trials, |n, c, trial| {
        let mut spec = TopologySpec::standard(n);
        spec.radius = RadiusSpec::ConnectivityConstant(c);
        // Distinct, reproducible placement streams per (n, c, trial) cell.
        spec.build_with_rng(&mut seeds.trial(&format!("e6-n{n}-c{c}"), trial))
    });

    // One row per n, one column per radius constant.
    let mut headers: Vec<String> = vec!["n".into()];
    headers.extend(constants.iter().map(|c| format!("c = {c}")));
    let mut table = Table::new(headers);
    for &n in sizes {
        let mut row = vec![n.to_string()];
        for &c in constants {
            row.push(format!("{:.2}", scan.probability(n, c).unwrap_or(f64::NAN)));
        }
        table.add_row(row);
    }

    let mut summary = Vec::new();
    for &n in sizes {
        match scan.threshold_constant(n, 0.95) {
            Some(c) => summary.push(format!(
                "n = {n}: smallest scanned c with ≥95% connectivity: {c}"
            )),
            None => summary.push(format!(
                "n = {n}: no scanned constant reached 95% connectivity"
            )),
        }
    }
    summary.push(
        "verdict: connectivity switches on around c ≈ 1 and sharpens with n, matching Gupta–Kumar"
            .into(),
    );

    ExperimentOutput {
        id: "E6".into(),
        title: "connectivity probability of G(n, c·√(log n/n))".into(),
        table,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shows_monotone_connectivity() {
        let out = run(Scale::Smoke, 6);
        assert_eq!(out.table.len(), 1);
        let row = &out.table.rows()[0];
        let low: f64 = row[1].parse().unwrap();
        let high: f64 = row[3].parse().unwrap();
        assert!(
            high >= low,
            "connectivity should not decrease with the radius"
        );
        assert!(high >= 0.8, "c = 2 should be connected almost always");
    }
}
