//! E3 — Convergence trajectories: ℓ₂ error versus transmissions.
//!
//! The figure-shaped experiment: on one fixed network instance, run every
//! protocol and record the relative error as a function of the cumulative
//! transmission count. The table prints the series at a fixed grid of error
//! levels ("transmissions needed to first reach error ≤ x"), which is the
//! textual form of the usual error-vs-cost figure.
//!
//! All four protocols are one scenario batch: the specs share the seed and
//! topology, so the runner builds the **same** network and field for each
//! (placement/values streams do not depend on the protocol), while the run
//! streams stay independent through the per-protocol seed tags.

use super::{ExperimentOutput, Scale};
use crate::workload::{runner, standard_spec, COMPARISON_PROTOCOLS};
use geogossip_analysis::Table;
use geogossip_sim::scenario::ScenarioSpec;
use geogossip_sim::ConvergenceTrace;

/// Error levels reported in the table (the "x axis" of the figure).
pub const ERROR_LEVELS: [f64; 5] = [0.5, 0.2, 0.1, 0.05, 0.02];

fn format_crossing(trace: &ConvergenceTrace, level: f64) -> String {
    match trace.transmissions_to_reach(level) {
        Some(tx) => tx.to_string(),
        None => "—".into(),
    }
}

/// Runs experiment E3.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let n = match scale {
        Scale::Smoke => 128,
        Scale::Quick => 512,
        Scale::Full => 1024,
    };
    let epsilon = *ERROR_LEVELS.last().expect("levels are non-empty");
    let specs: Vec<ScenarioSpec> = COMPARISON_PROTOCOLS
        .iter()
        .map(|&protocol| standard_spec(protocol, n, epsilon, seed))
        .collect();
    let reports = runner().run_all(&specs).expect("standard specs are valid");
    let traces: Vec<&ConvergenceTrace> = reports.iter().map(|r| &r.trials[0].trace).collect();

    let mut table = Table::new(vec![
        "error level",
        "pairwise (Boyd) tx",
        "geographic (Dimakis) tx",
        "affine idealized tx",
        "affine recursive tx",
    ]);
    for &level in &ERROR_LEVELS {
        let mut row = vec![format!("{level}")];
        row.extend(traces.iter().map(|t| format_crossing(t, level)));
        table.add_row(row);
    }

    let ordering_holds = match (
        traces[0].transmissions_to_reach(epsilon),
        traces[1].transmissions_to_reach(epsilon),
    ) {
        (Some(pw), Some(geo)) => geo < pw,
        _ => false,
    };

    ExperimentOutput {
        id: "E3".into(),
        title: format!("error-vs-transmissions trajectories on one G(n={n}, 1.5√(log n/n)) instance (east-west gradient field)"),
        table,
        summary: vec![
            format!(
                "geographic gossip beats pairwise gossip at the target error: {}",
                if ordering_holds { "yes (as the paper's §1.1 comparison predicts)" } else { "NO" }
            ),
            "the affine columns show long-range cost dominated by control/local traffic at small n;".into(),
            "their advantage is in the scaling exponent (experiment E4), not in absolute cost at laptop sizes.".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_rows() {
        let out = run(Scale::Smoke, 3);
        assert_eq!(out.table.len(), ERROR_LEVELS.len());
        // The pairwise-vs-geographic ordering is only expected to show at
        // realistic sizes (Quick/Full); at the smoke size (n = 128) the radius
        // is so large that the two baselines are close, so the smoke test only
        // checks that the harness produced a verdict either way.
        assert!(out.summary[0].contains("yes") || out.summary[0].contains("NO"));
    }
}
