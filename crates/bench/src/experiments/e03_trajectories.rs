//! E3 — Convergence trajectories: ℓ₂ error versus transmissions.
//!
//! The figure-shaped experiment: on one fixed network instance, run every
//! protocol and record the relative error as a function of the cumulative
//! transmission count. The table prints the series at a fixed grid of error
//! levels ("transmissions needed to first reach error ≤ x"), which is the
//! textual form of the usual error-vs-cost figure.

use super::{ExperimentOutput, Scale};
use crate::workload::{standard_network, Field};
use geogossip_analysis::Table;
use geogossip_core::prelude::*;
use geogossip_sim::{AsyncEngine, ConvergenceTrace, SeedStream, StopCondition};

/// Error levels reported in the table (the "x axis" of the figure).
pub const ERROR_LEVELS: [f64; 5] = [0.5, 0.2, 0.1, 0.05, 0.02];

fn format_crossing(trace: &ConvergenceTrace, level: f64) -> String {
    match trace.transmissions_to_reach(level) {
        Some(tx) => tx.to_string(),
        None => "—".into(),
    }
}

/// Runs experiment E3.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let n = match scale {
        Scale::Smoke => 128,
        Scale::Quick => 512,
        Scale::Full => 1024,
    };
    let epsilon = *ERROR_LEVELS.last().expect("levels are non-empty");
    let seeds = SeedStream::new(seed);
    let network = standard_network(n, &seeds, 3);
    let values = Field::SpatialGradient.values(&network, &mut seeds.trial("values", 3));
    let stop = StopCondition::at_epsilon(epsilon).with_max_ticks(100_000_000);

    let mut pairwise = PairwiseGossip::new(&network, values.clone()).expect("valid instance");
    let pairwise_trace = AsyncEngine::new(n)
        .run(&mut pairwise, stop, &mut seeds.stream("e3-pairwise"))
        .trace;

    let mut geographic = GeographicGossip::new(&network, values.clone()).expect("valid instance");
    let geographic_trace = AsyncEngine::new(n)
        .run(&mut geographic, stop, &mut seeds.stream("e3-geographic"))
        .trace;

    let mut affine =
        RoundBasedAffineGossip::new(&network, values.clone(), RoundBasedConfig::idealized(n))
            .expect("valid instance");
    let affine_trace = affine
        .run_until(epsilon, &mut seeds.stream("e3-affine"))
        .trace;

    let mut recursive =
        RoundBasedAffineGossip::new(&network, values, RoundBasedConfig::practical(n))
            .expect("valid instance");
    let recursive_trace = recursive
        .run_until(epsilon, &mut seeds.stream("e3-recursive"))
        .trace;

    let mut table = Table::new(vec![
        "error level",
        "pairwise (Boyd) tx",
        "geographic (Dimakis) tx",
        "affine idealized tx",
        "affine recursive tx",
    ]);
    for &level in &ERROR_LEVELS {
        table.add_row(vec![
            format!("{level}"),
            format_crossing(&pairwise_trace, level),
            format_crossing(&geographic_trace, level),
            format_crossing(&affine_trace, level),
            format_crossing(&recursive_trace, level),
        ]);
    }

    let ordering_holds = match (
        pairwise_trace.transmissions_to_reach(epsilon),
        geographic_trace.transmissions_to_reach(epsilon),
    ) {
        (Some(pw), Some(geo)) => geo < pw,
        _ => false,
    };

    ExperimentOutput {
        id: "E3".into(),
        title: format!("error-vs-transmissions trajectories on one G(n={n}, 1.5√(log n/n)) instance (east-west gradient field)"),
        table,
        summary: vec![
            format!(
                "geographic gossip beats pairwise gossip at the target error: {}",
                if ordering_holds { "yes (as the paper's §1.1 comparison predicts)" } else { "NO" }
            ),
            "the affine columns show long-range cost dominated by control/local traffic at small n;".into(),
            "their advantage is in the scaling exponent (experiment E4), not in absolute cost at laptop sizes.".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_rows() {
        let out = run(Scale::Smoke, 3);
        assert_eq!(out.table.len(), ERROR_LEVELS.len());
        // The pairwise-vs-geographic ordering is only expected to show at
        // realistic sizes (Quick/Full); at the smoke size (n = 128) the radius
        // is so large that the two baselines are close, so the smoke test only
        // checks that the harness produced a verdict either way.
        assert!(out.summary[0].contains("yes") || out.summary[0].contains("NO"));
    }
}
