//! E2 — Lemma 2: robustness of the affine dynamics to bounded perturbations.
//!
//! The paper bounds `‖y(t)‖` for the perturbed dynamics by
//! `n^{a/2}((1−1/2n)^{t/2}‖y(0)‖ + 8√2·n^{3/2}·ε)` with probability `1 − 5/n^a`.
//! The experiment runs the perturbed model across sizes and perturbation
//! magnitudes and reports the observed `‖y(t)‖` against the envelope (with
//! `a = 1`), plus the fraction of trials that stayed inside it.
//!
//! Each `(n, ε)` cell is one [`ScenarioSpec`] over the
//! `perturbed-affine-complete` registry protocol; the final norm and the
//! Lemma-2 envelope come back through the protocol's
//! [`metrics`](geogossip_sim::Activation::metrics).

use super::{ExperimentOutput, Scale};
use crate::workload::runner;
use geogossip_analysis::Table;
use geogossip_sim::field::{Field, InitialCondition};
use geogossip_sim::scenario::{RadiusSpec, ScenarioSpec};

/// Runs experiment E2.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let (sizes, magnitudes, trials, ticks_factor): (&[usize], &[f64], u64, u64) = match scale {
        Scale::Smoke => (&[32], &[1e-4], 5, 50),
        Scale::Quick => (&[32, 64, 128], &[1e-6, 1e-4, 1e-3], 20, 200),
        Scale::Full => (&[32, 64, 128, 256, 512], &[1e-6, 1e-5, 1e-4, 1e-3], 50, 400),
    };
    let runner = runner();
    let mut table = Table::new(vec![
        "n",
        "perturbation ε",
        "mean ‖y(t)‖",
        "max ‖y(t)‖",
        "Lemma 2 envelope (a=1)",
        "fraction inside envelope",
    ]);
    let mut worst_fraction: f64 = 1.0;

    for &n in sizes {
        for &eps in magnitudes {
            let mut spec =
                ScenarioSpec::standard("perturbed-affine-complete", n, f64::MIN_POSITIVE)
                    .with_field(Field::Condition(InitialCondition::Ramp))
                    .with_trials(trials)
                    .with_seed(seed);
            spec.name = format!("e2-lemma2-n{n}-eps{eps:e}");
            // The model ignores adjacency; keep the placeholder graph cheap.
            spec.topology.radius = RadiusSpec::Absolute(0.05);
            spec.stop = spec.stop.with_max_ticks(ticks_factor * n as u64);
            spec.protocol = spec
                .protocol
                .with_number("alpha", 0.45)
                .with_number("magnitude", eps)
                .with_text("kind", "uniform-symmetric");
            let report = runner.run(&spec).expect("lemma-2 spec is valid");

            let mut inside = 0u64;
            let mut sum_norm = 0.0;
            let mut max_norm: f64 = 0.0;
            let mut envelope = 0.0;
            for trial in &report.trials {
                let norm = trial.metric("norm").expect("model reports its norm");
                envelope = trial
                    .metric("lemma2_envelope_a1")
                    .expect("model reports its envelope");
                sum_norm += norm;
                max_norm = max_norm.max(norm);
                if norm <= envelope {
                    inside += 1;
                }
            }
            let fraction = inside as f64 / trials as f64;
            worst_fraction = worst_fraction.min(fraction);
            table.add_row(vec![
                n.to_string(),
                format!("{eps:.0e}"),
                format!("{:.3e}", sum_norm / trials as f64),
                format!("{max_norm:.3e}"),
                format!("{envelope:.3e}"),
                format!("{fraction:.2}"),
            ]);
        }
    }

    // Lemma 2 promises probability ≥ 1 − 5/n; for the smallest n in the sweep
    // that is a weak promise, so the observed fractions should comfortably
    // exceed it.
    let weakest_promise = 1.0 - 5.0 / sizes[0] as f64;
    ExperimentOutput {
        id: "E2".into(),
        title: "Lemma 2 perturbation envelope for the affine dynamics".into(),
        table,
        summary: vec![
            format!(
                "worst observed inside-envelope fraction: {worst_fraction:.2} (Lemma 2 promises ≥ {:.2} for the smallest n)",
                weakest_promise.max(0.0)
            ),
            format!(
                "verdict: {}",
                if worst_fraction >= weakest_promise.max(0.0) { "bound holds" } else { "BOUND VIOLATED" }
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_stays_inside_envelope() {
        let out = run(Scale::Smoke, 2);
        assert_eq!(out.table.len(), 1);
        assert!(out.summary[1].contains("bound holds"));
    }
}
