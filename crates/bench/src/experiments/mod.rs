//! One module per experiment of EXPERIMENTS.md.
//!
//! Every experiment is a pure function from a [`Scale`] and a master seed to
//! an [`ExperimentOutput`]; the binaries in `src/bin/` only parse arguments,
//! call the function, and print the result.

use geogossip_analysis::Table;
use serde::{Deserialize, Serialize};

pub mod e01_lemma1;
pub mod e02_lemma2;
pub mod e03_trajectories;
pub mod e04_scaling;
pub mod e05_routing;
pub mod e06_connectivity;
pub mod e07_occupancy;
pub mod e08_coefficient;
pub mod e09_uniformity;
pub mod e10_hierarchy;

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds — used by the test-suite.
    Smoke,
    /// A few minutes — the default for the binaries.
    Quick,
    /// The sizes quoted in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parses a scale from a command-line argument (`smoke`/`quick`/`full`);
    /// unknown strings fall back to `Quick`.
    pub fn from_arg(arg: Option<&str>) -> Self {
        match arg {
            Some("smoke") => Scale::Smoke,
            Some("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }
}

/// The result of one experiment: the table to print plus free-form summary
/// lines (fitted exponents, pass/fail verdicts, caveats).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutput {
    /// Experiment identifier, e.g. `"E4"`.
    pub id: String,
    /// One-line title.
    pub title: String,
    /// The main result table.
    pub table: Table,
    /// Additional summary lines printed after the table.
    pub summary: Vec<String>,
}

impl ExperimentOutput {
    /// Renders the output for a terminal: title, Markdown table, summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {}: {} ==\n\n{}",
            self.id,
            self.title,
            self.table.to_markdown()
        );
        for line in &self.summary {
            out.push('\n');
            out.push_str(line);
        }
        out.push('\n');
        out
    }
}

/// Standard seed used by the binaries so EXPERIMENTS.md numbers are
/// regenerable verbatim.
pub const DEFAULT_SEED: u64 = 20070612;
