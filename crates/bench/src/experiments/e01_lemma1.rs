//! E1 — Lemma 1: per-tick contraction of `E‖x(t)‖²` on the complete graph.
//!
//! The paper proves `E‖x(t)‖² < (1 − 1/2n)^t‖x(0)‖²` for the asymmetric affine
//! update with coefficients in `(1/3, 1/2)`. The experiment measures the
//! empirical per-tick contraction factor of the mean squared norm over many
//! trials and compares it against the bound `1 − 1/2n` (and against the
//! sharper constant `1 − 8/(9(n−1))` that appears inside the proof).

use super::{ExperimentOutput, Scale};
use geogossip_analysis::{Summary, Table};
use geogossip_core::convergence::contraction_rate;
use geogossip_core::model::AffineCompleteGraph;
use geogossip_sim::SeedStream;

/// Runs experiment E1.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let (sizes, trials, ticks_per_n): (&[usize], usize, u64) = match scale {
        Scale::Smoke => (&[16, 32], 10, 400),
        Scale::Quick => (&[16, 32, 64, 128, 256], 40, 4_000),
        Scale::Full => (&[16, 32, 64, 128, 256, 512, 1024], 100, 20_000),
    };
    let seeds = SeedStream::new(seed);
    let mut table = Table::new(vec![
        "n",
        "measured contraction (per tick)",
        "Lemma 1 bound (1 - 1/2n)",
        "proof constant (1 - 8/9(n-1))",
        "bound satisfied",
    ]);
    let mut all_ok = true;

    for &n in sizes {
        let ticks = ticks_per_n.min(40 * n as u64);
        let mut rates = Summary::new();
        for trial in 0..trials {
            let mut rng = seeds.trial(&format!("e1-n{n}"), trial as u64);
            let mut model = AffineCompleteGraph::with_random_alphas(n, &mut rng)
                .expect("n >= 16 is a valid model size");
            model
                .set_centered_values((0..n).map(|i| i as f64).collect())
                .expect("length matches");
            // Record the squared norm once per n ticks (one per unit time) so
            // the geometric-mean rate estimate has stable increments.
            let mut norms = vec![model.squared_norm()];
            let checkpoints = (ticks / n as u64).max(4);
            for _ in 0..checkpoints {
                model.run(n as u64, &mut rng);
                norms.push(model.squared_norm());
            }
            if let Some(rate_per_checkpoint) = contraction_rate(&norms) {
                // Convert the per-checkpoint (n ticks) factor to per-tick.
                rates.push(rate_per_checkpoint.powf(1.0 / n as f64));
            }
        }
        let measured = rates.mean();
        let lemma_bound = 1.0 - 1.0 / (2.0 * n as f64);
        let proof_constant = 1.0 - 8.0 / (9.0 * (n as f64 - 1.0));
        let ok = measured <= lemma_bound + 1e-3;
        all_ok &= ok;
        table.add_row(vec![
            n.to_string(),
            format!("{measured:.6}"),
            format!("{lemma_bound:.6}"),
            format!("{proof_constant:.6}"),
            ok.to_string(),
        ]);
    }

    ExperimentOutput {
        id: "E1".into(),
        title: "Lemma 1 contraction of E‖x‖² under affine gossip on K_n".into(),
        table,
        summary: vec![
            format!(
                "verdict: measured contraction {} the Lemma-1 bound at every size",
                if all_ok { "satisfies" } else { "VIOLATES" }
            ),
            "(the measured rate should sit between the proof constant and the stated bound)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_satisfies_the_bound() {
        let out = run(Scale::Smoke, 1);
        assert_eq!(out.table.len(), 2);
        assert!(out.summary[0].contains("satisfies"));
    }
}
