//! E1 — Lemma 1: per-tick contraction of `E‖x(t)‖²` on the complete graph.
//!
//! The paper proves `E‖x(t)‖² < (1 − 1/2n)^t‖x(0)‖²` for the asymmetric affine
//! update with coefficients in `(1/3, 1/2)`. The experiment measures the
//! empirical per-tick contraction factor of the mean squared norm over many
//! trials and compares it against the bound `1 − 1/2n` (and against the
//! sharper constant `1 − 8/(9(n−1))` that appears inside the proof).
//!
//! The dynamics run through the scenario API as the `affine-complete`
//! registry protocol (a self-paced [`Activation`]
//! (geogossip_sim::Activation)): the engine's trace samples the relative norm
//! once per `n` ticks, which is exactly the checkpoint series the
//! geometric-mean rate estimate needs. The geometric graph of the spec is a
//! placement-only stand-in (tiny absolute radius) — the complete-graph model
//! ignores adjacency.

use super::{ExperimentOutput, Scale};
use crate::workload::runner;
use geogossip_analysis::{Summary, Table};
use geogossip_core::convergence::contraction_rate;
use geogossip_sim::field::{Field, InitialCondition};
use geogossip_sim::scenario::{RadiusSpec, ScenarioSpec};
use geogossip_sim::ConvergenceTrace;

/// A spec that runs the Lemma-1 dynamics for a fixed number of ticks.
fn lemma1_spec(n: usize, max_ticks: u64, trials: u64, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::standard("affine-complete", n, f64::MIN_POSITIVE)
        .with_field(Field::Condition(InitialCondition::Ramp))
        .with_trials(trials)
        .with_seed(seed);
    spec.name = format!("e1-lemma1-n{n}");
    // The model ignores adjacency; a tiny absolute radius keeps the
    // placeholder graph build O(n).
    spec.topology.radius = RadiusSpec::Absolute(0.05);
    spec.stop = spec.stop.with_max_ticks(max_ticks);
    spec
}

/// Per-checkpoint squared-norm series from the engine trace (one sample per
/// `n` ticks; the duplicated final point is dropped).
fn squared_norm_series(trace: &ConvergenceTrace) -> Vec<f64> {
    let mut series = Vec::new();
    let mut last_tick = u64::MAX;
    for point in trace.points() {
        if point.ticks == last_tick {
            continue;
        }
        last_tick = point.ticks;
        series.push(point.relative_error * point.relative_error);
    }
    series
}

/// Runs experiment E1.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let (sizes, trials, ticks_per_n): (&[usize], u64, u64) = match scale {
        Scale::Smoke => (&[16, 32], 10, 400),
        Scale::Quick => (&[16, 32, 64, 128, 256], 40, 4_000),
        Scale::Full => (&[16, 32, 64, 128, 256, 512, 1024], 100, 20_000),
    };
    let runner = runner();
    let mut table = Table::new(vec![
        "n",
        "measured contraction (per tick)",
        "Lemma 1 bound (1 - 1/2n)",
        "proof constant (1 - 8/9(n-1))",
        "bound satisfied",
    ]);
    let mut all_ok = true;

    for &n in sizes {
        let ticks = ticks_per_n.min(40 * n as u64);
        let checkpoints = (ticks / n as u64).max(4);
        let spec = lemma1_spec(n, checkpoints * n as u64, trials, seed);
        let report = runner.run(&spec).expect("lemma-1 spec is valid");
        let mut rates = Summary::new();
        for trial in &report.trials {
            let norms = squared_norm_series(&trial.trace);
            if let Some(rate_per_checkpoint) = contraction_rate(&norms) {
                // Convert the per-checkpoint (n ticks) factor to per-tick.
                rates.push(rate_per_checkpoint.powf(1.0 / n as f64));
            }
        }
        let measured = rates.mean();
        let lemma_bound = 1.0 - 1.0 / (2.0 * n as f64);
        let proof_constant = 1.0 - 8.0 / (9.0 * (n as f64 - 1.0));
        let ok = measured <= lemma_bound + 1e-3;
        all_ok &= ok;
        table.add_row(vec![
            n.to_string(),
            format!("{measured:.6}"),
            format!("{lemma_bound:.6}"),
            format!("{proof_constant:.6}"),
            ok.to_string(),
        ]);
    }

    ExperimentOutput {
        id: "E1".into(),
        title: "Lemma 1 contraction of E‖x‖² under affine gossip on K_n".into(),
        table,
        summary: vec![
            format!(
                "verdict: measured contraction {} the Lemma-1 bound at every size",
                if all_ok { "satisfies" } else { "VIOLATES" }
            ),
            "(the measured rate should sit between the proof constant and the stated bound)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_satisfies_the_bound() {
        let out = run(Scale::Smoke, 1);
        assert_eq!(out.table.len(), 2);
        assert!(out.summary[0].contains("satisfies"));
    }
}
