//! E5 — Greedy geographic routing costs `O(√(n/log n))` hops.
//!
//! Both the Dimakis baseline and the paper charge `O(√n)` transmissions per
//! long-range exchange, resting on the fact that greedy geographic routing on
//! `G(n, r)` at the connectivity radius delivers in `O(√(n/log n))` hops
//! w.h.p. The experiment measures hop counts over many random source/target
//! pairs per size, fits the growth exponent of the mean hop count, and
//! reports the delivery failure rate.

use super::{ExperimentOutput, Scale};
use crate::workload::standard_network;
use geogossip_analysis::{fit_power_law, Summary, Table};
use geogossip_geometry::point::NodeId;
use geogossip_routing::greedy::route_to_node;
use geogossip_sim::SeedStream;
use rand::Rng;

/// Runs experiment E5.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let (sizes, pairs): (&[usize], usize) = match scale {
        Scale::Smoke => (&[128, 256], 50),
        Scale::Quick => (&[256, 512, 1024, 2048], 300),
        Scale::Full => (&[256, 512, 1024, 2048, 4096, 8192], 500),
    };
    let seeds = SeedStream::new(seed);
    let mut table = Table::new(vec![
        "n",
        "mean hops",
        "p95 hops",
        "max hops",
        "sqrt(n/log n)",
        "delivery rate",
    ]);
    let mut mean_hops = Vec::new();

    for &n in sizes {
        let network = standard_network(n, &seeds, 5);
        let mut rng = seeds.trial("e5-pairs", n as u64);
        let mut hops = Vec::with_capacity(pairs);
        let mut delivered = 0usize;
        for _ in 0..pairs {
            let src = NodeId(rng.gen_range(0..n));
            let dst = NodeId(rng.gen_range(0..n));
            let outcome = route_to_node(&network, src, dst);
            hops.push(outcome.hops as f64);
            if outcome.delivered {
                delivered += 1;
            }
        }
        let summary: Summary = hops.iter().copied().collect();
        let p95 = geogossip_analysis::stats::quantile(&hops, 0.95).unwrap_or(0.0);
        let reference = (n as f64 / (n as f64).ln()).sqrt();
        mean_hops.push(summary.mean());
        table.add_row(vec![
            n.to_string(),
            format!("{:.1}", summary.mean()),
            format!("{p95:.1}"),
            format!("{:.0}", summary.max()),
            format!("{reference:.1}"),
            format!("{:.3}", delivered as f64 / pairs as f64),
        ]);
    }

    let xs: Vec<f64> = sizes.iter().map(|&n| n as f64).collect();
    let mut summary = Vec::new();
    if let Some(fit) = fit_power_law(&xs, &mean_hops) {
        summary.push(format!(
            "mean hop count grows as n^{:.2} (paper/[5] predict exponent 0.5 up to the log factor)",
            fit.exponent
        ));
        summary.push(format!(
            "verdict: {}",
            if (0.3..=0.65).contains(&fit.exponent) {
                "consistent with O(√(n/log n))"
            } else {
                "INCONSISTENT"
            }
        ));
    }

    ExperimentOutput {
        id: "E5".into(),
        title: "greedy geographic routing hop counts on G(n, 1.5·√(log n/n))".into(),
        table,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_measures_hops() {
        let out = run(Scale::Smoke, 5);
        assert_eq!(out.table.len(), 2);
        assert!(out.summary.iter().any(|s| s.contains("hop count")));
    }
}
