//! E9 — Uniformity of the geographically-addressed partner distribution.
//!
//! Geographic gossip contacts "the node nearest a uniformly random position",
//! whose law is proportional to Voronoi-cell areas; rejection sampling is used
//! in [5] (and inherited by the paper) to make it roughly uniform over nodes.
//! The experiment draws many partners under three selectors — uniform by
//! index (the ideal), nearest-to-position (no correction), and
//! rejection-sampled — and reports two skew statistics.

use super::{ExperimentOutput, Scale};
use crate::workload::standard_network;
use geogossip_analysis::Table;
use geogossip_geometry::point::NodeId;
use geogossip_routing::target::{TargetSelector, TargetStats};
use geogossip_sim::SeedStream;

/// Runs experiment E9.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let (n, draws, probes): (usize, usize, usize) = match scale {
        Scale::Smoke => (256, 5_000, 20_000),
        Scale::Quick => (1024, 50_000, 200_000),
        Scale::Full => (2048, 100_000, 500_000),
    };
    let seeds = SeedStream::new(seed);
    let network = standard_network(n, &seeds, 9);
    let caller = NodeId(0);
    let mut rng = seeds.stream("e9");

    let selectors = vec![
        ("uniform by index (ideal)", TargetSelector::UniformByIndex),
        (
            "nearest to uniform position",
            TargetSelector::NearestToUniformPosition,
        ),
        (
            "rejection sampled (as in [5])",
            TargetSelector::rejection_sampled(&network, probes, 20, &mut rng),
        ),
    ];

    let mut table = Table::new(vec![
        "partner selector",
        "draws",
        "max frequency / uniform",
        "normalized χ² dispersion",
    ]);
    let mut dispersions = Vec::new();
    for (name, selector) in &selectors {
        let stats = TargetStats::collect(&network, selector, caller, draws, &mut rng);
        let chi = stats.normalized_chi_square(caller);
        dispersions.push(chi);
        table.add_row(vec![
            (*name).into(),
            stats.total.to_string(),
            format!("{:.2}", stats.max_over_uniform(caller)),
            format!("{chi:.2}"),
        ]);
    }

    let improvement = dispersions[1] / dispersions[2].max(1e-9);
    ExperimentOutput {
        id: "E9".into(),
        title: format!("partner-distribution uniformity on n = {n} (single caller, {draws} draws)"),
        table,
        summary: vec![
            format!(
                "rejection sampling reduces the χ² dispersion of the raw geographic selector by {improvement:.1}× (1.0 ≈ perfectly uniform)"
            ),
            "verdict: geographic addressing alone is mildly non-uniform; rejection sampling flattens it as [5] claims".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_orders_selectors_sensibly() {
        let out = run(Scale::Smoke, 9);
        assert_eq!(out.table.len(), 3);
        let ideal: f64 = out.table.rows()[0][3].parse().unwrap();
        let raw: f64 = out.table.rows()[1][3].parse().unwrap();
        // The ideal selector is at least as uniform as raw geographic
        // addressing.
        assert!(ideal <= raw + 0.5);
    }
}
