//! E10 — Shape of the hierarchical partition.
//!
//! Section 4.1 claims the recursion depth is `ℓ ~ log log n` and that w.h.p.
//! each sensor is the leader of at most one square (cell centers are well
//! separated). The experiment builds the practical-threshold hierarchy across
//! sizes and reports depth, cell counts, leaf populations and leader
//! conflicts; it also reports the paper-faithful `(log n)^8` threshold, which
//! never splits at laptop sizes (the substitution documented in DESIGN.md).

use super::{ExperimentOutput, Scale};
use geogossip_analysis::Table;
use geogossip_geometry::{PartitionConfig, SquarePartition};
use geogossip_sim::scenario::PlacementSpec;
use geogossip_sim::SeedStream;

/// Runs experiment E10.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let sizes: &[usize] = match scale {
        Scale::Smoke => &[256, 1024],
        Scale::Quick => &[256, 1024, 4096, 16384, 65536],
        Scale::Full => &[256, 1024, 4096, 16384, 65536, 262144],
    };
    let seeds = SeedStream::new(seed);
    let mut table = Table::new(vec![
        "n",
        "levels ℓ (practical threshold)",
        "log₂ log₂ n",
        "total cells",
        "leaf cells",
        "mean leaf population",
        "leader conflicts",
        "levels with paper's (log n)^8 threshold",
    ]);
    let mut conflicts_total = 0usize;

    for &n in sizes {
        let points = PlacementSpec::UniformSquare.sample(n, &mut seeds.trial("e10", n as u64));
        let practical = SquarePartition::build(&points, PartitionConfig::practical(n));
        let faithful = SquarePartition::build(&points, PartitionConfig::paper_faithful(n));
        let leaf_count = practical.leaves().count();
        let mean_leaf: f64 = practical
            .leaves()
            .map(|c| c.members().len() as f64)
            .sum::<f64>()
            / leaf_count.max(1) as f64;
        let conflicts = practical.leader_conflicts();
        conflicts_total += conflicts;
        let loglog = (n as f64).log2().log2();
        table.add_row(vec![
            n.to_string(),
            practical.levels().to_string(),
            format!("{loglog:.1}"),
            practical.num_cells().to_string(),
            leaf_count.to_string(),
            format!("{mean_leaf:.1}"),
            conflicts.to_string(),
            faithful.levels().to_string(),
        ]);
    }

    ExperimentOutput {
        id: "E10".into(),
        title: "hierarchy depth, leaf sizes and leader separation".into(),
        table,
        summary: vec![
            format!(
                "total leader conflicts across all sizes: {conflicts_total} (paper: zero w.h.p.)"
            ),
            "the practical threshold yields Θ(log log n)-growth depth; the paper's literal (log n)^8 threshold never splits at these sizes — see DESIGN.md substitution 2".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reports_depths() {
        let out = run(Scale::Smoke, 10);
        assert_eq!(out.table.len(), 2);
        let levels_small: usize = out.table.rows()[0][1].parse().unwrap();
        let levels_large: usize = out.table.rows()[1][1].parse().unwrap();
        assert!(levels_large >= levels_small);
        // The paper-faithful threshold never splits at these sizes.
        let faithful: usize = out.table.rows()[0][7].parse().unwrap();
        assert_eq!(faithful, 1);
    }
}
