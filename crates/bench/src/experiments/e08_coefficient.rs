//! E8 — Ablation: the non-convex coefficient is what buys the speed-up.
//!
//! The paper's "counter-intuitive" ingredient (Section 1.2) is the affine
//! coefficient `2√n/5` in leader exchanges. The ablation sweeps the
//! coefficient from the convex `1/2` up to the paper's value (as a fraction of
//! the cell's expected population) and measures the number of top-level rounds
//! needed to reach the accuracy target — with convex exchanges each contact
//! moves only an `O(1/√n)` fraction of a cell's mass, so the round count
//! inflates by a factor `Θ(√n)`.
//!
//! The sweep is pure data: every rung is the same `affine-idealized` registry
//! protocol with a different `coefficient-fraction` / `coefficient-fixed`
//! parameter in its [`ScenarioSpec`].

use super::{ExperimentOutput, Scale};
use crate::workload::{runner, standard_spec};
use geogossip_analysis::Table;
use geogossip_sim::field::{Field, InitialCondition};
use geogossip_sim::scenario::ScenarioSpec;

/// Runs experiment E8.
pub fn run(scale: Scale, seed: u64) -> ExperimentOutput {
    let (n, epsilon, fractions): (usize, f64, &[f64]) = match scale {
        Scale::Smoke => (256, 0.1, &[0.4, 0.0]),
        Scale::Quick => (1024, 0.05, &[0.4, 0.2, 0.1, 0.05, 0.0]),
        Scale::Full => (1024, 0.02, &[0.4, 0.3, 0.2, 0.1, 0.05, 0.02, 0.0]),
    };
    // fraction == 0.0 encodes the convex baseline α = 1/2. All specs share
    // the seed and topology, so every rung runs on the same instance.
    let specs: Vec<ScenarioSpec> = fractions
        .iter()
        .map(|&fraction| {
            let mut spec = standard_spec("affine-idealized", n, epsilon, seed)
                .with_field(Field::Condition(InitialCondition::Spike));
            spec.name = format!("e8-fraction-{fraction}");
            spec.protocol = spec.protocol.with_number("max-top-rounds", 200_000.0);
            spec.protocol = if fraction == 0.0 {
                spec.protocol.with_number("coefficient-fixed", 0.5)
            } else {
                spec.protocol.with_number("coefficient-fraction", fraction)
            };
            spec
        })
        .collect();
    let reports = runner().run_all(&specs).expect("ablation specs are valid");

    let mut table = Table::new(vec![
        "coefficient rule",
        "effective α at the top level",
        "converged",
        "top-level rounds",
        "long-range exchanges",
        "transmissions",
    ]);
    let mut paper_rounds = None;
    let mut convex_rounds = None;

    for (&fraction, report) in fractions.iter().zip(&reports) {
        let trial = &report.trials[0];
        if fraction == 0.4 {
            paper_rounds = Some(trial.rounds);
        }
        if fraction == 0.0 {
            convex_rounds = Some(trial.rounds);
        }
        let label = if fraction == 0.0 {
            "convex α = 1/2 (prior work)".to_string()
        } else if (fraction - 0.4).abs() < 1e-12 {
            "α = (2/5)·#(□) (this paper)".to_string()
        } else {
            format!("α = {fraction}·#(□)")
        };
        table.add_row(vec![
            label,
            format!("{:.1}", trial.metric("effective_alpha_top").unwrap_or(0.0)),
            trial.converged.to_string(),
            trial.rounds.to_string(),
            format!("{:.0}", trial.metric("long_range_exchanges").unwrap_or(0.0)),
            trial.transmissions.total().to_string(),
        ]);
    }

    let mut summary = Vec::new();
    if let (Some(paper), Some(convex)) = (paper_rounds, convex_rounds) {
        let ratio = convex as f64 / paper.max(1) as f64;
        // With convex exchanges a contact moves a 1/(2·E#) fraction of a
        // cell's mass instead of 2/5, so the round count inflates by about
        // (2/5)/(1/(2·E#)) = 0.8·E# ≈ 0.8·√n.
        let predicted_inflation = 0.8 * (n as f64).sqrt();
        summary.push(format!(
            "convex exchanges need {ratio:.1}× more top-level rounds than the paper's coefficient (theory predicts ≈ {predicted_inflation:.0}×)",
        ));
        summary.push(format!(
            "verdict: the non-convex coefficient is load-bearing ({}).",
            if ratio > 3.0 {
                "ablating it collapses the speed-up"
            } else {
                "EFFECT NOT VISIBLE at this size"
            }
        ));
    }

    ExperimentOutput {
        id: "E8".into(),
        title: format!("affine-coefficient ablation on n = {n} (idealized local averaging)"),
        table,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shows_convex_penalty() {
        let out = run(Scale::Smoke, 8);
        assert_eq!(out.table.len(), 2);
        let paper_rounds: u64 = out.table.rows()[0][3].parse().unwrap();
        let convex_rounds: u64 = out.table.rows()[1][3].parse().unwrap();
        assert!(
            convex_rounds > paper_rounds,
            "{convex_rounds} vs {paper_rounds}"
        );
    }
}
