//! Shared workload generation for the experiments.
//!
//! All experiments build their instances through these helpers so that the
//! network model (uniform placement, standard connectivity radius `c = 2`) and
//! the seeding scheme are identical across experiments and across the
//! protocols being compared.

use geogossip_core::prelude::*;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_graph::GeometricGraph;
use geogossip_sim::{AsyncEngine, EngineReport, SeedStream, StopCondition};
use rayon::prelude::*;

/// Radius constant used by every experiment unless it sweeps the constant
/// itself (experiment E6). Chosen just above the Gupta–Kumar connectivity
/// threshold, as in the paper's `r = Θ(√(log n/n))` regime: a larger constant
/// makes the graph needlessly dense and blurs the local-vs-long-range
/// distinction the comparison is about.
pub const RADIUS_CONSTANT: f64 = 1.5;

/// The initial measurement field a comparison experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// One of the position-independent [`InitialCondition`]s.
    Condition(InitialCondition),
    /// A spatially correlated field: every sensor measures its own
    /// x-coordinate (an east–west gradient). Averaging this field requires
    /// moving mass across the whole unit square, which is the regime where
    /// the paper's long-range protocols pay off; position-independent fields
    /// can be averaged mostly locally and understate the gap.
    SpatialGradient,
}

impl Field {
    /// Materialises the field for a concrete network.
    pub fn values<R: rand::Rng + ?Sized>(self, network: &GeometricGraph, rng: &mut R) -> Vec<f64> {
        match self {
            Field::Condition(condition) => condition.generate(network.len(), rng),
            Field::SpatialGradient => network.positions().iter().map(|p| p.x).collect(),
        }
    }
}

/// Builds the standard experiment network: `n` uniform sensors at radius
/// `2·sqrt(log n / n)`, from the given seed stream.
pub fn standard_network(n: usize, seeds: &SeedStream, trial: u64) -> GeometricGraph {
    let positions = sample_unit_square(n, &mut seeds.trial("placement", trial));
    GeometricGraph::build_at_connectivity_radius(positions, RADIUS_CONSTANT)
}

/// Builds the standard initial measurement vector for a network of `n`
/// sensors.
pub fn standard_values(
    n: usize,
    condition: InitialCondition,
    seeds: &SeedStream,
    trial: u64,
) -> Vec<f64> {
    condition.generate(n, &mut seeds.trial("values", trial))
}

/// Which protocol a comparison experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Boyd et al. pairwise nearest-neighbor gossip.
    Pairwise,
    /// Dimakis et al. geographic gossip.
    Geographic,
    /// This paper, round-based with idealised (flood) local averaging.
    AffineIdealized,
    /// This paper, round-based with recursive gossip local averaging.
    AffineRecursive,
}

impl ProtocolKind {
    /// Human-readable name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Pairwise => "pairwise (Boyd)",
            ProtocolKind::Geographic => "geographic (Dimakis)",
            ProtocolKind::AffineIdealized => "affine (idealized local avg)",
            ProtocolKind::AffineRecursive => "affine (recursive local avg)",
        }
    }

    /// All protocols compared in E3/E4.
    pub fn all() -> [ProtocolKind; 4] {
        [
            ProtocolKind::Pairwise,
            ProtocolKind::Geographic,
            ProtocolKind::AffineIdealized,
            ProtocolKind::AffineRecursive,
        ]
    }
}

/// The cost outcome of one protocol run, reduced to the quantities the
/// experiment tables report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunCost {
    /// Whether the accuracy target was reached.
    pub converged: bool,
    /// Total one-hop transmissions used.
    pub transmissions: u64,
    /// "Rounds": clock ticks for tick-driven protocols, top-level rounds for
    /// the round-based protocol.
    pub rounds: u64,
    /// Final relative ℓ₂ error.
    pub final_error: f64,
}

impl RunCost {
    fn from_engine_report(report: &EngineReport) -> Self {
        RunCost {
            converged: report.converged(),
            transmissions: report.transmissions.total(),
            rounds: report.ticks,
            final_error: report.final_error,
        }
    }
}

/// Runs `protocol` on a standard instance of size `n` until the relative error
/// drops below `epsilon` (or a generous budget runs out) and returns the cost.
///
/// # Panics
///
/// Panics if the instance is degenerate (protocol constructors reject it);
/// the standard workload never is for `n ≥ 64`.
pub fn run_protocol(
    protocol: ProtocolKind,
    n: usize,
    epsilon: f64,
    field: Field,
    seeds: &SeedStream,
    trial: u64,
) -> RunCost {
    let network = standard_network(n, seeds, trial);
    let values = field.values(&network, &mut seeds.trial("values", trial));
    let mut rng = seeds.trial("run", trial ^ (protocol as u64) << 32);
    let stop = StopCondition::at_epsilon(epsilon).with_max_ticks(200_000_000);
    match protocol {
        ProtocolKind::Pairwise => {
            let mut p = PairwiseGossip::new(&network, values).expect("standard workload is valid");
            RunCost::from_engine_report(&AsyncEngine::new(n).run(&mut p, stop, &mut rng))
        }
        ProtocolKind::Geographic => {
            let mut p =
                GeographicGossip::new(&network, values).expect("standard workload is valid");
            RunCost::from_engine_report(&AsyncEngine::new(n).run(&mut p, stop, &mut rng))
        }
        ProtocolKind::AffineIdealized => {
            let mut p =
                RoundBasedAffineGossip::new(&network, values, RoundBasedConfig::idealized(n))
                    .expect("standard workload is valid");
            let report = p.run_until(epsilon, &mut rng);
            RunCost {
                converged: report.converged,
                transmissions: report.transmissions.total(),
                rounds: report.stats.top_rounds,
                final_error: report.final_error,
            }
        }
        ProtocolKind::AffineRecursive => {
            let mut p =
                RoundBasedAffineGossip::new(&network, values, RoundBasedConfig::practical(n))
                    .expect("standard workload is valid");
            let report = p.run_until(epsilon, &mut rng);
            RunCost {
                converged: report.converged,
                transmissions: report.transmissions.total(),
                rounds: report.stats.top_rounds,
                final_error: report.final_error,
            }
        }
    }
}

/// Runs `trials` independent trials of `protocol` at size `n` **in parallel**
/// across the machine's cores.
///
/// Results are **bit-identical** to running the trials sequentially with
/// [`run_protocol`]: every trial derives its own RNG streams from
/// `(seeds, trial index)` via [`SeedStream::trial`], so no randomness is
/// shared between trials and thread scheduling cannot influence any outcome.
/// The returned vector is ordered by trial index.
pub fn run_protocol_trials(
    protocol: ProtocolKind,
    n: usize,
    epsilon: f64,
    field: Field,
    seeds: &SeedStream,
    trials: u64,
) -> Vec<RunCost> {
    (0..trials)
        .into_par_iter()
        .map(|trial| run_protocol(protocol, n, epsilon, field, seeds, trial))
        .collect()
}

/// Runs the full `sizes × trials` grid for one protocol in parallel, returning
/// one `(n, per-trial costs)` entry per size in input order.
///
/// The flattened grid is **trial-major** (`(n₀,t₀), (n₁,t₀), …, (n₀,t₁), …`)
/// so that workers splitting the grid into contiguous chunks each receive a
/// mix of sizes — laying it out size-major would park every expensive
/// largest-`n` trial in the same trailing chunk and serialise them on one
/// core. Determinism is inherited from [`run_protocol_trials`]'s per-trial
/// seed derivation (results are reassembled by index, not completion order).
pub fn run_protocol_sweep(
    protocol: ProtocolKind,
    sizes: &[usize],
    epsilon: f64,
    field: Field,
    seeds: &SeedStream,
    trials: u64,
) -> Vec<(usize, Vec<RunCost>)> {
    let grid: Vec<(usize, u64)> = (0..trials)
        .flat_map(|t| sizes.iter().map(move |&n| (n, t)))
        .collect();
    let flat: Vec<RunCost> = grid
        .into_par_iter()
        .map(|(n, trial)| run_protocol(protocol, n, epsilon, field, seeds, trial))
        .collect();
    sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let costs = (0..trials as usize)
                .map(|t| flat[t * sizes.len() + i])
                .collect();
            (n, costs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_network_is_connected_and_reproducible() {
        let seeds = SeedStream::new(1);
        let a = standard_network(256, &seeds, 0);
        let b = standard_network(256, &seeds, 0);
        assert!(a.is_connected());
        assert_eq!(a.positions(), b.positions());
        let c = standard_network(256, &seeds, 1);
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn all_protocols_converge_on_a_small_instance() {
        let seeds = SeedStream::new(2);
        for protocol in ProtocolKind::all() {
            for field in [
                Field::Condition(InitialCondition::Spike),
                Field::SpatialGradient,
            ] {
                let cost = run_protocol(protocol, 128, 0.1, field, &seeds, 0);
                assert!(
                    cost.converged,
                    "{} did not converge on {field:?}",
                    protocol.name()
                );
                assert!(cost.transmissions > 0);
            }
        }
    }

    #[test]
    fn protocol_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            ProtocolKind::all().iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 4);
    }

    /// Byte-identical equality of two cost records, including the float bits
    /// of the final error.
    fn bit_identical(a: &RunCost, b: &RunCost) -> bool {
        a.converged == b.converged
            && a.transmissions == b.transmissions
            && a.rounds == b.rounds
            && a.final_error.to_bits() == b.final_error.to_bits()
    }

    #[test]
    fn parallel_trials_are_bit_identical_to_sequential() {
        let seeds = SeedStream::new(20070612);
        let trials = 6u64;
        for protocol in [
            ProtocolKind::Pairwise,
            ProtocolKind::Geographic,
            ProtocolKind::AffineIdealized,
        ] {
            let parallel =
                run_protocol_trials(protocol, 128, 0.1, Field::SpatialGradient, &seeds, trials);
            let sequential: Vec<RunCost> = (0..trials)
                .map(|t| run_protocol(protocol, 128, 0.1, Field::SpatialGradient, &seeds, t))
                .collect();
            assert_eq!(parallel.len(), sequential.len());
            for (t, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
                assert!(
                    bit_identical(p, s),
                    "{} trial {t}: parallel {p:?} != sequential {s:?}",
                    protocol.name()
                );
            }
        }
    }

    #[test]
    fn sweep_matches_per_size_trials() {
        let seeds = SeedStream::new(5);
        let sizes = [64usize, 128];
        let sweep = run_protocol_sweep(
            ProtocolKind::Pairwise,
            &sizes,
            0.1,
            Field::Condition(InitialCondition::Spike),
            &seeds,
            2,
        );
        assert_eq!(sweep.len(), 2);
        for (i, &n) in sizes.iter().enumerate() {
            assert_eq!(sweep[i].0, n);
            let direct = run_protocol_trials(
                ProtocolKind::Pairwise,
                n,
                0.1,
                Field::Condition(InitialCondition::Spike),
                &seeds,
                2,
            );
            for (a, b) in sweep[i].1.iter().zip(&direct) {
                assert!(bit_identical(a, b));
            }
        }
    }
}
