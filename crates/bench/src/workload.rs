//! Shared workload conventions for the experiments.
//!
//! All experiments build their instances through the scenario API
//! ([`geogossip_sim::scenario`]) so that the network model (uniform
//! placement, standard connectivity radius), the seeding scheme and the
//! execution path are identical across experiments and across the protocols
//! being compared. This module only pins the conventions: the standard
//! topology/spec constructors and the shared [`Runner`] entry point.
//!
//! The pre-redesign `ProtocolKind` enum and `run_protocol*` helpers are gone;
//! protocols are registry names (`"pairwise"`, `"geographic"`,
//! `"affine-idealized"`, `"affine-recursive"`, …) and a comparison is a list
//! of [`ScenarioSpec`]s handed to [`Runner::run_all`]. Scenario runs remain
//! **bit-identical** to the historical harness (`tests/scenario_api.rs` at
//! the workspace root pins this): same placement/values/run streams, same
//! engine, same costs.

use geogossip_core::registry::builtin_runner;
use geogossip_graph::GeometricGraph;
pub use geogossip_sim::field::Field;
pub use geogossip_sim::scenario::STANDARD_RADIUS_CONSTANT as RADIUS_CONSTANT;
use geogossip_sim::scenario::{Runner, ScenarioSpec, TopologySpec};
use geogossip_sim::SeedStream;

/// The shared runner over the built-in protocol registry.
pub fn runner() -> Runner {
    builtin_runner()
}

/// Builds the standard experiment network: `n` uniform sensors at radius
/// `1.5·sqrt(log n / n)`, from the given seed stream — byte-identical to what
/// a standard [`ScenarioSpec`] builds for the same `(seeds, trial)`.
pub fn standard_network(n: usize, seeds: &SeedStream, trial: u64) -> GeometricGraph {
    TopologySpec::standard(n).build(seeds, trial)
}

/// The standard comparison scenario at size `n` and accuracy `epsilon` for a
/// registry protocol, seeded with `seed`: uniform placement, standard radius,
/// east–west gradient field (the regime where long-range protocols pay off),
/// generous budgets.
pub fn standard_spec(protocol: &str, n: usize, epsilon: f64, seed: u64) -> ScenarioSpec {
    ScenarioSpec::standard(protocol, n, epsilon).with_seed(seed)
}

/// The four protocols of the paper's comparison, in presentation order
/// (used by E3/E4 and the determinism tests).
pub const COMPARISON_PROTOCOLS: [&str; 4] = [
    "pairwise",
    "geographic",
    "affine-idealized",
    "affine-recursive",
];

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_sim::field::InitialCondition;

    #[test]
    fn standard_network_is_connected_and_reproducible() {
        let seeds = SeedStream::new(1);
        let a = standard_network(256, &seeds, 0);
        let b = standard_network(256, &seeds, 0);
        assert!(a.is_connected());
        assert_eq!(a.positions(), b.positions());
        let c = standard_network(256, &seeds, 1);
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn all_comparison_protocols_converge_on_a_small_instance() {
        let runner = runner();
        for protocol in COMPARISON_PROTOCOLS {
            for field in [
                Field::Condition(InitialCondition::Spike),
                Field::SpatialGradient,
            ] {
                let spec = standard_spec(protocol, 128, 0.1, 2).with_field(field);
                let report = runner.run(&spec).expect("standard spec is valid");
                assert!(
                    report.all_converged(),
                    "{protocol} did not converge on {field}"
                );
                assert!(report.summary.mean_transmissions > 0.0);
            }
        }
    }

    #[test]
    fn protocol_labels_are_distinct() {
        let runner = runner();
        let labels: std::collections::HashSet<String> = COMPARISON_PROTOCOLS
            .iter()
            .map(|p| {
                runner
                    .run(&standard_spec(p, 128, 0.5, 3))
                    .expect("valid spec")
                    .protocol_label
            })
            .collect();
        assert_eq!(labels.len(), COMPARISON_PROTOCOLS.len());
    }

    #[test]
    fn run_all_matches_individual_runs_bit_for_bit() {
        let runner = runner();
        let specs: Vec<ScenarioSpec> = [64usize, 128]
            .iter()
            .map(|&n| standard_spec("pairwise", n, 0.1, 5).with_trials(2))
            .collect();
        let batch = runner.run_all(&specs).expect("valid specs");
        for (spec, batched) in specs.iter().zip(&batch) {
            let individual = runner.run(spec).expect("valid spec");
            assert_eq!(*batched, individual);
        }
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let runner = runner();
        for protocol in COMPARISON_PROTOCOLS {
            let spec = standard_spec(protocol, 128, 0.1, 20070612).with_trials(3);
            let a = runner.run(&spec).expect("valid spec");
            let b = runner.run(&spec).expect("valid spec");
            for (x, y) in a.trials.iter().zip(&b.trials) {
                assert_eq!(x.transmissions, y.transmissions);
                assert_eq!(x.rounds, y.rounds);
                assert_eq!(x.final_error.to_bits(), y.final_error.to_bits());
            }
        }
    }
}
