//! The seed's pre-optimization hot path, preserved verbatim for benchmarking.
//!
//! The perf acceptance criterion for the CSR/allocation-free overhaul is a
//! speedup **measured in the same tree**: this module re-implements the
//! geographic-gossip hot path exactly as the seed had it — `Vec<Vec<usize>>`
//! adjacency, a heap-allocated `path` vector per routing call, and
//! per-neighbor position gathering — so `benches/microbench.rs` and the
//! `bench_baseline` binary can put old and new side by side on the same
//! machine and the same instances. Nothing outside benchmarking should use
//! this module.

use geogossip_geometry::point::NodeId;
use geogossip_geometry::sampling::uniform_point_in;
use geogossip_geometry::{unit_square, Point};
use geogossip_graph::GeometricGraph;
use rand::Rng;

/// The seed's graph representation: positions plus nested-`Vec` adjacency.
pub struct LegacyGraph {
    positions: Vec<Point>,
    adjacency: Vec<Vec<usize>>,
}

impl LegacyGraph {
    /// Copies a [`GeometricGraph`] into the seed's `Vec<Vec<usize>>` layout.
    pub fn from_graph(graph: &GeometricGraph) -> Self {
        let adjacency = (0..graph.len())
            .map(|u| {
                graph
                    .neighbors(NodeId(u))
                    .iter()
                    .map(|&v| v as usize)
                    .collect()
            })
            .collect();
        LegacyGraph {
            positions: graph.positions().to_vec(),
            adjacency,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// The seed's `route_to_position`: one heap-allocated path per call, one
/// position gather per scanned neighbor.
pub fn legacy_route_to_position(
    graph: &LegacyGraph,
    source: NodeId,
    target: Point,
) -> (NodeId, usize, Vec<NodeId>) {
    let mut current = source.index();
    let mut path = vec![NodeId(current)];
    let mut current_dist = graph.positions[current].distance_squared(target);
    loop {
        let mut best: Option<(usize, f64)> = None;
        for &nbr in &graph.adjacency[current] {
            let d = graph.positions[nbr].distance_squared(target);
            if d < current_dist && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((nbr, d));
            }
        }
        match best {
            Some((next, d)) => {
                current = next;
                current_dist = d;
                path.push(NodeId(current));
            }
            None => break,
        }
    }
    (NodeId(current), path.len() - 1, path)
}

/// One geographic-gossip clock tick against the legacy layout: route to the
/// node nearest a uniform position, route the reply back, average. Returns
/// the total hop count (so callers can keep the work observable).
pub fn legacy_geographic_tick<R: Rng + ?Sized>(
    graph: &LegacyGraph,
    values: &mut [f64],
    activated: NodeId,
    rng: &mut R,
) -> usize {
    let target = uniform_point_in(unit_square(), rng);
    let (partner, out_hops, _path) = legacy_route_to_position(graph, activated, target);
    if partner == activated {
        return 0;
    }
    let (_, back_hops, _path) =
        legacy_route_to_position(graph, partner, graph.positions[activated.index()]);
    let avg = (values[activated.index()] + values[partner.index()]) / 2.0;
    values[activated.index()] = avg;
    values[partner.index()] = avg;
    out_hops + back_hops
}

/// The same tick against the CSR graph using the allocation-free fast path —
/// the exact per-tick work `GeographicGossip::on_tick` now performs.
pub fn csr_geographic_tick<R: Rng + ?Sized>(
    graph: &GeometricGraph,
    values: &mut [f64],
    activated: NodeId,
    rng: &mut R,
) -> usize {
    use geogossip_routing::greedy::{route_terminus, route_terminus_to_node};
    let target = uniform_point_in(unit_square(), rng);
    let out = route_terminus(graph, activated, target);
    let partner = out.terminus;
    if partner == activated {
        return 0;
    }
    let (back, _) = route_terminus_to_node(graph, partner, activated);
    let avg = (values[activated.index()] + values[partner.index()]) / 2.0;
    values[activated.index()] = avg;
    values[partner.index()] = avg;
    out.hops + back.hops
}

/// The full pre-overhaul geographic-gossip protocol: the exact per-tick work
/// `GeographicGossip` performed before the engine/routing tick-loop overhaul,
/// with the **preserved scalar reference walk**
/// ([`geogossip_routing::greedy::route_terminus_reference`]) for both legs
/// and no squared-domain stop hook (so `AsyncEngine::run_reference` checks
/// convergence with the exact sqrt/divide comparison every tick, exactly as
/// the pre-overhaul loop did).
///
/// Driving this through `AsyncEngine::run_reference` therefore reproduces
/// the complete pre-PR tick loop in the current tree, which is what
/// `bench_baseline --append-tick-large` measures the overhauled loop
/// against; the two runs are asserted to produce identical reports, so the
/// speedup is apples to apples.
pub struct ReferenceGeographicGossip<'a> {
    graph: &'a GeometricGraph,
    state: geogossip_core::GossipState,
}

impl<'a> ReferenceGeographicGossip<'a> {
    /// Wraps a graph and an initial value vector.
    pub fn new(graph: &'a GeometricGraph, initial_values: Vec<f64>) -> Self {
        ReferenceGeographicGossip {
            graph,
            state: geogossip_core::GossipState::new(initial_values),
        }
    }
}

impl geogossip_sim::Activation for ReferenceGeographicGossip<'_> {
    fn on_tick(
        &mut self,
        tick: geogossip_sim::Tick,
        tx: &mut geogossip_sim::TransmissionCounter,
        rng: &mut dyn rand::RngCore,
    ) {
        use geogossip_routing::greedy::{
            route_terminus_reference, route_terminus_to_node_reference,
        };
        if self.graph.len() < 2 {
            return;
        }
        let s = tick.node;
        // Identical RNG draws and update sequence to `GeographicGossip::step`
        // with the default selector; only the walk implementation differs.
        let target = uniform_point_in(unit_square(), rng);
        let outcome = route_terminus_reference(self.graph, s, target);
        let (partner, outbound_hops) = (outcome.terminus, outcome.hops);
        if partner == s {
            return;
        }
        let (back, _) = route_terminus_to_node_reference(self.graph, partner, s);
        let (new_s, new_p) = geogossip_core::update::convex_average(
            self.state.value(s.index()),
            self.state.value(partner.index()),
        );
        self.state.set(s.index(), new_s);
        self.state.set(partner.index(), new_p);
        tx.charge_routing((outbound_hops + back.hops) as u64);
    }

    fn relative_error(&self) -> f64 {
        self.state.relative_error()
    }

    fn name(&self) -> &str {
        "geographic (pre-overhaul reference)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::sampling::sample_unit_square;
    use geogossip_routing::greedy::route_to_position;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn legacy_and_csr_routing_agree() {
        let pts = sample_unit_square(400, &mut ChaCha8Rng::seed_from_u64(1));
        let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
        let legacy = LegacyGraph::from_graph(&graph);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            let src = NodeId(rng.gen_range(0..graph.len()));
            let target = uniform_point_in(unit_square(), &mut rng);
            let (lt, lh, lpath) = legacy_route_to_position(&legacy, src, target);
            let new = route_to_position(&graph, src, target);
            assert_eq!(lt, new.terminus);
            assert_eq!(lh, new.hops);
            assert_eq!(lpath, new.path);
        }
    }

    #[test]
    fn legacy_and_csr_ticks_do_the_same_exchange() {
        let pts = sample_unit_square(300, &mut ChaCha8Rng::seed_from_u64(3));
        let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
        let legacy = LegacyGraph::from_graph(&graph);
        let mut values_a: Vec<f64> = (0..graph.len()).map(|i| i as f64).collect();
        let mut values_b = values_a.clone();
        for step in 0..50u64 {
            let activated = NodeId((step as usize * 13) % graph.len());
            let ha = legacy_geographic_tick(
                &legacy,
                &mut values_a,
                activated,
                &mut ChaCha8Rng::seed_from_u64(step),
            );
            let hb = csr_geographic_tick(
                &graph,
                &mut values_b,
                activated,
                &mut ChaCha8Rng::seed_from_u64(step),
            );
            assert_eq!(ha, hb);
            assert_eq!(values_a, values_b);
        }
    }
}
