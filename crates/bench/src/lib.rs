//! Experiment harness for the paper reproduction.
//!
//! The paper contains no numbered tables or figures (it is purely analytical),
//! so EXPERIMENTS.md defines ten experiments E1–E10, each reifying one
//! quantitative claim of the text. This crate implements every experiment as a
//! library function returning a [`geogossip_analysis::Table`] plus a small
//! summary, and exposes one binary per experiment
//! (`cargo run --release -p geogossip-bench --bin e4_scaling_exponents`).
//!
//! Every experiment accepts a [`Scale`] so that the same code path backs
//! three uses:
//!
//! * [`Scale::Smoke`] — seconds; used by the test-suite to keep the harness
//!   honest,
//! * [`Scale::Quick`] — a few minutes; the default for the binaries,
//! * [`Scale::Full`] — the sizes quoted in EXPERIMENTS.md.
//!
//! Criterion micro-benchmarks for the underlying primitives (graph
//! construction, routing, update sweeps) live in `benches/microbench.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod legacy;
pub mod timing;
pub mod workload;

pub use experiments::{ExperimentOutput, Scale};
