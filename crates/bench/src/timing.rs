//! Minimal wall-clock median timing, shared by the `bench_baseline` binary.
//!
//! Criterion (or its offline stand-in) is the right tool for interactive
//! benchmarking; this module exists so a headline number can be measured and
//! written to `BENCH_baseline.json` from a plain binary with no harness in
//! between: warm up, calibrate an iteration count per sample, time a fixed
//! number of samples, report the median nanoseconds per iteration.

use std::time::{Duration, Instant};

/// Number of timed samples behind every reported median.
pub const SAMPLES: usize = 15;

/// Measures the median wall-clock nanoseconds per call of `f`.
///
/// `budget` is the total measurement budget; each of the [`SAMPLES`] samples
/// runs enough iterations to fill its share of it (at least one).
pub fn median_ns_per_iter<F: FnMut()>(f: F, budget: Duration) -> f64 {
    median_ns_per_iter_with_samples(f, budget, SAMPLES)
}

/// [`median_ns_per_iter`] with an explicit sample count, for slow workloads
/// (e.g. a million-node graph build) where the default [`SAMPLES`] repeats
/// would take minutes: fewer samples of a second-scale measurement still give
/// a stable median.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn median_ns_per_iter_with_samples<F: FnMut()>(
    mut f: F,
    budget: Duration,
    samples: usize,
) -> f64 {
    assert!(samples > 0, "need at least one timing sample");
    // Warm-up + calibration run.
    let start = Instant::now();
    f();
    let first = start.elapsed().max(Duration::from_nanos(1));
    let per_sample = (budget / samples as u32).max(Duration::from_micros(200));
    let iters =
        ((per_sample.as_secs_f64() / first.as_secs_f64()).ceil() as u64).clamp(1, 10_000_000);

    let mut timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        timings.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    timings.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    timings[timings.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_positive_and_roughly_calibrated() {
        let ns = median_ns_per_iter(
            || {
                std::hint::black_box((0..1000u64).sum::<u64>());
            },
            Duration::from_millis(30),
        );
        assert!(ns > 0.0);
        // Summing 1000 integers takes well under a millisecond.
        assert!(ns < 1e6, "implausible timing {ns} ns");
    }
}
