//! Geometric random graphs and the graph algorithms the gossip protocols need.
//!
//! The network model of the paper (Section 2) is the geometric random graph
//! `G(n, r)`: `n` sensors placed independently and uniformly at random in the
//! unit square, with an edge between any two sensors within Euclidean distance
//! `r`. This crate provides:
//!
//! * [`GeometricGraph`] — construction of `G(n, r)` from positions (using the
//!   spatial grid from [`geogossip_geometry`] so construction is `O(n)` in the
//!   connectivity regime), adjacency queries, and degree statistics.
//! * [`csr`] — the flat compressed-sparse-row adjacency layout behind
//!   [`GeometricGraph`]: a `u32` offset array plus a concatenated `u32`
//!   neighbor array, cache-dense where the seed's `Vec<Vec<usize>>` pointer-
//!   chased.
//! * [`connectivity`] — BFS components, connectivity testing, and a union–find
//!   structure used both by the graph code and by tests.
//! * [`degree`] — degree distributions and summaries.
//! * [`liveness`] — a [`LivenessMask`] bitmap kept alongside the immutable
//!   CSR adjacency, so fault-injection scenarios can crash and revive nodes
//!   without touching the graph itself.
//! * [`radius`] — empirical estimation of the connectivity threshold
//!   `r(n) = c·sqrt(log n / n)` (the Gupta–Kumar regime the paper assumes).
//!
//! # Example
//!
//! ```
//! use geogossip_graph::GeometricGraph;
//! use geogossip_geometry::{connectivity_radius, sampling::sample_unit_square};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let pts = sample_unit_square(500, &mut rng);
//! let g = GeometricGraph::build(pts, connectivity_radius(500, 2.0));
//! assert_eq!(g.len(), 500);
//! assert!(g.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod csr;
pub mod degree;
pub mod geometric;
pub mod liveness;
pub mod radius;

pub use connectivity::{ConnectivityReport, UnionFind};
pub use csr::CsrAdjacency;
pub use degree::DegreeSummary;
pub use geometric::GeometricGraph;
pub use liveness::LivenessMask;
pub use radius::{connectivity_probability, ConnectivityScan};
