//! Connectivity testing, connected components, and union–find.
//!
//! The paper's analysis only goes through when `G(n, r)` is connected, which
//! happens w.h.p. at the Gupta–Kumar radius (Section 1.1/2.1). The experiment
//! harness uses these routines both to condition runs on connectivity and to
//! reproduce the connectivity-threshold curve (experiment E6).
//!
//! All traversal routines operate on the flat [`CsrAdjacency`] layout used by
//! [`crate::GeometricGraph`]; build one from explicit neighbor lists with
//! [`CsrAdjacency::from_lists`] when testing.

use crate::csr::CsrAdjacency;
use serde::{Deserialize, Serialize};

/// Whether the adjacency structure describes a connected graph.
///
/// Graphs with zero or one node are connected by convention.
///
/// # Example
///
/// ```
/// use geogossip_graph::connectivity::is_connected;
/// use geogossip_graph::csr::CsrAdjacency;
/// let path = CsrAdjacency::from_lists(&[vec![1], vec![0, 2], vec![1]]);
/// assert!(is_connected(&path));
/// let split = CsrAdjacency::from_lists(&[vec![1], vec![0], vec![]]);
/// assert!(!is_connected(&split));
/// ```
pub fn is_connected(adjacency: &CsrAdjacency) -> bool {
    adjacency.is_connected()
}

/// Connected components of the adjacency structure, each sorted by node index.
/// Components are returned in order of their smallest member.
pub fn components(adjacency: &CsrAdjacency) -> Vec<Vec<usize>> {
    adjacency.components()
}

/// Summary of a connectivity check over one graph instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityReport {
    /// Number of nodes examined.
    pub nodes: usize,
    /// Number of connected components.
    pub component_count: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Number of isolated nodes (degree zero).
    pub isolated_nodes: usize,
}

impl ConnectivityReport {
    /// Builds the report from a CSR adjacency structure.
    pub fn from_csr(adjacency: &CsrAdjacency) -> Self {
        let comps = adjacency.components();
        ConnectivityReport {
            nodes: adjacency.len(),
            component_count: comps.len(),
            largest_component: comps.iter().map(Vec::len).max().unwrap_or(0),
            isolated_nodes: adjacency.degrees().filter(|&d| d == 0).count(),
        }
    }

    /// Whether the graph was connected.
    pub fn is_connected(&self) -> bool {
        self.component_count <= 1
    }
}

/// Disjoint-set (union–find) structure with path compression and union by
/// size.
///
/// Used as an independent oracle in tests (components computed two ways must
/// agree) and by the radius-scan experiment which incrementally adds edges as
/// the radius grows.
///
/// # Example
///
/// ```
/// use geogossip_graph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Creates a structure with `n` singleton components.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the component containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the components containing `a` and `b`; returns `true` when they
    /// were previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same component.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the component containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> CsrAdjacency {
        CsrAdjacency::from_lists(
            &(0..n)
                .map(|i| {
                    let mut v = Vec::new();
                    if i > 0 {
                        v.push(i - 1);
                    }
                    if i + 1 < n {
                        v.push(i + 1);
                    }
                    v
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(is_connected(&CsrAdjacency::from_lists(&[])));
        assert!(is_connected(&CsrAdjacency::from_lists(&[vec![]])));
    }

    #[test]
    fn path_graph_is_connected() {
        assert!(is_connected(&path_graph(50)));
    }

    #[test]
    fn two_cliques_are_not_connected() {
        let adj = CsrAdjacency::from_lists(&[vec![1], vec![0], vec![3], vec![2]]);
        assert!(!is_connected(&adj));
        let comps = components(&adj);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn components_cover_all_nodes_exactly_once() {
        let adj = CsrAdjacency::from_lists(&[vec![1], vec![0], vec![], vec![4], vec![3], vec![]]);
        let comps = components(&adj);
        let mut all: Vec<usize> = comps.concat();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn connectivity_report_counts_isolated_nodes() {
        let adj = CsrAdjacency::from_lists(&[vec![1], vec![0], vec![], vec![]]);
        let report = ConnectivityReport::from_csr(&adj);
        assert_eq!(report.component_count, 3);
        assert_eq!(report.largest_component, 2);
        assert_eq!(report.isolated_nodes, 2);
        assert!(!report.is_connected());
    }

    #[test]
    fn union_find_merges_and_counts() {
        let mut uf = UnionFind::new(10);
        assert_eq!(uf.component_count(), 10);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert_eq!(uf.component_count(), 8);
        assert_eq!(uf.component_size(2), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 9));
    }

    #[test]
    fn union_find_matches_bfs_components() {
        let adj = path_graph(20);
        let mut uf = UnionFind::new(20);
        for u in 0..20 {
            for &v in adj.neighbors(u) {
                uf.union(u, v as usize);
            }
        }
        assert_eq!(uf.component_count(), components(&adj).len());
    }

    #[test]
    fn union_find_len_and_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let uf = UnionFind::new(3);
        assert_eq!(uf.len(), 3);
    }
}
