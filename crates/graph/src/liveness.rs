//! Node liveness tracking for fault-injection scenarios.
//!
//! A [`LivenessMask`] is a dense `alive` bitmap over node indices, maintained
//! alongside (never inside) a [`GeometricGraph`](crate::GeometricGraph): the
//! CSR adjacency stays immutable and shared, and fault-aware consumers skip
//! dead rows by consulting the mask. This keeps the no-fault fast paths
//! untouched — a graph with no mask behaves exactly as before.

/// A dense liveness bitmap over the nodes of a graph.
///
/// Newly constructed masks mark every node alive. Killing a node is
/// reversible ([`revive`](LivenessMask::revive)), which models churn: a node
/// that rejoins keeps its (stale) state but becomes routable again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessMask {
    alive: Vec<bool>,
    dead: usize,
}

impl LivenessMask {
    /// Creates a mask over `n` nodes, all alive.
    pub fn all_alive(n: usize) -> Self {
        LivenessMask {
            alive: vec![true; n],
            dead: 0,
        }
    }

    /// The number of nodes the mask covers.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether the mask covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Whether node `i` is alive. Out-of-range indices are dead.
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive.get(i).copied().unwrap_or(false)
    }

    /// Marks node `i` dead. Idempotent.
    pub fn kill(&mut self, i: usize) {
        if self.alive[i] {
            self.alive[i] = false;
            self.dead += 1;
        }
    }

    /// Marks node `i` alive again. Idempotent.
    pub fn revive(&mut self, i: usize) {
        if !self.alive[i] {
            self.alive[i] = true;
            self.dead -= 1;
        }
    }

    /// How many nodes are currently alive.
    pub fn alive_count(&self) -> usize {
        self.alive.len() - self.dead
    }

    /// Whether any node is currently dead — fault-aware consumers use this
    /// to keep the unmasked fast path while the mask is trivially all-true.
    pub fn any_dead(&self) -> bool {
        self.dead > 0
    }

    /// The raw bitmap, for masked scans (`slice[i]` ⇔ node `i` alive).
    pub fn as_slice(&self) -> &[bool] {
        &self.alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_masks_are_all_alive() {
        let mask = LivenessMask::all_alive(5);
        assert_eq!(mask.len(), 5);
        assert_eq!(mask.alive_count(), 5);
        assert!(!mask.any_dead());
        assert!((0..5).all(|i| mask.is_alive(i)));
        assert!(!mask.is_alive(5));
    }

    #[test]
    fn kill_and_revive_are_idempotent_and_tracked() {
        let mut mask = LivenessMask::all_alive(4);
        mask.kill(2);
        mask.kill(2);
        assert!(!mask.is_alive(2));
        assert_eq!(mask.alive_count(), 3);
        assert!(mask.any_dead());
        mask.revive(2);
        mask.revive(2);
        assert!(mask.is_alive(2));
        assert_eq!(mask.alive_count(), 4);
        assert!(!mask.any_dead());
    }

    #[test]
    fn slice_view_matches_queries() {
        let mut mask = LivenessMask::all_alive(3);
        mask.kill(0);
        assert_eq!(mask.as_slice(), &[false, true, true]);
    }
}
