//! Flat compressed-sparse-row (CSR) adjacency storage.
//!
//! The seed implementation stored adjacency as `Vec<Vec<usize>>` — one heap
//! allocation per node and a pointer chase per neighbor-list access. Every hot
//! path in the workspace (greedy routing, pairwise partner draws, BFS,
//! flooding) walks neighbor lists, so adjacency is now a single flat layout:
//!
//! * `offsets[u] .. offsets[u + 1]` indexes the slice of `neighbors` holding
//!   `u`'s neighbors (sorted by node index),
//! * `neighbors` stores node indices as `u32` (half the memory of `usize`,
//!   twice the cache density; networks beyond `u32::MAX` nodes are far outside
//!   the simulable regime and rejected at construction).
//!
//! [`GeometricGraph`](crate::GeometricGraph) additionally keeps the neighbor
//! *coordinates* in CSR-aligned arrays so the greedy-routing inner loop
//! streams contiguous memory instead of gathering positions by index; that
//! layout lives in `geometric.rs` because only the graph knows its positions.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Immutable CSR adjacency over `n` nodes.
///
/// # Example
///
/// ```
/// use geogossip_graph::csr::CsrAdjacency;
/// let adj = CsrAdjacency::from_lists(&[vec![1], vec![0, 2], vec![1]]);
/// assert_eq!(adj.len(), 3);
/// assert_eq!(adj.neighbors(1), &[0, 2]);
/// assert_eq!(adj.degree(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrAdjacency {
    /// `offsets[u]..offsets[u+1]` spans node `u`'s neighbors; length `n + 1`.
    offsets: Vec<u32>,
    /// Concatenated neighbor lists, each sorted ascending.
    neighbors: Vec<u32>,
}

impl CsrAdjacency {
    /// Builds CSR storage from per-node neighbor lists (used by tests and by
    /// callers that assemble adjacency incrementally).
    ///
    /// Each list is sorted during construction.
    ///
    /// # Panics
    ///
    /// Panics if the node or edge count does not fit in `u32`.
    pub fn from_lists(lists: &[Vec<usize>]) -> Self {
        let mut builder = CsrBuilder::with_capacity(lists.len(), lists.iter().map(Vec::len).sum());
        for list in lists {
            builder.start_row();
            for &v in list {
                builder.push_neighbor(v);
            }
        }
        builder.finish()
    }

    /// Assembles CSR storage from pre-computed raw arrays — the entry point of
    /// the two-pass parallel graph build, which produces exact `offsets` by
    /// prefix-summing a degree pass and fills `neighbors` row-by-row into
    /// disjoint slices.
    ///
    /// The caller guarantees each row `offsets[u]..offsets[u+1]` is sorted
    /// ascending (checked in debug builds, along with offset monotonicity).
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty or its last entry does not equal
    /// `neighbors.len()`.
    pub fn from_raw_parts(offsets: Vec<u32>, neighbors: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets must hold at least the 0 row");
        assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            neighbors.len(),
            "final offset must seal the neighbor array"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(offsets
            .windows(2)
            .all(|w| neighbors[w[0] as usize..w[1] as usize]
                .windows(2)
                .all(|p| p[0] < p[1])));
        CsrAdjacency { offsets, neighbors }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the structure has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of directed adjacency entries (twice the undirected edge
    /// count for symmetric graphs).
    pub fn entry_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbors of `u`, sorted by node index.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.neighbors[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// The CSR range of `u`'s neighbors, for callers that keep auxiliary
    /// arrays aligned with [`CsrAdjacency::raw_neighbors`].
    #[inline]
    pub fn neighbor_range(&self, u: usize) -> std::ops::Range<usize> {
        self.offsets[u] as usize..self.offsets[u + 1] as usize
    }

    /// The full concatenated neighbor array.
    pub fn raw_neighbors(&self) -> &[u32] {
        &self.neighbors
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Iterator over all node degrees.
    pub fn degrees(&self) -> impl Iterator<Item = usize> + '_ {
        self.offsets.windows(2).map(|w| (w[1] - w[0]) as usize)
    }

    /// Whether `u` lists `v` as a neighbor (binary search).
    pub fn contains_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Whether the graph is connected (BFS from node 0). Graphs with zero or
    /// one node count as connected.
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n <= 1 {
            return true;
        }
        let mut visited = vec![false; n];
        let mut stack = vec![0u32];
        visited[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u as usize) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Connected components, each sorted by node index, in order of their
    /// smallest member.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut visited = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start as u32];
            visited[start] = true;
            while let Some(u) = stack.pop() {
                comp.push(u as usize);
                for &v in self.neighbors(u as usize) {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// Breadth-first hop distances from `source` (`usize::MAX` when
    /// unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn bfs_distances(&self, source: usize) -> Vec<usize> {
        let n = self.len();
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[source] = 0;
        queue.push_back(source as u32);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in self.neighbors(u as usize) {
                if dist[v as usize] == usize::MAX {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

/// Streaming CSR builder: call [`CsrBuilder::start_row`] once per node in
/// index order, then [`CsrBuilder::push_neighbor`] for each of its neighbors.
///
/// Offset semantics: `offsets[u]` is where row `u` *starts*, so a row is
/// closed (sorted, end offset recorded) when the next row starts or when
/// [`CsrBuilder::finish`] seals the structure.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    row_open: bool,
}

impl CsrBuilder {
    /// Creates a builder, pre-allocating for `nodes` rows and `entries`
    /// neighbor slots.
    pub fn with_capacity(nodes: usize, entries: usize) -> Self {
        assert!(
            nodes <= u32::MAX as usize,
            "CSR adjacency indexes nodes as u32"
        );
        let mut offsets = Vec::with_capacity(nodes + 1);
        offsets.push(0);
        CsrBuilder {
            offsets,
            neighbors: Vec::with_capacity(entries),
            row_open: false,
        }
    }

    /// Starts the next node's neighbor row, sorting and closing the previous
    /// one.
    pub fn start_row(&mut self) {
        if self.row_open {
            self.close_row();
        }
        self.row_open = true;
    }

    /// Appends a neighbor to the current row.
    ///
    /// # Panics
    ///
    /// Panics if no row was started or the index does not fit in `u32`.
    pub fn push_neighbor(&mut self, v: usize) {
        assert!(
            self.row_open,
            "start_row must be called before push_neighbor"
        );
        assert!(v <= u32::MAX as usize, "CSR adjacency indexes nodes as u32");
        self.neighbors.push(v as u32);
        assert!(
            self.neighbors.len() <= u32::MAX as usize,
            "CSR adjacency offsets are u32; too many edges"
        );
    }

    /// Seals the structure.
    pub fn finish(mut self) -> CsrAdjacency {
        if self.row_open {
            self.close_row();
        }
        CsrAdjacency {
            offsets: self.offsets,
            neighbors: self.neighbors,
        }
    }

    /// Sorts the open row and records its end offset.
    fn close_row(&mut self) {
        let start = *self.offsets.last().expect("offsets always non-empty") as usize;
        self.neighbors[start..].sort_unstable();
        self.offsets.push(self.neighbors.len() as u32);
        self.row_open = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CsrAdjacency {
        CsrAdjacency::from_lists(
            &(0..n)
                .map(|i| {
                    let mut v = Vec::new();
                    if i > 0 {
                        v.push(i - 1);
                    }
                    if i + 1 < n {
                        v.push(i + 1);
                    }
                    v
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn from_lists_round_trips_and_sorts() {
        let adj = CsrAdjacency::from_lists(&[vec![2, 1], vec![0], vec![0]]);
        assert_eq!(adj.neighbors(0), &[1, 2]);
        assert_eq!(adj.neighbors(1), &[0]);
        assert_eq!(adj.degree(0), 2);
        assert_eq!(adj.entry_count(), 4);
        assert!(adj.contains_edge(0, 2));
        assert!(!adj.contains_edge(1, 2));
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(CsrAdjacency::from_lists(&[]).is_connected());
        assert!(CsrAdjacency::from_lists(&[vec![]]).is_connected());
    }

    #[test]
    fn path_graph_is_connected_with_expected_bfs() {
        let adj = path(10);
        assert!(adj.is_connected());
        let dist = adj.bfs_distances(0);
        assert_eq!(dist, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_graph_components_cover_all_nodes() {
        let adj = CsrAdjacency::from_lists(&[vec![1], vec![0], vec![3], vec![2], vec![]]);
        assert!(!adj.is_connected());
        let comps = adj.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn degrees_iterator_matches_per_node_degree() {
        let adj = path(6);
        let degs: Vec<usize> = adj.degrees().collect();
        assert_eq!(degs, vec![1, 2, 2, 2, 2, 1]);
        for (u, &d) in degs.iter().enumerate() {
            assert_eq!(adj.degree(u), d);
        }
    }

    #[test]
    fn neighbor_range_aligns_with_raw_array() {
        let adj = path(5);
        for u in 0..5 {
            assert_eq!(
                &adj.raw_neighbors()[adj.neighbor_range(u)],
                adj.neighbors(u)
            );
        }
    }
}
