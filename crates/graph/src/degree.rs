//! Degree distributions of geometric random graphs.
//!
//! At the connectivity radius `r = Θ(sqrt(log n / n))` the expected degree is
//! `Θ(log n)`; the degree summary is used by the experiment harness to report
//! the regime each run operated in and by tests as a sanity check on graph
//! construction.

use serde::{Deserialize, Serialize};

/// Summary statistics of a degree sequence.
///
/// # Example
///
/// ```
/// use geogossip_graph::DegreeSummary;
/// let s = DegreeSummary::from_degrees([2usize, 4, 0, 6]);
/// assert_eq!(s.min, 0);
/// assert_eq!(s.max, 6);
/// assert_eq!(s.isolated, 1);
/// assert!((s.mean - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeSummary {
    /// Number of nodes.
    pub nodes: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Number of nodes with degree zero.
    pub isolated: usize,
}

impl DegreeSummary {
    /// Builds the summary from an iterator of node degrees.
    ///
    /// An empty iterator produces an all-zero summary.
    pub fn from_degrees<I>(degrees: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let mut nodes = 0usize;
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut isolated = 0usize;
        for d in degrees {
            nodes += 1;
            min = min.min(d);
            max = max.max(d);
            sum += d;
            if d == 0 {
                isolated += 1;
            }
        }
        if nodes == 0 {
            return DegreeSummary {
                nodes: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                isolated: 0,
            };
        }
        DegreeSummary {
            nodes,
            min,
            max,
            mean: sum as f64 / nodes as f64,
            isolated,
        }
    }
}

/// Full degree histogram: `histogram[d]` is the number of nodes of degree `d`.
pub fn degree_histogram<I>(degrees: I) -> Vec<usize>
where
    I: IntoIterator<Item = usize>,
{
    let mut hist: Vec<usize> = Vec::new();
    for d in degrees {
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeometricGraph;
    use geogossip_geometry::sampling::sample_unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = DegreeSummary::from_degrees(std::iter::empty());
        assert_eq!(
            s,
            DegreeSummary {
                nodes: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                isolated: 0
            }
        );
    }

    #[test]
    fn histogram_counts_degrees() {
        let h = degree_histogram([0usize, 2, 2, 5]);
        assert_eq!(h, vec![1, 0, 2, 0, 0, 1]);
    }

    #[test]
    fn histogram_of_empty_sequence_is_empty() {
        assert!(degree_histogram(std::iter::empty()).is_empty());
    }

    #[test]
    fn mean_degree_scales_like_log_n_at_connectivity_radius() {
        // Expected degree at r = c·sqrt(log n / n) is ≈ n·π·r² = c²·π·log n
        // (ignoring boundary effects, which only reduce it).
        let n = 2000;
        let c = 1.5;
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(42));
        let g = GeometricGraph::build_at_connectivity_radius(pts, c);
        let expected = c * c * std::f64::consts::PI * (n as f64).ln();
        let mean = g.degree_summary().mean;
        assert!(
            mean > 0.5 * expected && mean < 1.1 * expected,
            "mean degree {mean} outside plausible range around {expected}"
        );
    }
}
