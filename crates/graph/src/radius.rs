//! Empirical study of the connectivity threshold of `G(n, r)`.
//!
//! Gupta & Kumar showed that `r(n) = c·sqrt(log n / n)` with `c` above a
//! constant threshold makes `G(n, r)` connected w.h.p.; the paper leans on
//! this regime throughout (Sections 1.1 and 2.1, and the remark that the
//! failure probability δ cannot be driven below `n^{-O(1)}`). Experiment E6
//! reproduces the threshold curve with the helpers in this module.

use crate::geometric::GeometricGraph;
use geogossip_geometry::sampling::sample_unit_square;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Estimates the probability that `G(n, c·sqrt(log n / n))` is connected by
/// Monte-Carlo over `trials` independent placements.
///
/// # Panics
///
/// Panics if `trials` is zero or `n < 2`.
///
/// # Example
///
/// ```
/// use geogossip_graph::connectivity_probability;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// let mut rng = ChaCha8Rng::seed_from_u64(3);
/// let p = connectivity_probability(200, 2.0, 10, &mut rng);
/// assert!(p > 0.8);
/// ```
pub fn connectivity_probability<R: Rng + ?Sized>(
    n: usize,
    c: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    assert!(n >= 2, "connectivity requires at least two nodes");
    let mut connected = 0usize;
    for _ in 0..trials {
        let pts = sample_unit_square(n, rng);
        let g = GeometricGraph::build_at_connectivity_radius(pts, c);
        if g.is_connected() {
            connected += 1;
        }
    }
    connected as f64 / trials as f64
}

/// One row of a connectivity scan: the empirical connectivity probability at a
/// given `(n, c)` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityScanRow {
    /// Number of sensors.
    pub n: usize,
    /// Radius constant `c` in `r = c·sqrt(log n / n)`.
    pub c: f64,
    /// Fraction of trials in which the graph was connected.
    pub probability: f64,
    /// Number of trials behind the estimate.
    pub trials: usize,
}

/// A sweep of connectivity probability over radius constants, for one or more
/// network sizes — the data behind experiment E6.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityScan {
    /// All measured rows, in the order they were produced.
    pub rows: Vec<ConnectivityScanRow>,
}

impl ConnectivityScan {
    /// Runs the scan for the cross product of `sizes × constants`, with
    /// `trials` placements per cell.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero or any size is below 2.
    pub fn run<R: Rng + ?Sized>(
        sizes: &[usize],
        constants: &[f64],
        trials: usize,
        rng: &mut R,
    ) -> Self {
        let mut rows = Vec::with_capacity(sizes.len() * constants.len());
        for &n in sizes {
            for &c in constants {
                let probability = connectivity_probability(n, c, trials, rng);
                rows.push(ConnectivityScanRow {
                    n,
                    c,
                    probability,
                    trials,
                });
            }
        }
        ConnectivityScan { rows }
    }

    /// Runs the scan with a caller-supplied graph builder: `build(n, c,
    /// trial)` must produce the `trial`-th instance at size `n` and radius
    /// constant `c`. This is how the experiment harness plugs its scenario
    /// topology machinery (seeded placements, alternative surfaces) into the
    /// scan while keeping the grid/threshold logic in one place.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero or any size is below 2.
    pub fn run_with<F>(sizes: &[usize], constants: &[f64], trials: usize, mut build: F) -> Self
    where
        F: FnMut(usize, f64, u64) -> GeometricGraph,
    {
        assert!(trials > 0, "need at least one trial");
        assert!(
            sizes.iter().all(|&n| n >= 2),
            "connectivity requires at least two nodes"
        );
        let mut rows = Vec::with_capacity(sizes.len() * constants.len());
        for &n in sizes {
            for &c in constants {
                let connected = (0..trials)
                    .filter(|&trial| build(n, c, trial as u64).is_connected())
                    .count();
                rows.push(ConnectivityScanRow {
                    n,
                    c,
                    probability: connected as f64 / trials as f64,
                    trials,
                });
            }
        }
        ConnectivityScan { rows }
    }

    /// The measured probability at a scanned `(n, c)` cell, if present.
    pub fn probability(&self, n: usize, c: f64) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.n == n && (r.c - c).abs() < 1e-12)
            .map(|r| r.probability)
    }

    /// The smallest scanned constant `c` at which the empirical connectivity
    /// probability reached `target` for the given `n`, if any.
    pub fn threshold_constant(&self, n: usize, target: f64) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.n == n && r.probability >= target)
            .map(|r| r.c)
            .fold(None, |acc, c| Some(acc.map_or(c, |a: f64| a.min(c))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn large_constant_is_almost_surely_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = connectivity_probability(300, 2.5, 8, &mut rng);
        assert!(p >= 0.9, "p = {p}");
    }

    #[test]
    fn tiny_constant_is_rarely_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = connectivity_probability(300, 0.3, 8, &mut rng);
        assert!(p <= 0.2, "p = {p}");
    }

    #[test]
    fn scan_produces_one_row_per_combination() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let scan = ConnectivityScan::run(&[100, 200], &[0.5, 1.5], 3, &mut rng);
        assert_eq!(scan.rows.len(), 4);
    }

    #[test]
    fn threshold_constant_picks_smallest_passing_c() {
        let scan = ConnectivityScan {
            rows: vec![
                ConnectivityScanRow {
                    n: 100,
                    c: 0.5,
                    probability: 0.2,
                    trials: 10,
                },
                ConnectivityScanRow {
                    n: 100,
                    c: 1.0,
                    probability: 0.95,
                    trials: 10,
                },
                ConnectivityScanRow {
                    n: 100,
                    c: 1.5,
                    probability: 1.0,
                    trials: 10,
                },
            ],
        };
        assert_eq!(scan.threshold_constant(100, 0.9), Some(1.0));
        assert_eq!(scan.threshold_constant(100, 1.1), None);
        assert_eq!(scan.threshold_constant(999, 0.5), None);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _ = connectivity_probability(100, 1.0, 0, &mut rng);
    }
}
