//! Construction of the geometric random graph `G(n, r)`.

use crate::connectivity::ConnectivityReport;
use crate::csr::{CsrAdjacency, CsrBuilder};
use crate::degree::DegreeSummary;
use geogossip_geometry::point::NodeId;
use geogossip_geometry::{unit_square, Point, Topology, UniformGrid};
use serde::{Deserialize, Serialize};

/// A geometric graph over a fixed set of sensor positions.
///
/// Nodes are identified by their index into the position vector
/// ([`NodeId`]); edges connect every pair of nodes within Euclidean
/// distance `radius`. The adjacency structure is immutable after
/// construction — the paper's network never changes during a run.
///
/// Adjacency is stored in a flat CSR layout ([`CsrAdjacency`]): one `u32`
/// offset array plus one concatenated `u32` neighbor array, with the neighbor
/// *coordinates* mirrored into two CSR-aligned `f64` arrays. The greedy
/// routing inner loop ("which neighbor is closest to the target?") therefore
/// streams contiguous memory instead of pointer-chasing per-node `Vec`s and
/// gathering positions by index — see [`GeometricGraph::neighbor_block`].
///
/// Besides adjacency the graph keeps the spatial grid it was built with, so
/// downstream code (greedy geographic routing, leader lookup) can answer
/// nearest-node queries without rebuilding an index.
///
/// # Example
///
/// ```
/// use geogossip_graph::GeometricGraph;
/// use geogossip_geometry::Point;
///
/// let pts = vec![
///     Point::new(0.1, 0.1),
///     Point::new(0.15, 0.1),
///     Point::new(0.9, 0.9),
/// ];
/// let g = GeometricGraph::build(pts, 0.1);
/// assert_eq!(g.degree(0.into()), 1);     // only its close companion
/// assert_eq!(g.degree(2.into()), 0);     // isolated far corner
/// assert!(!g.is_connected());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeometricGraph {
    positions: Vec<Point>,
    radius: f64,
    topology: Topology,
    adjacency: CsrAdjacency,
    /// `x` coordinate of each neighbor, aligned with the CSR neighbor array.
    nbr_x: Vec<f64>,
    /// `y` coordinate of each neighbor, aligned with the CSR neighbor array.
    nbr_y: Vec<f64>,
    grid: UniformGrid,
    edge_count: usize,
}

impl GeometricGraph {
    /// Builds `G(n, r)` from explicit positions and a connectivity radius on
    /// the plain unit square (the paper's model).
    ///
    /// Construction uses a spatial grid with cell side `≥ r`, so the expected
    /// cost is `O(n + m)` where `m` is the number of edges.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite.
    pub fn build(positions: Vec<Point>, radius: f64) -> Self {
        Self::build_with_topology(positions, radius, Topology::UnitSquare)
    }

    /// Builds `G(n, r)` under an explicit [`Topology`].
    ///
    /// On [`Topology::Torus`] two sensors are adjacent when their wrapped
    /// distance is within `radius`, so boundary sensors get the same expected
    /// degree as bulk sensors; torus neighbor sets are always supersets of the
    /// unit-square neighbor sets at equal radius (enforced by
    /// `tests/torus_properties.rs`). The spatial grid still indexes the raw
    /// coordinates: torus adjacency queries the grid once per periodic image
    /// of the node that can reach the square, then filters by wrapped
    /// distance. Greedy routing and `nearest_node` keep using raw Euclidean
    /// geometry — routing across the seam is not modelled.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite, or if a torus
    /// radius is `≥ 1/2` (wrap-around would make neighbor sets ambiguous).
    pub fn build_with_topology(positions: Vec<Point>, radius: f64, topology: Topology) -> Self {
        assert!(
            radius.is_finite() && radius > 0.0,
            "connectivity radius must be positive and finite"
        );
        assert!(
            topology == Topology::UnitSquare || radius < 0.5,
            "torus adjacency requires radius < 1/2"
        );
        let grid = UniformGrid::build(unit_square(), &positions, radius.max(1e-9));
        let n = positions.len();
        // Expected degree at the connectivity radius is Θ(log n); reserve for
        // it so the flat neighbor array grows without repeated reallocation.
        let expected_entries = if n > 1 {
            n * ((n as f64).ln().ceil() as usize + 4)
        } else {
            0
        };
        let mut builder = CsrBuilder::with_capacity(n, expected_entries);
        let mut edge_count = 0usize;
        let mut wrapped: Vec<usize> = Vec::new();
        for i in 0..n {
            builder.start_row();
            match topology {
                Topology::UnitSquare => {
                    for j in grid.neighbors_within(&positions, positions[i], radius) {
                        if j != i {
                            builder.push_neighbor(j);
                            if j > i {
                                edge_count += 1;
                            }
                        }
                    }
                }
                Topology::Torus => {
                    // Query the grid at every periodic image of p that can
                    // reach the unit square; a sensor within `radius` of any
                    // image is within wrapped distance `radius` of p. The
                    // clamped out-of-bounds queries stay complete because the
                    // grid's candidate span covers one extra cell and the
                    // cell side is at least `radius`.
                    let p = positions[i];
                    wrapped.clear();
                    for dx in [-1.0, 0.0, 1.0] {
                        for dy in [-1.0, 0.0, 1.0] {
                            let q = Point::new(p.x + dx, p.y + dy);
                            if q.x < -radius
                                || q.x > 1.0 + radius
                                || q.y < -radius
                                || q.y > 1.0 + radius
                            {
                                continue;
                            }
                            wrapped.extend(grid.neighbors_within(&positions, q, radius));
                        }
                    }
                    wrapped.sort_unstable();
                    wrapped.dedup();
                    let r2 = radius * radius;
                    for &j in &wrapped {
                        if j != i && topology.distance_squared(p, positions[j]) <= r2 {
                            builder.push_neighbor(j);
                            if j > i {
                                edge_count += 1;
                            }
                        }
                    }
                }
            }
        }
        let adjacency = builder.finish();
        // Mirror neighbor coordinates into CSR-aligned arrays (after the
        // builder sorted each row) so hot loops read them contiguously.
        let mut nbr_x = Vec::with_capacity(adjacency.entry_count());
        let mut nbr_y = Vec::with_capacity(adjacency.entry_count());
        for &j in adjacency.raw_neighbors() {
            let p = positions[j as usize];
            nbr_x.push(p.x);
            nbr_y.push(p.y);
        }
        GeometricGraph {
            positions,
            radius,
            topology,
            adjacency,
            nbr_x,
            nbr_y,
            grid,
            edge_count,
        }
    }

    /// Builds the graph at the standard connectivity radius
    /// `r = c·sqrt(log n / n)` used throughout the paper.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two positions are supplied.
    pub fn build_at_connectivity_radius(positions: Vec<Point>, c: f64) -> Self {
        let r = geogossip_geometry::connectivity_radius(positions.len(), c);
        Self::build(positions, r)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The connectivity radius the graph was built with.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The surface topology the adjacency was built under.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The sensor positions, indexed by [`NodeId`].
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Position of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// The CSR adjacency structure.
    pub fn adjacency(&self) -> &CsrAdjacency {
        &self.adjacency
    }

    /// Neighbors of `node` (all nodes within the connectivity radius), sorted
    /// by index.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[u32] {
        self.adjacency.neighbors(node.index())
    }

    /// `node`'s neighbors together with their coordinates, as three parallel
    /// slices `(indices, xs, ys)` — the input to the allocation-free greedy
    /// routing scan, which streams these contiguous arrays instead of
    /// gathering `positions[j]` per neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbor_block(&self, node: NodeId) -> (&[u32], &[f64], &[f64]) {
        let range = self.adjacency.neighbor_range(node.index());
        (
            &self.adjacency.raw_neighbors()[range.clone()],
            &self.nbr_x[range.clone()],
            &self.nbr_y[range],
        )
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency.degree(node.index())
    }

    /// Whether `a` and `b` are adjacent (within the connectivity radius).
    pub fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency.contains_edge(a.index(), b.index())
    }

    /// The spatial grid built over the node positions (cell side = radius).
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// The node nearest to an arbitrary position in the unit square.
    ///
    /// Returns `None` only for the empty graph. This is the primitive behind
    /// the Dimakis-style "route towards a uniformly random location and talk
    /// to the node nearest it" step.
    pub fn nearest_node(&self, target: Point) -> Option<NodeId> {
        self.grid.nearest_node(&self.positions, target)
    }

    /// Whether the graph is connected (single BFS component).
    ///
    /// The empty graph and the single-node graph count as connected.
    pub fn is_connected(&self) -> bool {
        self.adjacency.is_connected()
    }

    /// Connected components as lists of node indices.
    pub fn components(&self) -> Vec<Vec<usize>> {
        self.adjacency.components()
    }

    /// Connectivity summary (component count, largest component, isolated
    /// nodes).
    pub fn connectivity_report(&self) -> ConnectivityReport {
        ConnectivityReport::from_csr(&self.adjacency)
    }

    /// Degree summary statistics (min / mean / max / isolated count).
    pub fn degree_summary(&self) -> DegreeSummary {
        DegreeSummary::from_degrees(self.adjacency.degrees())
    }

    /// Breadth-first hop distances from `source` to every node
    /// (`usize::MAX` for unreachable nodes).
    ///
    /// Used by tests and by the routing experiments to compare greedy
    /// geographic paths against shortest paths.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<usize> {
        self.adjacency.bfs_distances(source.index())
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.len()).flat_map(move |u| {
            self.adjacency
                .neighbors(u)
                .iter()
                .filter(move |&&v| v as usize > u)
                .map(move |&v| (u, v as usize))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::connectivity_radius;
    use geogossip_geometry::sampling::sample_unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_graph(n: usize, c: f64, seed: u64) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        GeometricGraph::build_at_connectivity_radius(pts, c)
    }

    #[test]
    fn adjacency_matches_brute_force() {
        let g = random_graph(300, 1.5, 1);
        let pts = g.positions().to_vec();
        let r = g.radius();
        for i in 0..pts.len() {
            let brute: Vec<u32> = (0..pts.len())
                .filter(|&j| j != i && pts[i].distance(pts[j]) <= r)
                .map(|j| j as u32)
                .collect();
            assert_eq!(g.neighbors(NodeId(i)), brute.as_slice());
        }
    }

    #[test]
    fn neighbor_block_coordinates_match_positions() {
        let g = random_graph(250, 1.5, 9);
        for i in 0..g.len() {
            let (nbrs, xs, ys) = g.neighbor_block(NodeId(i));
            assert_eq!(nbrs.len(), xs.len());
            assert_eq!(nbrs.len(), ys.len());
            for (k, &j) in nbrs.iter().enumerate() {
                let p = g.position(NodeId(j as usize));
                assert_eq!(xs[k], p.x);
                assert_eq!(ys[k], p.y);
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = random_graph(400, 1.2, 2);
        for (u, v) in g.edges() {
            assert!(g.are_adjacent(NodeId(u), NodeId(v)));
            assert!(g.are_adjacent(NodeId(v), NodeId(u)));
        }
    }

    #[test]
    fn edge_count_matches_edges_iterator() {
        let g = random_graph(250, 1.3, 3);
        assert_eq!(g.edge_count(), g.edges().count());
        assert_eq!(g.adjacency().entry_count(), 2 * g.edge_count());
    }

    #[test]
    fn connected_at_large_radius_constant() {
        // c = 2 is comfortably above the connectivity threshold.
        let g = random_graph(800, 2.0, 4);
        assert!(g.is_connected());
        assert_eq!(g.components().len(), 1);
        assert!(g.connectivity_report().is_connected());
    }

    #[test]
    fn disconnected_at_tiny_radius() {
        let pts = sample_unit_square(200, &mut ChaCha8Rng::seed_from_u64(5));
        let g = GeometricGraph::build(pts, 0.001);
        assert!(!g.is_connected());
        assert!(g.components().len() > 1);
    }

    #[test]
    fn nearest_node_returns_a_valid_node() {
        let g = random_graph(150, 1.5, 6);
        let target = Point::new(0.42, 0.58);
        let nearest = g.nearest_node(target).unwrap();
        let d = g.position(nearest).distance(target);
        for i in 0..g.len() {
            assert!(g.position(NodeId(i)).distance(target) >= d - 1e-12);
        }
    }

    #[test]
    fn bfs_distances_are_consistent_with_adjacency() {
        let g = random_graph(300, 2.0, 7);
        let dist = g.bfs_distances(NodeId(0));
        assert_eq!(dist[0], 0);
        for (u, v) in g.edges() {
            if dist[u] != usize::MAX && dist[v] != usize::MAX {
                assert!(
                    dist[u].abs_diff(dist[v]) <= 1,
                    "edge ({u},{v}) spans bfs levels"
                );
            }
        }
    }

    #[test]
    fn degree_summary_reports_isolated_nodes() {
        let pts = vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9)];
        let g = GeometricGraph::build(pts, 0.05);
        let s = g.degree_summary();
        assert_eq!(s.isolated, 2);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn standard_radius_matches_helper() {
        let g = random_graph(600, 1.4, 8);
        assert!((g.radius() - connectivity_radius(600, 1.4)).abs() < 1e-15);
    }

    #[test]
    fn empty_graph_is_connected_and_has_no_nearest() {
        let g = GeometricGraph::build(Vec::new(), 0.1);
        assert!(g.is_connected());
        assert!(g.nearest_node(Point::new(0.5, 0.5)).is_none());
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_radius() {
        let _ = GeometricGraph::build(vec![Point::new(0.5, 0.5)], 0.0);
    }
}
