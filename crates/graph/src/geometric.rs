//! Construction of the geometric random graph `G(n, r)`.

use crate::connectivity::ConnectivityReport;
use crate::csr::{CsrAdjacency, CsrBuilder};
use crate::degree::DegreeSummary;
use geogossip_geometry::point::NodeId;
use geogossip_geometry::topology::wrap_delta;
use geogossip_geometry::{unit_square, Point, Rect, Topology, UniformGrid};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A geometric graph over a fixed set of sensor positions.
///
/// Nodes are identified by their index into the position vector
/// ([`NodeId`]); edges connect every pair of nodes within Euclidean
/// distance `radius`. The adjacency structure is immutable after
/// construction — the paper's network never changes during a run.
///
/// Adjacency is stored in a flat CSR layout ([`CsrAdjacency`]): one `u32`
/// offset array plus one concatenated `u32` neighbor array, with the neighbor
/// *coordinates* mirrored into two CSR-aligned `f64` arrays. The greedy
/// routing inner loop ("which neighbor is closest to the target?") therefore
/// streams contiguous memory instead of pointer-chasing per-node `Vec`s and
/// gathering positions by index — see [`GeometricGraph::neighbor_block`].
/// A half-width row-blocked `f32` mirror of the same coordinates
/// ([`GeometricGraph::scan_block`]) additionally halves the memory traffic of
/// the routing hot loop's approximate argmin pass.
///
/// Besides adjacency the graph keeps the spatial grid it was built with, so
/// downstream code (greedy geographic routing, leader lookup) can answer
/// nearest-node queries without rebuilding an index.
///
/// # Example
///
/// ```
/// use geogossip_graph::GeometricGraph;
/// use geogossip_geometry::Point;
///
/// let pts = vec![
///     Point::new(0.1, 0.1),
///     Point::new(0.15, 0.1),
///     Point::new(0.9, 0.9),
/// ];
/// let g = GeometricGraph::build(pts, 0.1);
/// assert_eq!(g.degree(0.into()), 1);     // only its close companion
/// assert_eq!(g.degree(2.into()), 0);     // isolated far corner
/// assert!(!g.is_connected());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeometricGraph {
    positions: Vec<Point>,
    radius: f64,
    topology: Topology,
    adjacency: CsrAdjacency,
    /// `x` coordinate of each neighbor, aligned with the CSR neighbor array.
    nbr_x: Vec<f64>,
    /// `y` coordinate of each neighbor, aligned with the CSR neighbor array.
    nbr_y: Vec<f64>,
    /// Half-width scan mirror of the neighbor rows, row-blocked: row `i`
    /// occupies `3·offsets[i] .. 3·offsets[i+1]` as `[x_bits… y_bits… idx…]`
    /// — each coordinate rounded to `f32` and stored as its bit pattern, the
    /// neighbor indices copied alongside. The greedy-routing hot loop
    /// streams this **single** contiguous 12-byte-per-neighbor array per
    /// hop: the coordinate halves feed the vectorized approximate argmin
    /// (half the traffic of the two `f64` arrays), and the index third lets
    /// the walk resolve near-minimal candidates exactly against
    /// [`GeometricGraph::position`] (a table small enough to sit in L2/L3)
    /// without touching the cold `f64` mirrors at all. Derived data — always
    /// exactly `(nbr_x/nbr_y as f32).to_bits()` plus the CSR neighbor row
    /// (see [`GeometricGraph::scan_block`]).
    scan_rows: Vec<u32>,
    grid: UniformGrid,
    edge_count: usize,
}

/// Builds the row-blocked scan mirror from the CSR row and coordinate
/// arrays (see the `scan_rows` field docs for the layout).
fn build_scan_mirror(adjacency: &CsrAdjacency, nbr_x: &[f64], nbr_y: &[f64]) -> Vec<u32> {
    let mut mirror = Vec::with_capacity(nbr_x.len() * 3);
    for i in 0..adjacency.len() {
        let range = adjacency.neighbor_range(i);
        mirror.extend(nbr_x[range.clone()].iter().map(|&x| (x as f32).to_bits()));
        mirror.extend(nbr_y[range.clone()].iter().map(|&y| (y as f32).to_bits()));
        mirror.extend_from_slice(&adjacency.raw_neighbors()[range]);
    }
    mirror
}

impl GeometricGraph {
    /// Builds `G(n, r)` from explicit positions and a connectivity radius on
    /// the plain unit square (the paper's model).
    ///
    /// Construction uses a spatial grid with cell side `≥ r`, so the expected
    /// cost is `O(n + m)` where `m` is the number of edges.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite.
    pub fn build(positions: Vec<Point>, radius: f64) -> Self {
        Self::build_with_topology(positions, radius, Topology::UnitSquare)
    }

    /// Builds `G(n, r)` under an explicit [`Topology`].
    ///
    /// On [`Topology::Torus`] two sensors are adjacent when their wrapped
    /// distance is within `radius`, so boundary sensors get the same expected
    /// degree as bulk sensors; torus neighbor sets are always supersets of the
    /// unit-square neighbor sets at equal radius (enforced by
    /// `tests/torus_properties.rs`). Torus adjacency enumerates *wrapped grid
    /// cells* directly (`UniformGrid::for_each_candidate_range_torus`), so
    /// every cell — and therefore every neighbor — is visited at most once per
    /// row even at radii approaching `1/2`; rows need no dedup pass. Greedy
    /// routing and `nearest_node` likewise use the wrapped metric on the
    /// torus, so routing across the seam is modelled faithfully (see
    /// `geogossip_routing::greedy`).
    ///
    /// # Construction pipeline
    ///
    /// The build is a two-pass parallel pipeline over the spatial grid
    /// (cell side `radius / 3`, which keeps candidate windows ~37% smaller
    /// in area than radius-sized cells):
    ///
    /// 1. the node *positions* are mirrored into the grid's cell order once,
    ///    so candidate distance checks stream contiguous memory instead of
    ///    gathering `positions[j]` per candidate,
    /// 2. a parallel **degree pass** counts each node's neighbors — walking
    ///    the nodes in *cell order*, so consecutive queries share hot
    ///    candidate windows,
    /// 3. an exclusive prefix sum turns the counts into exact CSR `offsets`,
    /// 4. a parallel **fill pass** re-queries each node in *index order* —
    ///    so the output arrays are written strictly sequentially — sorting
    ///    each row by packed `(neighbor, slot)` keys against row-local
    ///    coordinate buffers (the coordinates are in hand from the distance
    ///    check; no post-sort position gather ever touches main memory).
    ///
    /// Both passes split their iteration space into one contiguous chunk per
    /// core, and every chunk's output is an independent pure function of
    /// `positions`, so the result is bit-identical to the preserved
    /// sequential reference build ([`GeometricGraph::build_reference`],
    /// pinned by `tests/build_pipeline_properties.rs`) regardless of thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite, or if a torus
    /// radius is `≥ 1/2` (wrap-around would make neighbor sets ambiguous).
    pub fn build_with_topology(positions: Vec<Point>, radius: f64, topology: Topology) -> Self {
        let chunks = rayon::current_num_threads().max(1);
        Self::build_two_pass(positions, radius, topology, chunks)
    }

    /// The two-pass pipeline behind [`GeometricGraph::build_with_topology`],
    /// with an explicit chunk count so tests can exercise the multi-chunk
    /// structure on any machine.
    #[doc(hidden)]
    pub fn build_two_pass(
        positions: Vec<Point>,
        radius: f64,
        topology: Topology,
        chunks: usize,
    ) -> Self {
        Self::build_two_pass_inner(positions, radius, topology, chunks, false)
    }

    /// [`GeometricGraph::build_two_pass`] with the `u64` row-key path forced,
    /// so tests can pin the wide-key fill against the `u32` fast path without
    /// building a 65 537-node graph.
    #[doc(hidden)]
    pub fn build_two_pass_wide_keys(
        positions: Vec<Point>,
        radius: f64,
        topology: Topology,
        chunks: usize,
    ) -> Self {
        Self::build_two_pass_inner(positions, radius, topology, chunks, true)
    }

    fn build_two_pass_inner(
        positions: Vec<Point>,
        radius: f64,
        topology: Topology,
        chunks: usize,
        wide_keys: bool,
    ) -> Self {
        let (grid, n) = Self::validate_and_grid(&positions, radius, topology);
        let chunk_len = n.div_ceil(chunks.max(1)).max(1);

        // Cell-ordered mirror of the positions, aligned with `grid.entries()`:
        // the candidates of one query cell are one contiguous slice of this
        // array, which turns the filter's memory traffic from random gathers
        // into linear streams (a ~4x difference for a million-node build on
        // one core of a machine with slow memory).
        let cell_pts: Vec<Point> = grid
            .entries()
            .iter()
            .map(|&e| positions[e as usize])
            .collect();
        let scan = NeighborScan {
            grid: &grid,
            cell_pts: &cell_pts,
            radius,
            topology,
        };

        // Pass 1: per-node degrees. Nodes are visited in cell order (slot
        // order), so each query's candidate windows overlap the previous
        // query's — the whole pass streams `cell_pts` roughly once instead
        // of refetching ~5 KB of windows per spatially-random node. Each
        // chunk counts a contiguous slot range into its own buffer.
        let entries = grid.entries();
        // One contiguous chunk per core; the same layout drives both passes
        // (pass 1 interprets a range as slots, pass 2 as rows — both spaces
        // have n elements).
        let chunk_ranges: Vec<Range<usize>> = (0..n)
            .step_by(chunk_len)
            .map(|lo| lo..(lo + chunk_len).min(n))
            .collect();
        let deg_parts: Vec<Vec<u32>> = chunk_ranges
            .clone()
            .into_par_iter()
            .map(|slots| {
                let mut degs = Vec::with_capacity(slots.len());
                for s in slots {
                    degs.push(scan.count_row(cell_pts[s]));
                }
                degs
            })
            .collect();

        // Scatter the slot-ordered counts to node order and prefix-sum them
        // into exact CSR offsets.
        let mut offsets = vec![0u32; n + 1];
        for (s, deg) in deg_parts.into_iter().flatten().enumerate() {
            offsets[entries[s] as usize + 1] = deg;
        }
        let mut acc = 0u64;
        for slot in offsets.iter_mut() {
            acc += u64::from(*slot);
            assert!(
                acc <= u32::MAX as u64,
                "CSR adjacency offsets are u32; too many edges"
            );
            *slot = acc as u32;
        }

        // Pass 2: fill neighbor indices + coordinates. Rows are produced in
        // index order so every chunk appends to its own output vectors
        // strictly sequentially (no scattered writes — the other half of the
        // memory-traffic story). Each row sorts packed (neighbor, slot) keys;
        // the coordinates are then recovered from the cell-ordered mirror at
        // the packed slot, whose ~5 KB of candidate windows the query just
        // streamed — a cache-hot gather at any n. Keys are `u32` when both
        // halves fit in 16 bits (n ≤ 65 536), halving the sort's memory
        // traffic exactly where whole-row sorting dominates the build.
        let offsets_ref = &offsets;
        let positions_ref = &positions;
        let scan_ref = &scan;
        let fill = |rows: Range<usize>| {
            if n <= (1usize << 16) && !wide_keys {
                fill_chunk::<u32>(scan_ref, positions_ref, offsets_ref, rows)
            } else {
                fill_chunk::<u64>(scan_ref, positions_ref, offsets_ref, rows)
            }
        };
        let mut parts: Vec<FillPart> = chunk_ranges.into_par_iter().map(fill).collect();

        let total = *offsets.last().expect("offsets non-empty") as usize;
        let (neighbors, nbr_x, nbr_y) = if parts.len() == 1 {
            let part = parts.pop().expect("one part");
            (part.nbrs, part.xs, part.ys)
        } else {
            let mut neighbors = Vec::with_capacity(total);
            let mut nbr_x = Vec::with_capacity(total);
            let mut nbr_y = Vec::with_capacity(total);
            for part in parts {
                neighbors.extend_from_slice(&part.nbrs);
                nbr_x.extend_from_slice(&part.xs);
                nbr_y.extend_from_slice(&part.ys);
            }
            (neighbors, nbr_x, nbr_y)
        };

        // Adjacency is symmetric under both metrics, so every undirected edge
        // contributed exactly two directed entries.
        debug_assert_eq!(total % 2, 0, "asymmetric adjacency");
        let edge_count = total / 2;
        let adjacency = CsrAdjacency::from_raw_parts(offsets, neighbors);
        let scan_rows = build_scan_mirror(&adjacency, &nbr_x, &nbr_y);
        GeometricGraph {
            positions,
            radius,
            topology,
            adjacency,
            nbr_x,
            nbr_y,
            scan_rows,
            grid,
            edge_count,
        }
    }

    /// The preserved sequential reference build — the pre-parallel
    /// implementation kept verbatim (nested-`Vec` spatial grid with its
    /// conservative candidate windows, one streaming [`CsrBuilder`] scan,
    /// image-queried torus adjacency with a sort+dedup per row, and a
    /// separate post-hoc coordinate mirror pass) — so that:
    ///
    /// * the two-pass parallel pipeline can be checked **bit-for-bit**
    ///   against an independent implementation (offsets, neighbors, mirrored
    ///   coordinates, edge count; `tests/build_pipeline_properties.rs`), and
    /// * `bench_baseline --append-build` measures the speedup on the same
    ///   tree and the same instances, like `legacy.rs` does for the tick.
    ///
    /// Not a hot path — use [`GeometricGraph::build_with_topology`].
    ///
    /// # Panics
    ///
    /// Same contract as [`GeometricGraph::build_with_topology`].
    pub fn build_reference(positions: Vec<Point>, radius: f64, topology: Topology) -> Self {
        Self::validate_params(&positions, radius, topology);
        let n = positions.len();
        let grid = ReferenceGrid::build(&positions, radius.max(1e-9));
        // Expected degree at the connectivity radius is Θ(log n); reserve for
        // it so the flat neighbor array grows without repeated reallocation.
        let expected_entries = if n > 1 {
            n * ((n as f64).ln().ceil() as usize + 4)
        } else {
            0
        };
        let mut builder = CsrBuilder::with_capacity(n, expected_entries);
        let mut edge_count = 0usize;
        let mut wrapped: Vec<usize> = Vec::new();
        for i in 0..n {
            builder.start_row();
            match topology {
                Topology::UnitSquare => {
                    for j in grid.neighbors_within(&positions, positions[i], radius) {
                        if j != i {
                            builder.push_neighbor(j);
                            if j > i {
                                edge_count += 1;
                            }
                        }
                    }
                }
                Topology::Torus => {
                    // Query the grid at every periodic image of p that can
                    // reach the unit square; a sensor within `radius` of any
                    // image is within wrapped distance `radius` of p. The
                    // clamped out-of-bounds queries stay complete because the
                    // reference grid's candidate span covers one extra cell
                    // and the cell side is at least `radius`.
                    let p = positions[i];
                    wrapped.clear();
                    for dx in [-1.0, 0.0, 1.0] {
                        for dy in [-1.0, 0.0, 1.0] {
                            let q = Point::new(p.x + dx, p.y + dy);
                            if q.x < -radius
                                || q.x > 1.0 + radius
                                || q.y < -radius
                                || q.y > 1.0 + radius
                            {
                                continue;
                            }
                            wrapped.extend(grid.neighbors_within(&positions, q, radius));
                        }
                    }
                    wrapped.sort_unstable();
                    wrapped.dedup();
                    let r2 = radius * radius;
                    for &j in &wrapped {
                        if j != i && topology.distance_squared(p, positions[j]) <= r2 {
                            builder.push_neighbor(j);
                            if j > i {
                                edge_count += 1;
                            }
                        }
                    }
                }
            }
        }
        let adjacency = builder.finish();
        // Mirror neighbor coordinates into CSR-aligned arrays (after the
        // builder sorted each row) so hot loops read them contiguously.
        let mut nbr_x = Vec::with_capacity(adjacency.entry_count());
        let mut nbr_y = Vec::with_capacity(adjacency.entry_count());
        for &j in adjacency.raw_neighbors() {
            let p = positions[j as usize];
            nbr_x.push(p.x);
            nbr_y.push(p.y);
        }
        // The graph still carries the *current* grid type for nearest-node
        // queries (and derives the same f32 scan mirror); only the adjacency
        // construction above is the preserved code path.
        let grid = UniformGrid::build(unit_square(), &positions, radius.max(1e-9));
        let scan_rows = build_scan_mirror(&adjacency, &nbr_x, &nbr_y);
        GeometricGraph {
            positions,
            radius,
            topology,
            adjacency,
            nbr_x,
            nbr_y,
            scan_rows,
            grid,
            edge_count,
        }
    }

    /// Shared construction preamble: parameter validation plus the spatial
    /// grid the two-pass build queries.
    ///
    /// The grid cell side is `radius / 3` rather than `radius`: a radius
    /// query then scans a 7×7 cell window of area `(7r/3)² ≈ 5.4 r²` instead
    /// of a 3×3 window of `9 r²` — ~40% fewer candidate distance checks, the
    /// dominant cost of construction. Queries at any radius stay complete
    /// (the window span adapts), and the grid's cell cap keeps the finer
    /// tiling at `O(n)` cells.
    fn validate_and_grid(
        positions: &[Point],
        radius: f64,
        topology: Topology,
    ) -> (UniformGrid, usize) {
        Self::validate_params(positions, radius, topology);
        let grid = UniformGrid::build(unit_square(), positions, (radius / 3.0).max(1e-9));
        (grid, positions.len())
    }

    /// Construction parameter checks shared by both build paths.
    fn validate_params(positions: &[Point], radius: f64, topology: Topology) {
        assert!(
            radius.is_finite() && radius > 0.0,
            "connectivity radius must be positive and finite"
        );
        assert!(
            topology == Topology::UnitSquare || radius < 0.5,
            "torus adjacency requires radius < 1/2"
        );
        assert!(
            positions.len() <= u32::MAX as usize,
            "CSR adjacency indexes nodes as u32"
        );
    }

    /// Builds the graph at the standard connectivity radius
    /// `r = c·sqrt(log n / n)` used throughout the paper.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two positions are supplied.
    pub fn build_at_connectivity_radius(positions: Vec<Point>, c: f64) -> Self {
        let r = geogossip_geometry::connectivity_radius(positions.len(), c);
        Self::build(positions, r)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The connectivity radius the graph was built with.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The surface topology the adjacency was built under.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The sensor positions, indexed by [`NodeId`].
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Position of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn position(&self, node: NodeId) -> Point {
        self.positions[node.index()]
    }

    /// The CSR adjacency structure.
    pub fn adjacency(&self) -> &CsrAdjacency {
        &self.adjacency
    }

    /// Neighbors of `node` (all nodes within the connectivity radius), sorted
    /// by index.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[u32] {
        self.adjacency.neighbors(node.index())
    }

    /// `node`'s neighbors together with their coordinates, as three parallel
    /// slices `(indices, xs, ys)` — the input to the allocation-free greedy
    /// routing scan, which streams these contiguous arrays instead of
    /// gathering `positions[j]` per neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbor_block(&self, node: NodeId) -> (&[u32], &[f64], &[f64]) {
        let range = self.adjacency.neighbor_range(node.index());
        (
            &self.adjacency.raw_neighbors()[range.clone()],
            &self.nbr_x[range.clone()],
            &self.nbr_y[range],
        )
    }

    /// The half-width scan view of `node`'s neighbor row: CSR-aligned
    /// `(x_bits, y_bits, indices)` slices of one contiguous row-blocked
    /// `u32` array.
    ///
    /// The first two slices are exactly the corresponding
    /// [`GeometricGraph::neighbor_block`] coordinates rounded to `f32` and
    /// stored as bit patterns (`f32::from_bits` recovers them for free;
    /// pinned by tests), so `|x32 − x| ≤ 2⁻²⁴` on the unit square; the third
    /// is the CSR neighbor row itself. The greedy-routing hot loop streams
    /// this single 12-byte-per-neighbor array per hop — the random-access
    /// memory traffic the per-hop argmin is bound by at large `n` — and
    /// resolves near-minimal candidates exactly from
    /// [`GeometricGraph::position`], never touching the cold `f64` mirrors.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn scan_block(&self, node: NodeId) -> (&[u32], &[u32], &[u32]) {
        let range = self.adjacency.neighbor_range(node.index());
        let row = &self.scan_rows[3 * range.start..3 * range.end];
        let (xs, rest) = row.split_at(range.len());
        let (ys, idx) = rest.split_at(range.len());
        (xs, ys, idx)
    }

    /// Degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency.degree(node.index())
    }

    /// Whether `a` and `b` are adjacent (within the connectivity radius).
    pub fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency.contains_edge(a.index(), b.index())
    }

    /// The spatial grid built over the node positions (cell side
    /// `radius / 3`, capped at `O(n)` cells — see
    /// [`UniformGrid::build`]).
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// The node nearest to an arbitrary position, under the metric the graph
    /// was built with (wrapped distance on the torus, so a target across the
    /// seam resolves to its true wrapped-nearest sensor).
    ///
    /// Returns `None` only for the empty graph. This is the primitive behind
    /// the Dimakis-style "route towards a uniformly random location and talk
    /// to the node nearest it" step.
    pub fn nearest_node(&self, target: Point) -> Option<NodeId> {
        match self.topology {
            Topology::UnitSquare => self.grid.nearest(&self.positions, target),
            Topology::Torus => self.grid.nearest_torus(&self.positions, target),
        }
        .map(NodeId)
    }

    /// Whether the graph is connected (single BFS component).
    ///
    /// The empty graph and the single-node graph count as connected.
    pub fn is_connected(&self) -> bool {
        self.adjacency.is_connected()
    }

    /// Connected components as lists of node indices.
    pub fn components(&self) -> Vec<Vec<usize>> {
        self.adjacency.components()
    }

    /// Connectivity summary (component count, largest component, isolated
    /// nodes).
    pub fn connectivity_report(&self) -> ConnectivityReport {
        ConnectivityReport::from_csr(&self.adjacency)
    }

    /// Degree summary statistics (min / mean / max / isolated count).
    pub fn degree_summary(&self) -> DegreeSummary {
        DegreeSummary::from_degrees(self.adjacency.degrees())
    }

    /// Breadth-first hop distances from `source` to every node
    /// (`usize::MAX` for unreachable nodes).
    ///
    /// Used by tests and by the routing experiments to compare greedy
    /// geographic paths against shortest paths.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn bfs_distances(&self, source: NodeId) -> Vec<usize> {
        self.adjacency.bfs_distances(source.index())
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.len()).flat_map(move |u| {
            self.adjacency
                .neighbors(u)
                .iter()
                .filter(move |&&v| v as usize > u)
                .map(move |&v| (u, v as usize))
        })
    }
}

/// One fill-pass chunk's output: the CSR entries of a contiguous row range,
/// appended sequentially and concatenated in chunk order afterwards.
struct FillPart {
    nbrs: Vec<u32>,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

/// The query primitive shared by the degree pass and the fill pass: candidate
/// cells from the grid, candidate *positions* from the cell-ordered mirror
/// (`cell_pts[slot]`, a linear stream), membership by the topology's metric.
/// Both passes call the same scan, so they agree on every row by
/// construction; only what they do with the hits differs.
struct NeighborScan<'a> {
    grid: &'a UniformGrid,
    /// Positions permuted into grid entry order, aligned with
    /// `grid.entries()`.
    cell_pts: &'a [Point],
    radius: f64,
    topology: Topology,
}

impl NeighborScan<'_> {
    /// Degree of the node at position `p` (its own entry excluded).
    ///
    /// Branch-free: every candidate contributes `(d² ≤ r²)` to a pure
    /// counting reduction (which the compiler vectorizes — acceptance at the
    /// connectivity radius is ~58%, the worst case for a branchy scan), and
    /// the node itself — always a candidate at distance zero — is subtracted
    /// at the end. No neighbor identity is ever loaded.
    #[inline]
    fn count_row(&self, p: Point) -> u32 {
        let cell_pts = self.cell_pts;
        let r2 = self.radius * self.radius;
        let mut hits = 0u32;
        match self.topology {
            Topology::UnitSquare => self.grid.for_each_candidate_range(p, self.radius, |range| {
                for q in &cell_pts[range] {
                    let dx = q.x - p.x;
                    let dy = q.y - p.y;
                    hits += u32::from(dx * dx + dy * dy <= r2);
                }
            }),
            Topology::Torus => self
                .grid
                .for_each_candidate_range_torus(p, self.radius, |range| {
                    for q in &cell_pts[range] {
                        let dx = wrap_delta(q.x - p.x);
                        let dy = wrap_delta(q.y - p.y);
                        hits += u32::from(dx * dx + dy * dy <= r2);
                    }
                }),
        }
        hits - 1
    }

    /// Collects the row of node `i` at position `p` into `keys` as packed
    /// `(neighbor, slot)` values, returning the row length (which always
    /// equals `expected`, the degree-pass count — asserted in debug builds).
    /// The buffer is compacted branch-free — every candidate is written
    /// unconditionally at the current cursor, and the cursor advances only
    /// for accepted neighbors, so `expected + 1` slots suffice (a rejected
    /// candidate after the final accept writes one past the row).
    /// Coordinates are *not* copied here: the packed slot recovers them from
    /// the cell-ordered mirror after the row sort, while the queried windows
    /// are still cache-hot.
    ///
    /// On the torus the wrapped-cell enumeration visits each grid cell at
    /// most once, so a neighbor reachable through several periodic images
    /// (radius near `1/2`) is still reported exactly once — rows need no
    /// dedup.
    #[inline]
    fn collect_row<K: PackedKey>(
        &self,
        i: usize,
        p: Point,
        expected: usize,
        keys: &mut Vec<K>,
    ) -> usize {
        let entries = self.grid.entries();
        let cell_pts = self.cell_pts;
        let r2 = self.radius * self.radius;
        if keys.len() < expected + 1 {
            keys.resize(expected + 1, K::default());
        }
        let mut t = 0usize;
        match self.topology {
            Topology::UnitSquare => self.grid.for_each_candidate_range(p, self.radius, |range| {
                for slot in range {
                    let q = cell_pts[slot];
                    let dx = q.x - p.x;
                    let dy = q.y - p.y;
                    let j = entries[slot];
                    keys[t] = K::pack(j, slot);
                    t += usize::from((dx * dx + dy * dy <= r2) & (j as usize != i));
                }
            }),
            Topology::Torus => self
                .grid
                .for_each_candidate_range_torus(p, self.radius, |range| {
                    for slot in range {
                        let q = cell_pts[slot];
                        let dx = wrap_delta(q.x - p.x);
                        let dy = wrap_delta(q.y - p.y);
                        let j = entries[slot];
                        keys[t] = K::pack(j, slot);
                        t += usize::from((dx * dx + dy * dy <= r2) & (j as usize != i));
                    }
                }),
        }
        t
    }
}

/// A row-sort key packing `(neighbor index, grid slot)` so that sorting keys
/// sorts rows by neighbor index while carrying the slot along for the
/// post-sort coordinate lookup. `u64` packs 32+32 bits and always works;
/// `u32` packs 16+16 bits and is used when `n ≤ 65 536` (both halves then
/// fit), halving the sort's memory traffic.
trait PackedKey: Copy + Ord + Default {
    /// Packs a neighbor index and its grid slot.
    fn pack(neighbor: u32, slot: usize) -> Self;
    /// The neighbor index.
    fn neighbor(self) -> u32;
    /// The grid slot (index into the cell-ordered position mirror).
    fn slot(self) -> usize;
}

impl PackedKey for u64 {
    #[inline(always)]
    fn pack(neighbor: u32, slot: usize) -> Self {
        (u64::from(neighbor) << 32) | slot as u64
    }
    #[inline(always)]
    fn neighbor(self) -> u32 {
        (self >> 32) as u32
    }
    #[inline(always)]
    fn slot(self) -> usize {
        (self & u64::from(u32::MAX)) as usize
    }
}

impl PackedKey for u32 {
    #[inline(always)]
    fn pack(neighbor: u32, slot: usize) -> Self {
        (neighbor << 16) | slot as u32
    }
    #[inline(always)]
    fn neighbor(self) -> u32 {
        self >> 16
    }
    #[inline(always)]
    fn slot(self) -> usize {
        (self & 0xffff) as usize
    }
}

/// Fills the CSR entries of one contiguous row range (pass 2 of the build):
/// query each row, sort its packed keys, recover coordinates from the
/// cell-ordered mirror. Generic over the key width so the `n ≤ 65 536` case
/// sorts `u32`s.
fn fill_chunk<K: PackedKey>(
    scan: &NeighborScan<'_>,
    positions: &[Point],
    offsets: &[u32],
    rows: Range<usize>,
) -> FillPart {
    let span = (offsets[rows.end] - offsets[rows.start]) as usize;
    let mut part = FillPart {
        nbrs: vec![0u32; span],
        xs: vec![0f64; span],
        ys: vec![0f64; span],
    };
    let mut keys: Vec<K> = Vec::new();
    let mut cursor = 0usize;
    for i in rows {
        let expected = (offsets[i + 1] - offsets[i]) as usize;
        let len = scan.collect_row(i, positions[i], expected, &mut keys);
        debug_assert_eq!(len, expected, "degree pass and fill pass disagree");
        let row = &mut keys[..len];
        row.sort_unstable();
        for &key in row.iter() {
            let q = scan.cell_pts[key.slot()];
            part.nbrs[cursor] = key.neighbor();
            part.xs[cursor] = q.x;
            part.ys[cursor] = q.y;
            cursor += 1;
        }
    }
    part
}

/// The spatial grid of the seed implementation, preserved verbatim for
/// [`GeometricGraph::build_reference`]: per-cell `Vec` buckets (one heap
/// allocation each), clamped query cells with a one-cell slack margin (5×5
/// candidate windows at the connectivity radius), no cell-count cap. Kept
/// private to the reference build — everything else uses [`UniformGrid`].
struct ReferenceGrid {
    bounds: Rect,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
    cells: Vec<Vec<usize>>,
}

impl ReferenceGrid {
    fn build(points: &[Point], cell_side: f64) -> Self {
        let bounds = unit_square();
        let mut cols = ((bounds.width() / cell_side).floor() as usize).max(1);
        let mut rows = ((bounds.height() / cell_side).floor() as usize).max(1);
        // The one deviation from the seed code: the cell-count cap, shared
        // with `UniformGrid` as a construction invariant so the preserved
        // path cannot abort on a tiny-but-valid radius either. It never binds
        // at benchmarked radii, so the preserved performance is unchanged.
        let cap = 1024usize.max(4 * points.len());
        if cols.saturating_mul(rows) > cap {
            let scale = (cap as f64 / (cols as f64 * rows as f64)).sqrt();
            cols = ((cols as f64 * scale).floor() as usize).max(1);
            rows = ((rows as f64 * scale).floor() as usize).max(1);
        }
        let cell_w = bounds.width() / cols as f64;
        let cell_h = bounds.height() / rows as f64;
        let mut cells = vec![Vec::new(); cols * rows];
        for (i, &p) in points.iter().enumerate() {
            cells[bounds.grid_index_of(p, cols, rows)].push(i);
        }
        ReferenceGrid {
            bounds,
            cols,
            rows,
            cell_w,
            cell_h,
            cells,
        }
    }

    fn neighbors_within<'a>(
        &'a self,
        points: &'a [Point],
        query: Point,
        radius: f64,
    ) -> impl Iterator<Item = usize> + 'a {
        let r2 = radius * radius;
        self.candidate_cells(query, radius)
            .flat_map(move |cell| self.cells[cell].iter().copied())
            .filter(move |&i| points[i].distance_squared(query) <= r2)
    }

    fn candidate_cells(&self, query: Point, radius: f64) -> impl Iterator<Item = usize> + '_ {
        let col_span = (radius / self.cell_w).ceil() as isize + 1;
        let row_span = (radius / self.cell_h).ceil() as isize + 1;
        let qc = self.bounds.grid_index_of(query, self.cols, self.rows);
        let (qcol, qrow) = ((qc % self.cols) as isize, (qc / self.cols) as isize);
        let cols = self.cols as isize;
        let rows = self.rows as isize;
        (-row_span..=row_span).flat_map(move |dr| {
            (-col_span..=col_span).filter_map(move |dc| {
                let c = qcol + dc;
                let r = qrow + dr;
                if c >= 0 && c < cols && r >= 0 && r < rows {
                    Some((r * cols + c) as usize)
                } else {
                    None
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::connectivity_radius;
    use geogossip_geometry::sampling::sample_unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_graph(n: usize, c: f64, seed: u64) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        GeometricGraph::build_at_connectivity_radius(pts, c)
    }

    #[test]
    fn adjacency_matches_brute_force() {
        let g = random_graph(300, 1.5, 1);
        let pts = g.positions().to_vec();
        let r = g.radius();
        for i in 0..pts.len() {
            let brute: Vec<u32> = (0..pts.len())
                .filter(|&j| j != i && pts[i].distance(pts[j]) <= r)
                .map(|j| j as u32)
                .collect();
            assert_eq!(g.neighbors(NodeId(i)), brute.as_slice());
        }
    }

    #[test]
    fn neighbor_block_coordinates_match_positions() {
        let g = random_graph(250, 1.5, 9);
        for i in 0..g.len() {
            let (nbrs, xs, ys) = g.neighbor_block(NodeId(i));
            assert_eq!(nbrs.len(), xs.len());
            assert_eq!(nbrs.len(), ys.len());
            for (k, &j) in nbrs.iter().enumerate() {
                let p = g.position(NodeId(j as usize));
                assert_eq!(xs[k], p.x);
                assert_eq!(ys[k], p.y);
            }
        }
    }

    #[test]
    fn scan_block_is_the_f32_rounding_of_neighbor_block() {
        let g = random_graph(250, 1.5, 9);
        for i in 0..g.len() {
            let (nbrs, xs, ys) = g.neighbor_block(NodeId(i));
            let (xs32, ys32, idx) = g.scan_block(NodeId(i));
            assert_eq!(xs32.len(), nbrs.len());
            assert_eq!(ys32.len(), nbrs.len());
            assert_eq!(idx, nbrs);
            for k in 0..nbrs.len() {
                assert_eq!(xs32[k], (xs[k] as f32).to_bits());
                assert_eq!(ys32[k], (ys[k] as f32).to_bits());
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = random_graph(400, 1.2, 2);
        for (u, v) in g.edges() {
            assert!(g.are_adjacent(NodeId(u), NodeId(v)));
            assert!(g.are_adjacent(NodeId(v), NodeId(u)));
        }
    }

    #[test]
    fn edge_count_matches_edges_iterator() {
        let g = random_graph(250, 1.3, 3);
        assert_eq!(g.edge_count(), g.edges().count());
        assert_eq!(g.adjacency().entry_count(), 2 * g.edge_count());
    }

    #[test]
    fn connected_at_large_radius_constant() {
        // c = 2 is comfortably above the connectivity threshold.
        let g = random_graph(800, 2.0, 4);
        assert!(g.is_connected());
        assert_eq!(g.components().len(), 1);
        assert!(g.connectivity_report().is_connected());
    }

    #[test]
    fn disconnected_at_tiny_radius() {
        let pts = sample_unit_square(200, &mut ChaCha8Rng::seed_from_u64(5));
        let g = GeometricGraph::build(pts, 0.001);
        assert!(!g.is_connected());
        assert!(g.components().len() > 1);
    }

    #[test]
    fn nearest_node_returns_a_valid_node() {
        let g = random_graph(150, 1.5, 6);
        let target = Point::new(0.42, 0.58);
        let nearest = g.nearest_node(target).unwrap();
        let d = g.position(nearest).distance(target);
        for i in 0..g.len() {
            assert!(g.position(NodeId(i)).distance(target) >= d - 1e-12);
        }
    }

    #[test]
    fn bfs_distances_are_consistent_with_adjacency() {
        let g = random_graph(300, 2.0, 7);
        let dist = g.bfs_distances(NodeId(0));
        assert_eq!(dist[0], 0);
        for (u, v) in g.edges() {
            if dist[u] != usize::MAX && dist[v] != usize::MAX {
                assert!(
                    dist[u].abs_diff(dist[v]) <= 1,
                    "edge ({u},{v}) spans bfs levels"
                );
            }
        }
    }

    #[test]
    fn degree_summary_reports_isolated_nodes() {
        let pts = vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9)];
        let g = GeometricGraph::build(pts, 0.05);
        let s = g.degree_summary();
        assert_eq!(s.isolated, 2);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn standard_radius_matches_helper() {
        let g = random_graph(600, 1.4, 8);
        assert!((g.radius() - connectivity_radius(600, 1.4)).abs() < 1e-15);
    }

    #[test]
    fn empty_graph_is_connected_and_has_no_nearest() {
        let g = GeometricGraph::build(Vec::new(), 0.1);
        assert!(g.is_connected());
        assert!(g.nearest_node(Point::new(0.5, 0.5)).is_none());
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_radius() {
        let _ = GeometricGraph::build(vec![Point::new(0.5, 0.5)], 0.0);
    }
}
