//! Property tests for the two-pass parallel construction pipeline.
//!
//! The parallel build (degree pass → exact prefix-summed offsets → parallel
//! row-slice fill) must be **bit-identical** to the preserved sequential
//! reference build across sizes, radii and topologies: same CSR offsets, same
//! sorted neighbor rows, same mirrored coordinate arrays, same edge count.
//! Determinism is structural — every row is a pure function of the positions
//! and lands in a disjoint slice — so these tests hold for any thread count.
//!
//! Also pinned here: the torus build reports each neighbor exactly once even
//! when a node reaches it through several periodic images (radius near `1/2`),
//! and the grid cell-count cap keeps tiny radii from allocating unbounded
//! memory.

use geogossip_geometry::point::NodeId;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Topology;
use geogossip_graph::GeometricGraph;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Asserts every observable construction output of `a` and `b` is identical.
fn assert_bit_identical(a: &GeometricGraph, b: &GeometricGraph) {
    assert_eq!(a.positions(), b.positions());
    assert_eq!(a.adjacency(), b.adjacency(), "CSR offsets/neighbors differ");
    assert_eq!(a.edge_count(), b.edge_count());
    for i in 0..a.len() {
        let (an, ax, ay) = a.neighbor_block(NodeId(i));
        let (bn, bx, by) = b.neighbor_block(NodeId(i));
        assert_eq!(an, bn, "neighbor row {i} differs");
        assert_eq!(ax, bx, "nbr_x row {i} differs");
        assert_eq!(ay, by, "nbr_y row {i} differs");
        let (ax32, ay32, aidx) = a.scan_block(NodeId(i));
        let (bx32, by32, bidx) = b.scan_block(NodeId(i));
        assert_eq!(ax32, bx32, "scan mirror xs row {i} differs");
        assert_eq!(ay32, by32, "scan mirror ys row {i} differs");
        assert_eq!(aidx, bidx, "scan mirror idx row {i} differs");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_build_matches_sequential_reference(
        n in 2usize..250,
        seed in 0u64..500,
        radius in 0.01f64..0.45,
        torus in 0usize..2,
    ) {
        let topology = if torus == 1 { Topology::Torus } else { Topology::UnitSquare };
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let parallel = GeometricGraph::build_with_topology(pts.clone(), radius, topology);
        let reference = GeometricGraph::build_reference(pts, radius, topology);
        assert_bit_identical(&parallel, &reference);
    }
}

#[test]
fn chunked_fill_is_identical_for_any_chunk_count() {
    // The chunk count only changes how the disjoint row slices are handed
    // out, never what lands in them — including chunk counts that do not
    // divide n and exceed n.
    for topology in [Topology::UnitSquare, Topology::Torus] {
        let n = 257;
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(9));
        let r = geogossip_geometry::connectivity_radius(n, 1.5);
        let one = GeometricGraph::build_two_pass(pts.clone(), r, topology, 1);
        for chunks in [2, 3, 7, 64, 300] {
            let many = GeometricGraph::build_two_pass(pts.clone(), r, topology, chunks);
            assert_bit_identical(&one, &many);
        }
    }
}

#[test]
fn wide_and_narrow_row_keys_build_identical_graphs() {
    // n ≤ 65 536 uses packed u32 row keys; larger n uses u64. The forced
    // wide-key build must be indistinguishable from the fast path.
    for topology in [Topology::UnitSquare, Topology::Torus] {
        let n = 400;
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(11));
        let r = geogossip_geometry::connectivity_radius(n, 1.5);
        let narrow = GeometricGraph::build_with_topology(pts.clone(), r, topology);
        for chunks in [1, 3] {
            let wide = GeometricGraph::build_two_pass_wide_keys(pts.clone(), r, topology, chunks);
            assert_bit_identical(&narrow, &wide);
        }
    }
}

#[test]
fn parallel_build_matches_reference_at_connectivity_radius_scale() {
    // One larger instance per topology, at the standard radius regime, so the
    // chunked fill actually spans several chunks' worth of rows.
    for (topology, seed) in [(Topology::UnitSquare, 1u64), (Topology::Torus, 2u64)] {
        let n = 6000;
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let r = geogossip_geometry::connectivity_radius(n, 1.5);
        let parallel = GeometricGraph::build_with_topology(pts.clone(), r, topology);
        let reference = GeometricGraph::build_reference(pts, r, topology);
        assert_bit_identical(&parallel, &reference);
        assert!(parallel.edge_count() > 0);
    }
}

#[test]
fn torus_rows_have_no_duplicates_at_near_half_radius() {
    // At radius 0.49 nearly every pair is adjacent and a node can reach the
    // same neighbor through several periodic images; the wrapped-cell query
    // must still report each neighbor exactly once per row.
    let n = 180;
    let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(3));
    let radius = 0.49;
    let g = GeometricGraph::build_with_topology(pts.clone(), radius, Topology::Torus);
    for i in 0..n {
        let row = g.neighbors(NodeId(i));
        assert!(
            row.windows(2).all(|w| w[0] < w[1]),
            "row {i} is not strictly ascending (duplicate or unsorted)"
        );
        let brute: Vec<u32> = (0..n)
            .filter(|&j| j != i && Topology::Torus.distance(pts[i], pts[j]) <= radius)
            .map(|j| j as u32)
            .collect();
        assert_eq!(row, brute.as_slice(), "row {i} mismatches brute force");
    }
    assert_eq!(
        g.adjacency().entry_count(),
        2 * g.edge_count(),
        "entry/edge bookkeeping broken by dedup"
    );
}

#[test]
fn tiny_radius_build_is_memory_bounded() {
    // Regression: radius 1e-7 once requested ~10^14 grid cells. The capped
    // grid keeps cell count at O(n) and the build completes instantly.
    let pts = sample_unit_square(100, &mut ChaCha8Rng::seed_from_u64(4));
    let g = GeometricGraph::build(pts, 1e-7);
    assert!(
        g.grid().cell_count() <= 1024,
        "cell cap violated: {}",
        g.grid().cell_count()
    );
    assert_eq!(g.edge_count(), 0);
    assert_eq!(g.len(), 100);
    // The reference build shares the same capped grid.
    let pts = sample_unit_square(100, &mut ChaCha8Rng::seed_from_u64(4));
    let r = GeometricGraph::build_reference(pts, 1e-7, Topology::UnitSquare);
    assert!(r.grid().cell_count() <= 1024);
}
