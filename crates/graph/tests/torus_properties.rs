//! Property tests for torus adjacency in `GeometricGraph`.
//!
//! Two invariants of the periodic-boundary build:
//!
//! 1. **Superset.** At equal radius every unit-square edge is also a torus
//!    edge (wrapping can only shorten distances) — the satellite invariant of
//!    the scenario redesign.
//! 2. **Exactness.** Torus adjacency equals the brute-force wrapped-distance
//!    predicate, i.e. the image-query construction misses nothing and adds
//!    nothing.

use geogossip_geometry::point::NodeId;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Topology;
use geogossip_graph::GeometricGraph;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn torus_neighbor_sets_are_supersets_of_unit_square_sets(
        n in 2usize..200,
        seed in 0u64..400,
        radius in 0.02f64..0.45,
    ) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let planar = GeometricGraph::build_with_topology(
            pts.clone(), radius, Topology::UnitSquare);
        let torus = GeometricGraph::build_with_topology(
            pts, radius, Topology::Torus);
        prop_assert_eq!(planar.topology(), Topology::UnitSquare);
        prop_assert_eq!(torus.topology(), Topology::Torus);
        for i in 0..n {
            let torus_row = torus.neighbors(NodeId(i));
            for &j in planar.neighbors(NodeId(i)) {
                prop_assert!(torus_row.binary_search(&j).is_ok(),
                    "edge ({i}, {j}) present on the unit square but missing on the torus");
            }
        }
        prop_assert!(torus.edge_count() >= planar.edge_count());
    }

    #[test]
    fn torus_adjacency_matches_brute_force_wrapped_distance(
        n in 2usize..150,
        seed in 0u64..400,
        radius in 0.02f64..0.45,
    ) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let torus = GeometricGraph::build_with_topology(
            pts.clone(), radius, Topology::Torus);
        for i in 0..n {
            let brute: Vec<u32> = (0..n)
                .filter(|&j| j != i
                    && Topology::Torus.distance(pts[i], pts[j]) <= radius)
                .map(|j| j as u32)
                .collect();
            prop_assert_eq!(torus.neighbors(NodeId(i)), brute.as_slice(),
                "adjacency mismatch at node {}", i);
        }
    }
}

#[test]
fn torus_connects_across_the_seam() {
    use geogossip_geometry::Point;
    let pts = vec![Point::new(0.02, 0.5), Point::new(0.98, 0.5)];
    let planar = GeometricGraph::build(pts.clone(), 0.1);
    let torus = GeometricGraph::build_with_topology(pts, 0.1, Topology::Torus);
    assert!(!planar.are_adjacent(NodeId(0), NodeId(1)));
    assert!(torus.are_adjacent(NodeId(0), NodeId(1)));
    assert!(torus.is_connected());
}

#[test]
#[should_panic(expected = "radius < 1/2")]
fn torus_rejects_half_square_radius() {
    use geogossip_geometry::Point;
    let pts = vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9)];
    let _ = GeometricGraph::build_with_topology(pts, 0.5, Topology::Torus);
}
