//! Property tests for the CSR adjacency refactor: on arbitrary random
//! instances, the flat CSR layout must agree exactly with the brute-force
//! O(n²) neighbor computation, and CSR-derived graph algorithms must agree
//! with independent oracles.

use geogossip_geometry::point::NodeId;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_graph::{CsrAdjacency, GeometricGraph, UnionFind};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CSR adjacency matches the brute-force O(n²) neighbor computation for
    /// arbitrary sizes, radii, and placements.
    #[test]
    fn csr_matches_brute_force(n in 1usize..250, seed in 0u64..1000, radius in 0.01f64..0.5) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let g = GeometricGraph::build(pts.clone(), radius);
        let mut entries = 0usize;
        for i in 0..n {
            let brute: Vec<u32> = (0..n)
                .filter(|&j| j != i && pts[i].distance(pts[j]) <= radius)
                .map(|j| j as u32)
                .collect();
            prop_assert_eq!(g.neighbors(NodeId(i)), brute.as_slice());
            prop_assert_eq!(g.degree(NodeId(i)), brute.len());
            entries += brute.len();
        }
        prop_assert_eq!(g.adjacency().entry_count(), entries);
        prop_assert_eq!(2 * g.edge_count(), entries);
    }

    /// The CSR-aligned neighbor coordinate arrays mirror the position table
    /// exactly.
    #[test]
    fn neighbor_blocks_mirror_positions(n in 1usize..200, seed in 0u64..500) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let g = GeometricGraph::build(pts, 0.2);
        for i in 0..n {
            let (nbrs, xs, ys) = g.neighbor_block(NodeId(i));
            prop_assert_eq!(nbrs, g.neighbors(NodeId(i)));
            for (k, &j) in nbrs.iter().enumerate() {
                let p = g.position(NodeId(j as usize));
                prop_assert_eq!(xs[k], p.x);
                prop_assert_eq!(ys[k], p.y);
            }
        }
    }

    /// CSR round-trips through explicit lists.
    #[test]
    fn from_lists_round_trips(n in 0usize..120, seed in 0u64..500) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let g = GeometricGraph::build(pts, 0.15);
        let lists: Vec<Vec<usize>> = (0..n)
            .map(|u| g.neighbors(NodeId(u)).iter().map(|&v| v as usize).collect())
            .collect();
        let rebuilt = CsrAdjacency::from_lists(&lists);
        prop_assert_eq!(&rebuilt, g.adjacency());
    }

    /// CSR component structure agrees with a union-find oracle fed the same
    /// edges.
    #[test]
    fn components_match_union_find(n in 1usize..250, seed in 0u64..500, radius in 0.02f64..0.3) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let g = GeometricGraph::build(pts, radius);
        let mut uf = UnionFind::new(n);
        for (u, v) in g.edges() {
            uf.union(u, v);
        }
        let comps = g.components();
        prop_assert_eq!(comps.len(), uf.component_count());
        prop_assert_eq!(g.is_connected(), uf.component_count() <= 1);
        let mut covered: Vec<usize> = comps.concat();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..n).collect::<Vec<_>>());
    }
}
