//! Property-based tests on the geometric substrate: the hierarchical
//! partition's cover/disjointness invariants, the branching rule, and the
//! grid's nearest-neighbor queries.

use geogossip_geometry::partition::nearest_even_square;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::{unit_square, PartitionConfig, Point, SquarePartition, UniformGrid};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The branching rule always returns the square of an even number, at
    /// least 4, and within one "step" of the target value.
    #[test]
    fn nearest_even_square_is_an_even_square(x in 0.0f64..1e6) {
        let k = nearest_even_square(x);
        prop_assert!(k >= 4);
        let root = (k as f64).sqrt().round() as usize;
        prop_assert_eq!(root * root, k);
        prop_assert_eq!(root % 2, 0);
    }

    /// Leaf rectangles tile the unit square: areas sum to 1 and every sampled
    /// probe point is contained in at least one leaf.
    #[test]
    fn leaves_tile_the_unit_square(n in 1usize..600, seed in 0u64..300) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let partition = SquarePartition::build(&pts, PartitionConfig::practical(n));
        let area: f64 = partition.leaves().map(|c| c.rect().area()).sum();
        prop_assert!((area - 1.0).abs() < 1e-6);
        let probes = sample_unit_square(16, &mut ChaCha8Rng::seed_from_u64(seed ^ 0xff));
        for p in probes {
            prop_assert!(partition.leaves().any(|c| c.rect().contains(p)));
        }
    }

    /// Cell depths never exceed the configured maximum and expected counts are
    /// positive and decrease strictly along any root-to-leaf path.
    #[test]
    fn expected_counts_decrease_with_depth(n in 16usize..2000, seed in 0u64..100) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let partition = SquarePartition::build(&pts, PartitionConfig::practical(n));
        for cell in partition.cells() {
            prop_assert!(cell.depth() <= partition.depth());
            prop_assert!(cell.expected_count() > 0.0);
            if let Some(parent) = cell.parent() {
                prop_assert!(cell.expected_count() < partition.cell(parent).expected_count());
            }
        }
    }

    /// The grid's nearest query agrees with brute force for arbitrary probe
    /// positions (including ones outside the unit square's interior lattice).
    #[test]
    fn grid_nearest_matches_brute_force(
        n in 1usize..300,
        seed in 0u64..300,
        qx in -0.2f64..1.2,
        qy in -0.2f64..1.2,
    ) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let grid = UniformGrid::build(unit_square(), &pts, 0.07);
        let q = Point::new(qx, qy).clamp_unit();
        let got = grid.nearest(&pts, q).unwrap();
        let best = pts
            .iter()
            .map(|p| p.distance_squared(q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((pts[got].distance_squared(q) - best).abs() < 1e-12);
    }
}
