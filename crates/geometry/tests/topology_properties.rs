//! Property tests for the torus topology.
//!
//! The satellite invariant of the scenario redesign: at equal radius, a
//! point's torus neighborhood is a **superset** of its unit-square
//! neighborhood, because wrapping can only shorten distances. The graph crate
//! has the companion test at the adjacency level
//! (`crates/graph/tests/torus_properties.rs`).

use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::Topology;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wrapping never increases a distance.
    #[test]
    fn torus_distance_is_dominated_by_euclidean(
        n in 2usize..150,
        seed in 0u64..500,
    ) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        for i in 0..n {
            for j in (i + 1)..n {
                let torus = Topology::Torus.distance(pts[i], pts[j]);
                let plane = Topology::UnitSquare.distance(pts[i], pts[j]);
                prop_assert!(torus <= plane + 1e-12,
                    "torus {torus} > euclidean {plane} for pair ({i}, {j})");
            }
        }
    }

    /// Torus neighbor sets contain the unit-square neighbor sets at equal
    /// radius, for every point of a random deployment.
    #[test]
    fn torus_neighbor_sets_are_supersets(
        n in 2usize..150,
        seed in 0u64..500,
        radius in 0.01f64..0.45,
    ) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        for i in 0..n {
            for j in 0..n {
                if j == i {
                    continue;
                }
                let planar_neighbor =
                    Topology::UnitSquare.distance(pts[i], pts[j]) <= radius;
                let torus_neighbor = Topology::Torus.distance(pts[i], pts[j]) <= radius;
                prop_assert!(!planar_neighbor || torus_neighbor,
                    "({i}, {j}) adjacent on the unit square but not on the torus");
            }
        }
    }

    /// The torus metric is symmetric and respects the half-diagonal diameter.
    #[test]
    fn torus_metric_sanity(
        ax in 0.0f64..1.0, ay in 0.0f64..1.0,
        bx in 0.0f64..1.0, by in 0.0f64..1.0,
    ) {
        let a = geogossip_geometry::Point::new(ax, ay);
        let b = geogossip_geometry::Point::new(bx, by);
        let ab = Topology::Torus.distance(a, b);
        prop_assert!((ab - Topology::Torus.distance(b, a)).abs() < 1e-15);
        prop_assert!(ab <= (0.5f64.powi(2) * 2.0).sqrt() + 1e-12);
        prop_assert!(ab >= 0.0);
    }
}
