//! The hierarchical square partition of Section 4.1 of the paper.
//!
//! The unit square `□` is split into `n₁` sub-squares, where `n₁` is the
//! integer nearest to `√n` that is the square of an even number. Any sub-square
//! whose *expected* sensor population still exceeds a threshold is split again
//! by the same rule (applied to its expected population), producing a tree of
//! depth `ℓ − 1 ~ log log n`. The sensor nearest the center of a square is its
//! *leader* `s(□)` (Definition 1), and leaders are assigned levels
//! `ℓ − depth`, with ordinary sensors at level 0.
//!
//! The paper's split threshold is `(log n)^8`, which exceeds `n` for every
//! simulable `n`; [`PartitionConfig::practical`] therefore substitutes a
//! laptop-scale threshold (`max(16, log²n)`) while
//! [`PartitionConfig::paper_faithful`] keeps the literal constant. DESIGN.md §2
//! documents this substitution.

use crate::point::{NodeId, Point};
use crate::rect::Rect;
use crate::unit_square;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cell in the hierarchical partition: the path of child
/// indices from the root, `□_{i₁…i_r}` in the paper's notation.
///
/// The root square `□` has the empty path.
///
/// # Example
///
/// ```
/// use geogossip_geometry::CellId;
/// let id = CellId::from_path(vec![3, 1]);
/// assert_eq!(id.depth(), 2);
/// assert_eq!(format!("{id}"), "□[3.1]");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct CellId {
    path: Vec<u32>,
}

impl CellId {
    /// The root cell (the whole unit square).
    pub fn root() -> Self {
        CellId { path: Vec::new() }
    }

    /// Builds a cell id from an explicit child-index path.
    pub fn from_path(path: Vec<u32>) -> Self {
        CellId { path }
    }

    /// The child-index path from the root.
    pub fn path(&self) -> &[u32] {
        &self.path
    }

    /// Depth of the cell (`r` in `□_{i₁…i_r}`); the root has depth 0.
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// The id of the child obtained by appending `index` to the path.
    pub fn child(&self, index: u32) -> CellId {
        let mut path = self.path.clone();
        path.push(index);
        CellId { path }
    }

    /// The id of the parent cell, or `None` for the root.
    pub fn parent(&self) -> Option<CellId> {
        if self.path.is_empty() {
            None
        } else {
            Some(CellId {
                path: self.path[..self.path.len() - 1].to_vec(),
            })
        }
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "□")
        } else {
            let parts: Vec<String> = self.path.iter().map(|p| p.to_string()).collect();
            write!(f, "□[{}]", parts.join("."))
        }
    }
}

/// Rule deciding when a cell is split further.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplitRule {
    /// Split while the expected population exceeds a fixed threshold.
    Threshold(f64),
    /// Split while the expected population exceeds `(log n)^8`, the paper's
    /// literal constant (Section 4.1). For any simulable `n` this yields a
    /// hierarchy of depth 1 (only the top-level `~√n` split).
    PaperFaithful,
    /// Never split below the top level; the result is exactly the Section 3
    /// overview: a single level of `~√n` cells.
    TopLevelOnly,
}

/// Configuration for building a [`SquarePartition`].
///
/// # Example
///
/// ```
/// use geogossip_geometry::PartitionConfig;
/// let cfg = PartitionConfig::practical(4096);
/// assert_eq!(cfg.n(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    n: usize,
    rule: SplitRule,
    max_depth: usize,
}

impl PartitionConfig {
    /// Laptop-scale configuration: split while the expected population exceeds
    /// `max(16, 4·ln n)`, capped at 8 levels. This preserves the paper's
    /// `Θ(log log n)` depth (poly-logarithmic leaf populations) at sizes a
    /// simulation can actually reach; see DESIGN.md §2, substitution 2.
    pub fn practical(n: usize) -> Self {
        let ln = (n.max(2) as f64).ln();
        PartitionConfig {
            n,
            rule: SplitRule::Threshold((4.0 * ln).max(16.0)),
            max_depth: 8,
        }
    }

    /// The paper's literal `(log n)^8` split threshold (Section 4.1).
    pub fn paper_faithful(n: usize) -> Self {
        PartitionConfig {
            n,
            rule: SplitRule::PaperFaithful,
            max_depth: 8,
        }
    }

    /// A single level of `~√n` cells, matching the Section 3 overview.
    pub fn top_level_only(n: usize) -> Self {
        PartitionConfig {
            n,
            rule: SplitRule::TopLevelOnly,
            max_depth: 1,
        }
    }

    /// Explicit threshold configuration.
    pub fn with_threshold(n: usize, threshold: f64) -> Self {
        PartitionConfig {
            n,
            rule: SplitRule::Threshold(threshold),
            max_depth: 8,
        }
    }

    /// Caps the recursion depth (levels below the root).
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth.max(1);
        self
    }

    /// The number of sensors the configuration was created for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The split rule in force.
    pub fn rule(&self) -> SplitRule {
        self.rule
    }

    /// Whether a cell with expected population `expected` at depth `depth`
    /// should be split further.
    fn should_split(&self, expected: f64, depth: usize) -> bool {
        if depth >= self.max_depth {
            return false;
        }
        let threshold = match self.rule {
            SplitRule::Threshold(t) => t,
            SplitRule::PaperFaithful => {
                let ln = (self.n.max(2) as f64).ln();
                ln.powi(8)
            }
            SplitRule::TopLevelOnly => return depth == 0,
        };
        expected > threshold
    }
}

/// The integer nearest to `x` that is the square of an even number, and at
/// least 4 (the paper's `n_r` branching factors; Section 4.1).
///
/// # Example
///
/// ```
/// use geogossip_geometry::partition::nearest_even_square;
/// assert_eq!(nearest_even_square(30.0), 36);  // 6² beats 4²
/// assert_eq!(nearest_even_square(17.0), 16);  // 4² beats 6²
/// assert_eq!(nearest_even_square(1.0), 4);    // floor of 4
/// ```
pub fn nearest_even_square(x: f64) -> usize {
    if !x.is_finite() || x <= 4.0 {
        return 4;
    }
    let k = (x.sqrt() / 2.0).round().max(1.0) as usize;
    let candidates = [k.saturating_sub(1).max(1), k, k + 1];
    candidates
        .iter()
        .map(|&k| (2 * k) * (2 * k))
        .min_by(|a, b| {
            let da = (*a as f64 - x).abs();
            let db = (*b as f64 - x).abs();
            da.partial_cmp(&db).unwrap()
        })
        .unwrap()
        .max(4)
}

/// One square of the hierarchical partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    id: CellId,
    rect: Rect,
    depth: usize,
    expected_count: f64,
    parent: Option<usize>,
    children: Vec<usize>,
    members: Vec<usize>,
    leader: Option<usize>,
}

impl Cell {
    /// Identifier (path) of the cell.
    pub fn id(&self) -> &CellId {
        &self.id
    }

    /// Spatial extent of the cell.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Depth `r` of the cell (root = 0).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Expected sensor population `E#(□)` of the cell under uniform placement.
    pub fn expected_count(&self) -> f64 {
        self.expected_count
    }

    /// Index of the parent cell in the partition's cell arena, `None` for the
    /// root.
    pub fn parent(&self) -> Option<usize> {
        self.parent
    }

    /// Arena indices of the child cells (empty for leaves).
    pub fn children(&self) -> &[usize] {
        &self.children
    }

    /// Whether the cell is a leaf of the hierarchy.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Indices of the sensors located inside the cell.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The leader `s(□)`: the member sensor closest to the cell center, if the
    /// cell is non-empty.
    pub fn leader(&self) -> Option<NodeId> {
        self.leader.map(NodeId)
    }
}

/// The hierarchical square partition of the unit square, with per-cell
/// membership and leaders.
///
/// Cells are stored in an arena (`Vec<Cell>`); index 0 is always the root.
///
/// # Example
///
/// ```
/// use geogossip_geometry::{PartitionConfig, SquarePartition};
/// use geogossip_geometry::sampling::sample_unit_square;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let pts = sample_unit_square(512, &mut ChaCha8Rng::seed_from_u64(2));
/// let part = SquarePartition::build(&pts, PartitionConfig::practical(pts.len()));
/// assert!(part.levels() >= 2);
/// let root = part.cell(0);
/// assert_eq!(root.members().len(), 512);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SquarePartition {
    cells: Vec<Cell>,
    config: PartitionConfig,
    /// `leaf_of[i]` is the arena index of the leaf cell containing sensor `i`.
    leaf_of: Vec<usize>,
    /// `level_of[i]` is the paper's level of sensor `i` (0 = ordinary sensor).
    level_of: Vec<usize>,
    /// Number of levels `ℓ = 1 + max depth`.
    levels: usize,
}

impl SquarePartition {
    /// Builds the partition for the given sensor positions.
    ///
    /// The branching factor at each level follows the paper: the integer
    /// nearest to the square root of the *expected* population that is the
    /// square of an even number. Splitting stops according to
    /// [`PartitionConfig`].
    pub fn build(points: &[Point], config: PartitionConfig) -> Self {
        let n = points.len();
        let root_expected = n as f64;
        let mut cells = vec![Cell {
            id: CellId::root(),
            rect: unit_square(),
            depth: 0,
            expected_count: root_expected,
            parent: None,
            children: Vec::new(),
            members: (0..n).collect(),
            leader: None,
        }];

        // Breadth-first expansion of the cell arena.
        let mut frontier = vec![0usize];
        while let Some(cell_idx) = frontier.pop() {
            let (expected, depth) = {
                let c = &cells[cell_idx];
                (c.expected_count, c.depth)
            };
            if !config.should_split(expected, depth) {
                continue;
            }
            let branch = nearest_even_square(expected.sqrt());
            let side = (branch as f64).sqrt().round() as usize;
            let child_rects = cells[cell_idx].rect.split_grid(side, side);
            let child_expected = expected / branch as f64;

            // Distribute members among children.
            let parent_rect = cells[cell_idx].rect;
            let members = std::mem::take(&mut cells[cell_idx].members);
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); branch];
            for &m in &members {
                let idx = parent_rect.grid_index_of(points[m], side, side);
                buckets[idx].push(m);
            }
            cells[cell_idx].members = members;

            let parent_id = cells[cell_idx].id.clone();
            for (child_pos, (rect, bucket)) in child_rects.into_iter().zip(buckets).enumerate() {
                let child_idx = cells.len();
                cells.push(Cell {
                    id: parent_id.child(child_pos as u32),
                    rect,
                    depth: depth + 1,
                    expected_count: child_expected,
                    parent: Some(cell_idx),
                    children: Vec::new(),
                    members: bucket,
                    leader: None,
                });
                cells[cell_idx].children.push(child_idx);
                frontier.push(child_idx);
            }
        }

        // Leaders: member nearest to the cell center.
        for cell in cells.iter_mut() {
            let center = cell.rect.center();
            cell.leader = cell
                .members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    points[a]
                        .distance_squared(center)
                        .partial_cmp(&points[b].distance_squared(center))
                        .unwrap()
                })
                .filter(|_| !cell.members.is_empty());
        }

        let max_depth = cells.iter().map(|c| c.depth).max().unwrap_or(0);
        let levels = max_depth + 1;

        // Leaf assignment per sensor.
        let mut leaf_of = vec![0usize; n];
        for (idx, cell) in cells.iter().enumerate() {
            if cell.is_leaf() {
                for &m in &cell.members {
                    leaf_of[m] = idx;
                }
            }
        }

        // Level assignment: leader of a depth-r cell has level ℓ − r; ordinary
        // sensors have level 0. When a sensor leads several cells (possible at
        // small n although w.h.p. unique, Section 4.1), it keeps the highest
        // level; `leader_conflicts` reports how often this happens.
        let mut level_of = vec![0usize; n];
        for cell in &cells {
            if let Some(NodeId(leader)) = cell.leader() {
                let level = levels - cell.depth;
                if level > level_of[leader] {
                    level_of[leader] = level;
                }
            }
        }

        SquarePartition {
            cells,
            config,
            leaf_of,
            level_of,
            levels,
        }
    }

    /// The configuration the partition was built with.
    pub fn config(&self) -> PartitionConfig {
        self.config
    }

    /// Number of levels `ℓ = 1 + max cell depth` (the paper's `ℓ`).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Maximum cell depth (`ℓ − 1`).
    pub fn depth(&self) -> usize {
        self.levels - 1
    }

    /// Total number of cells in the hierarchy (including the root).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The cell stored at arena index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn cell(&self, idx: usize) -> &Cell {
        &self.cells[idx]
    }

    /// All cells, in arena order (root first, then breadth-first-ish).
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Iterator over the leaf cells.
    pub fn leaves(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter().filter(|c| c.is_leaf())
    }

    /// Iterator over `(arena index, cell)` pairs at a given depth.
    pub fn cells_at_depth(&self, depth: usize) -> impl Iterator<Item = (usize, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.depth == depth)
    }

    /// Arena index of the leaf cell containing sensor `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the point set the partition was
    /// built from.
    pub fn leaf_of(&self, node: NodeId) -> usize {
        self.leaf_of[node.index()]
    }

    /// The paper's level of sensor `node` (0 for ordinary sensors, `ℓ` for the
    /// root leader).
    pub fn level_of(&self, node: NodeId) -> usize {
        self.level_of[node.index()]
    }

    /// The root leader `s(□)`, if any sensor exists.
    pub fn root_leader(&self) -> Option<NodeId> {
        self.cells[0].leader()
    }

    /// Number of sensors that lead more than one square.
    ///
    /// The paper argues this is zero w.h.p. because cell centers are well
    /// separated; at small `n` collisions can occur, and experiments report
    /// this count (experiment E10).
    pub fn leader_conflicts(&self) -> usize {
        let mut lead_count = std::collections::HashMap::new();
        for cell in &self.cells {
            if let Some(NodeId(l)) = cell.leader() {
                *lead_count.entry(l).or_insert(0usize) += 1;
            }
        }
        lead_count.values().filter(|&&c| c > 1).count()
    }

    /// Sibling cells of the cell at arena index `idx` (cells sharing its
    /// parent), excluding the cell itself. The root has no siblings.
    pub fn siblings(&self, idx: usize) -> Vec<usize> {
        match self.cells[idx].parent {
            None => Vec::new(),
            Some(p) => self.cells[p]
                .children
                .iter()
                .copied()
                .filter(|&c| c != idx)
                .collect(),
        }
    }

    /// Arena index of the depth-`depth` ancestor (or the cell itself when its
    /// depth equals `depth`).
    ///
    /// # Panics
    ///
    /// Panics if the cell is shallower than `depth`.
    pub fn ancestor_at_depth(&self, mut idx: usize, depth: usize) -> usize {
        assert!(
            self.cells[idx].depth >= depth,
            "cell at depth {} has no ancestor at depth {depth}",
            self.cells[idx].depth
        );
        while self.cells[idx].depth > depth {
            idx = self.cells[idx]
                .parent
                .expect("non-root cell must have a parent");
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::sample_unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(n: usize, seed: u64) -> (Vec<Point>, SquarePartition) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let part = SquarePartition::build(&pts, PartitionConfig::practical(n));
        (pts, part)
    }

    #[test]
    fn nearest_even_square_examples() {
        assert_eq!(nearest_even_square(4.0), 4);
        assert_eq!(nearest_even_square(16.0), 16);
        assert_eq!(nearest_even_square(32.0), 36);
        assert_eq!(nearest_even_square(20.0), 16);
        assert_eq!(nearest_even_square(100.0), 100);
        assert_eq!(nearest_even_square(0.5), 4);
    }

    #[test]
    fn root_contains_everything() {
        let (_, part) = build(300, 1);
        assert_eq!(part.cell(0).members().len(), 300);
        assert_eq!(part.cell(0).depth(), 0);
        assert!(part.cell(0).parent().is_none());
    }

    #[test]
    fn leaves_partition_the_sensors() {
        let (_, part) = build(777, 2);
        let total: usize = part.leaves().map(|c| c.members().len()).sum();
        assert_eq!(total, 777);
        // No sensor appears in two different leaves.
        let mut seen = vec![false; 777];
        for leaf in part.leaves() {
            for &m in leaf.members() {
                assert!(!seen[m], "sensor {m} in two leaves");
                seen[m] = true;
            }
        }
    }

    #[test]
    fn leaves_cover_the_unit_square_area() {
        let (_, part) = build(500, 3);
        let area: f64 = part.leaves().map(|c| c.rect().area()).sum();
        assert!((area - 1.0).abs() < 1e-9);
    }

    #[test]
    fn members_lie_inside_their_cells() {
        let (pts, part) = build(400, 4);
        for cell in part.cells() {
            for &m in cell.members() {
                assert!(cell.rect().contains(pts[m]), "sensor {m} outside its cell");
            }
        }
    }

    #[test]
    fn leader_is_member_closest_to_center() {
        let (pts, part) = build(600, 5);
        for cell in part.cells() {
            if let Some(leader) = cell.leader() {
                let c = cell.rect().center();
                let ld = pts[leader.index()].distance_squared(c);
                for &m in cell.members() {
                    assert!(pts[m].distance_squared(c) >= ld - 1e-15);
                }
            } else {
                assert!(cell.members().is_empty());
            }
        }
    }

    #[test]
    fn top_level_only_has_two_levels() {
        let pts = sample_unit_square(1000, &mut ChaCha8Rng::seed_from_u64(6));
        let part = SquarePartition::build(&pts, PartitionConfig::top_level_only(1000));
        assert_eq!(part.levels(), 2);
        // Top-level branching is the nearest even square to sqrt(1000) ~ 31.6 → 36.
        assert_eq!(part.cells_at_depth(1).count(), 36);
    }

    #[test]
    fn paper_faithful_threshold_gives_single_split_at_small_n() {
        let pts = sample_unit_square(2000, &mut ChaCha8Rng::seed_from_u64(7));
        let part = SquarePartition::build(&pts, PartitionConfig::paper_faithful(2000));
        // (ln 2000)^8 ≈ 1.1e7 > 2000, so not even the root splits... except the
        // root: should_split compares 2000 > 1.1e7 which is false, so the
        // hierarchy is trivial (a single cell).
        assert_eq!(part.levels(), 1);
        assert_eq!(part.num_cells(), 1);
    }

    #[test]
    fn practical_config_recurses_at_moderate_n() {
        let (_, part) = build(4096, 8);
        assert!(
            part.levels() >= 3,
            "expected at least 3 levels, got {}",
            part.levels()
        );
    }

    #[test]
    fn leaf_of_is_consistent_with_membership() {
        let (_, part) = build(350, 9);
        for (idx, cell) in part.cells().iter().enumerate() {
            if cell.is_leaf() {
                for &m in cell.members() {
                    assert_eq!(part.leaf_of(NodeId(m)), idx);
                }
            }
        }
    }

    #[test]
    fn levels_assigned_consistently() {
        let (_, part) = build(800, 10);
        let levels = part.levels();
        // Root leader has the top level.
        let root_leader = part.root_leader().unwrap();
        assert_eq!(part.level_of(root_leader), levels);
        // Every level is at most ℓ.
        for i in 0..800 {
            assert!(part.level_of(NodeId(i)) <= levels);
        }
        // Some ordinary sensors exist at level 0.
        assert!((0..800).any(|i| part.level_of(NodeId(i)) == 0));
    }

    #[test]
    fn ancestor_at_depth_walks_up() {
        let (_, part) = build(2048, 11);
        let leaf_idx = part
            .cells()
            .iter()
            .enumerate()
            .find(|(_, c)| c.is_leaf() && c.depth() >= 2)
            .map(|(i, _)| i)
            .expect("expected a leaf at depth >= 2");
        let anc = part.ancestor_at_depth(leaf_idx, 1);
        assert_eq!(part.cell(anc).depth(), 1);
        let root = part.ancestor_at_depth(leaf_idx, 0);
        assert_eq!(root, 0);
    }

    #[test]
    fn siblings_share_parent() {
        let (_, part) = build(900, 12);
        let child = part.cell(0).children()[0];
        let sibs = part.siblings(child);
        assert!(!sibs.is_empty());
        for s in sibs {
            assert_eq!(part.cell(s).parent(), Some(0));
        }
        assert!(part.siblings(0).is_empty());
    }

    #[test]
    fn empty_point_set_builds_trivial_partition() {
        let part = SquarePartition::build(&[], PartitionConfig::practical(0));
        assert_eq!(part.num_cells(), 1);
        assert!(part.root_leader().is_none());
        assert_eq!(part.levels(), 1);
    }

    #[test]
    fn cell_id_navigation() {
        let id = CellId::root().child(2).child(5);
        assert_eq!(id.depth(), 2);
        assert_eq!(id.parent().unwrap(), CellId::root().child(2));
        assert_eq!(CellId::root().parent(), None);
        assert_eq!(format!("{}", CellId::root()), "□");
    }

    #[test]
    fn expected_counts_telescope() {
        let (_, part) = build(4096, 13);
        for cell in part.cells() {
            if !cell.is_leaf() {
                let child_sum: f64 = cell
                    .children()
                    .iter()
                    .map(|&c| part.cell(c).expected_count())
                    .sum();
                assert!((child_sum - cell.expected_count()).abs() < 1e-6);
            }
        }
    }
}
