//! 2-D geometry substrate for geographic gossip on geometric random graphs.
//!
//! The crate provides the spatial primitives that every other crate in the
//! workspace builds on:
//!
//! * [`Point`] and [`Rect`] — positions in (and sub-rectangles of) the unit
//!   square `□ = [0,1]²` in which the paper places its `n` sensors.
//! * [`grid::UniformGrid`] — a spatial hash used to answer "which sensors are
//!   within distance `r` of this position" queries in expected `O(1)` time per
//!   reported neighbor; this is what makes geometric-random-graph construction
//!   `O(n)` instead of `O(n²)`.
//! * [`partition`] — the hierarchical square partition `□_{i₁…i_r}` of
//!   Section 4.1 of the paper: the unit square is split into `~√n` sub-squares,
//!   each of which is split again while its expected population exceeds a
//!   threshold, producing a tree of depth `Θ(log log n)`.
//! * [`sampling`] — reproducible uniform placement of sensors and helpers for
//!   seeding the deterministic RNG streams used throughout the workspace.
//!
//! # Example
//!
//! ```
//! use geogossip_geometry::{Point, Rect, partition::PartitionConfig, partition::SquarePartition};
//! use geogossip_geometry::sampling::sample_unit_square;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let points = sample_unit_square(1024, &mut rng);
//! let partition = SquarePartition::build(&points, PartitionConfig::practical(points.len()));
//! assert!(partition.depth() >= 1);
//! // Every point belongs to exactly one leaf cell.
//! assert_eq!(partition.leaves().map(|c| c.members().len()).sum::<usize>(), points.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod partition;
pub mod point;
pub mod rect;
pub mod sampling;
pub mod topology;

pub use grid::UniformGrid;
pub use partition::{CellId, PartitionConfig, SquarePartition};
pub use point::Point;
pub use rect::Rect;
pub use topology::Topology;

/// The unit square `[0,1] × [0,1]` in which all sensors are placed.
///
/// # Example
///
/// ```
/// use geogossip_geometry::{unit_square, Point};
/// assert!(unit_square().contains(Point::new(0.5, 0.5)));
/// ```
pub fn unit_square() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
}

/// The Gupta–Kumar connectivity radius `r(n) = c · sqrt(log n / n)`.
///
/// For `c` above a constant threshold (≈1 for the unit square), the geometric
/// random graph `G(n, r)` is connected with probability `1 − n^{-Θ(1)}`
/// (Gupta & Kumar 2000, cited as [4] in the paper). The paper assumes
/// `r = Θ(sqrt(log n / n))` throughout (Section 2.1).
///
/// # Panics
///
/// Panics if `n < 2` (a connectivity radius is meaningless for fewer than two
/// sensors).
///
/// # Example
///
/// ```
/// use geogossip_geometry::connectivity_radius;
/// let r = connectivity_radius(1000, 1.5);
/// assert!(r > 0.0 && r < 1.0);
/// ```
pub fn connectivity_radius(n: usize, c: f64) -> f64 {
    assert!(n >= 2, "connectivity radius requires at least two sensors");
    let n_f = n as f64;
    c * (n_f.ln() / n_f).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_square_has_unit_area() {
        assert!((unit_square().area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_radius_decreases_with_n() {
        let r1 = connectivity_radius(100, 1.0);
        let r2 = connectivity_radius(10_000, 1.0);
        assert!(r1 > r2);
    }

    #[test]
    fn connectivity_radius_scales_linearly_with_constant() {
        let r1 = connectivity_radius(500, 1.0);
        let r2 = connectivity_radius(500, 2.0);
        assert!((r2 - 2.0 * r1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two sensors")]
    fn connectivity_radius_rejects_tiny_n() {
        let _ = connectivity_radius(1, 1.0);
    }
}
