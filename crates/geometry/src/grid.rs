//! Uniform spatial grid (spatial hash) over the unit square.
//!
//! Geometric-random-graph construction and greedy geographic routing both need
//! "all sensors within distance `r` of position `p`" queries. A uniform grid
//! with cell side `≥ r` answers these by scanning only the 3×3 block of cells
//! around `p`, which is expected `O(1)` work per reported neighbor when points
//! are uniform — exactly the regime of the paper.

use crate::point::{NodeId, Point};
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A spatial hash of point indices over a bounding rectangle.
///
/// The grid stores *indices* into the caller's position slice rather than the
/// positions themselves, so it can be kept alongside whatever per-node state a
/// protocol needs.
///
/// # Example
///
/// ```
/// use geogossip_geometry::{Point, UniformGrid, unit_square};
/// let pts = vec![Point::new(0.1, 0.1), Point::new(0.12, 0.11), Point::new(0.9, 0.9)];
/// let grid = UniformGrid::build(unit_square(), &pts, 0.05);
/// let near: Vec<_> = grid.neighbors_within(&pts, Point::new(0.1, 0.1), 0.05).collect();
/// assert_eq!(near.len(), 2); // the two clustered points, not the far one
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UniformGrid {
    bounds: Rect,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
    /// `cells[row * cols + col]` lists the indices of points in that cell.
    cells: Vec<Vec<usize>>,
    len: usize,
}

impl UniformGrid {
    /// Builds a grid over `bounds` containing every point of `points`.
    ///
    /// `cell_side` is a *lower bound* on the side length of a grid cell; the
    /// actual side is `bounds.side / floor(bounds.side / cell_side)` so the
    /// grid tiles the bounds exactly. Radius-`r` queries are complete whenever
    /// `cell_side ≥ r`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_side` is not strictly positive or not finite.
    pub fn build(bounds: Rect, points: &[Point], cell_side: f64) -> Self {
        assert!(
            cell_side.is_finite() && cell_side > 0.0,
            "grid cell side must be positive and finite"
        );
        let cols = ((bounds.width() / cell_side).floor() as usize).max(1);
        let rows = ((bounds.height() / cell_side).floor() as usize).max(1);
        let cell_w = bounds.width() / cols as f64;
        let cell_h = bounds.height() / rows as f64;
        let mut cells = vec![Vec::new(); cols * rows];
        for (i, &p) in points.iter().enumerate() {
            let idx = Self::cell_index_for(bounds, cols, rows, p);
            cells[idx].push(i);
        }
        UniformGrid {
            bounds,
            cols,
            rows,
            cell_w,
            cell_h,
            cells,
            len: points.len(),
        }
    }

    fn cell_index_for(bounds: Rect, cols: usize, rows: usize, p: Point) -> usize {
        bounds.grid_index_of(p, cols, rows)
    }

    /// Number of points indexed by the grid.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid indexes no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The bounding rectangle the grid was built over.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Iterates over the indices of all points within Euclidean distance
    /// `radius` of `query` (excluding points at distance exactly greater than
    /// `radius`; a point coincident with `query` *is* reported).
    ///
    /// `points` must be the same slice the grid was built from.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `points.len()` differs from the length the
    /// grid was built with.
    pub fn neighbors_within<'a>(
        &'a self,
        points: &'a [Point],
        query: Point,
        radius: f64,
    ) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(
            points.len(),
            self.len,
            "grid built over a different point set"
        );
        let r2 = radius * radius;
        self.candidate_cells(query, radius)
            .flat_map(move |cell| self.cells[cell].iter().copied())
            .filter(move |&i| points[i].distance_squared(query) <= r2)
    }

    /// Returns the index of the point nearest to `query`, or `None` when the
    /// grid is empty.
    ///
    /// This is the primitive behind both greedy geographic routing ("node
    /// nearest to the random target position") and leader election ("sensor
    /// closest to the center of the square", Definition 1 of the paper). The
    /// search expands ring by ring outward from the query's cell, so the cost
    /// is proportional to the local point density rather than `n`.
    pub fn nearest(&self, points: &[Point], query: Point) -> Option<usize> {
        debug_assert_eq!(
            points.len(),
            self.len,
            "grid built over a different point set"
        );
        if self.len == 0 {
            return None;
        }
        let qc = self.bounds.grid_index_of(query, self.cols, self.rows);
        let (qcol, qrow) = (qc % self.cols, qc / self.cols);
        let mut best: Option<(usize, f64)> = None;
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            // Once a candidate is found, one extra ring is enough to be exact:
            // any closer point must lie within `best_dist` of the query, and a
            // ring at Chebyshev distance `ring` is at Euclidean distance at
            // least `(ring - 1) * min(cell_w, cell_h)` from the query point.
            if let Some((_, best_d2)) = best {
                let ring_clearance = (ring as f64 - 1.0).max(0.0) * self.cell_w.min(self.cell_h);
                if ring_clearance * ring_clearance > best_d2 {
                    break;
                }
            }
            for (col, row) in ring_cells(qcol, qrow, ring, self.cols, self.rows) {
                for &i in &self.cells[row * self.cols + col] {
                    let d2 = points[i].distance_squared(query);
                    if best.is_none_or(|(_, bd)| d2 < bd) {
                        best = Some((i, d2));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Convenience wrapper around [`UniformGrid::nearest`] returning a
    /// [`NodeId`].
    pub fn nearest_node(&self, points: &[Point], query: Point) -> Option<NodeId> {
        self.nearest(points, query).map(NodeId)
    }

    /// Iterator over the grid-cell indices that can contain points within
    /// `radius` of `query`.
    fn candidate_cells(&self, query: Point, radius: f64) -> impl Iterator<Item = usize> + '_ {
        let col_span = (radius / self.cell_w).ceil() as isize + 1;
        let row_span = (radius / self.cell_h).ceil() as isize + 1;
        let qc = self.bounds.grid_index_of(query, self.cols, self.rows);
        let (qcol, qrow) = ((qc % self.cols) as isize, (qc / self.cols) as isize);
        let cols = self.cols as isize;
        let rows = self.rows as isize;
        (-row_span..=row_span).flat_map(move |dr| {
            (-col_span..=col_span).filter_map(move |dc| {
                let c = qcol + dc;
                let r = qrow + dr;
                if c >= 0 && c < cols && r >= 0 && r < rows {
                    Some((r * cols + c) as usize)
                } else {
                    None
                }
            })
        })
    }
}

/// Cells at Chebyshev distance exactly `ring` from `(qcol, qrow)`, clipped to
/// the grid.
fn ring_cells(
    qcol: usize,
    qrow: usize,
    ring: usize,
    cols: usize,
    rows: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let (qcol, qrow, ring) = (qcol as isize, qrow as isize, ring as isize);
    let in_bounds =
        |c: isize, r: isize| c >= 0 && r >= 0 && (c as usize) < cols && (r as usize) < rows;
    if ring == 0 {
        if in_bounds(qcol, qrow) {
            out.push((qcol as usize, qrow as usize));
        }
        return out;
    }
    for dc in -ring..=ring {
        for &dr in &[-ring, ring] {
            if in_bounds(qcol + dc, qrow + dr) {
                out.push(((qcol + dc) as usize, (qrow + dr) as usize));
            }
        }
    }
    for dr in (-ring + 1)..ring {
        for &dc in &[-ring, ring] {
            if in_bounds(qcol + dc, qrow + dr) {
                out.push(((qcol + dc) as usize, (qrow + dr) as usize));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::sample_unit_square;
    use crate::unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn brute_force_within(points: &[Point], q: Point, r: f64) -> Vec<usize> {
        let mut v: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(q) <= r)
            .map(|(i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn neighbors_match_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pts = sample_unit_square(500, &mut rng);
        let grid = UniformGrid::build(unit_square(), &pts, 0.08);
        for &q in pts.iter().step_by(37) {
            let mut got: Vec<usize> = grid.neighbors_within(&pts, q, 0.08).collect();
            got.sort_unstable();
            assert_eq!(got, brute_force_within(&pts, q, 0.08));
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let pts = sample_unit_square(300, &mut rng);
        let grid = UniformGrid::build(unit_square(), &pts, 0.05);
        for &q in &[
            Point::new(0.5, 0.5),
            Point::new(0.01, 0.99),
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.3333, 0.7777),
        ] {
            let got = grid.nearest(&pts, q).unwrap();
            let want = pts
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.distance_squared(q)
                        .partial_cmp(&b.1.distance_squared(q))
                        .unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            assert!(
                (pts[got].distance(q) - pts[want].distance(q)).abs() < 1e-12,
                "nearest mismatch at {q}"
            );
        }
    }

    #[test]
    fn empty_grid_has_no_nearest() {
        let grid = UniformGrid::build(unit_square(), &[], 0.1);
        assert!(grid.nearest(&[], Point::new(0.5, 0.5)).is_none());
        assert!(grid.is_empty());
    }

    #[test]
    fn single_point_is_always_nearest() {
        let pts = vec![Point::new(0.25, 0.75)];
        let grid = UniformGrid::build(unit_square(), &pts, 0.1);
        assert_eq!(grid.nearest(&pts, Point::new(0.9, 0.1)), Some(0));
        assert_eq!(
            grid.nearest_node(&pts, Point::new(0.9, 0.1)),
            Some(NodeId(0))
        );
    }

    #[test]
    fn grid_dimensions_respect_cell_side() {
        let grid = UniformGrid::build(unit_square(), &[], 0.26);
        // floor(1.0 / 0.26) = 3 columns/rows of side 1/3 >= 0.26.
        assert_eq!(grid.cols(), 3);
        assert_eq!(grid.rows(), 3);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_cell_side() {
        let _ = UniformGrid::build(unit_square(), &[], 0.0);
    }

    #[test]
    fn ring_cells_cover_square_annulus() {
        let cells = ring_cells(5, 5, 2, 11, 11);
        // A full ring at Chebyshev distance 2 has 16 cells.
        assert_eq!(cells.len(), 16);
        assert!(cells.iter().all(|&(c, r)| {
            let dc = (c as isize - 5).abs();
            let dr = (r as isize - 5).abs();
            dc.max(dr) == 2
        }));
    }
}
