//! Uniform spatial grid (spatial hash) over the unit square.
//!
//! Geometric-random-graph construction and greedy geographic routing both need
//! "all sensors within distance `r` of position `p`" queries. A uniform grid
//! with cell side `≥ r` answers these by scanning only the small block of
//! cells around `p`, which is expected `O(1)` work per reported neighbor when
//! points are uniform — exactly the regime of the paper.
//!
//! The grid stores its buckets in a flat CSR-style layout (one offset array
//! plus one concatenated entry array, built by counting sort) instead of a
//! `Vec<Vec<usize>>`: construction is two linear passes with exactly two heap
//! allocations regardless of `n`, and bucket scans stream contiguous memory.
//! The cell count is additionally capped at `O(n)` (see
//! [`UniformGrid::build`]), so a tiny-but-valid radius can never allocate an
//! unbounded number of empty cells.

use crate::point::{NodeId, Point};
use crate::rect::Rect;
use crate::topology::wrap_delta;
use serde::{Deserialize, Serialize};

/// Cell-count cap: the grid never allocates more than `max(1024, 4·n)` cells.
///
/// Cells only ever *grow* when the cap binds (fewer, larger cells), so
/// radius-`r` queries stay complete; the cap merely stops a radius far below
/// the point spacing (e.g. `1e-7`) from requesting `~10¹⁴` empty cells.
const MIN_CELL_CAP: usize = 1024;

/// A spatial hash of point indices over a bounding rectangle.
///
/// The grid stores *indices* into the caller's position slice rather than the
/// positions themselves, so it can be kept alongside whatever per-node state a
/// protocol needs.
///
/// # Example
///
/// ```
/// use geogossip_geometry::{Point, UniformGrid, unit_square};
/// let pts = vec![Point::new(0.1, 0.1), Point::new(0.12, 0.11), Point::new(0.9, 0.9)];
/// let grid = UniformGrid::build(unit_square(), &pts, 0.05);
/// let near: Vec<_> = grid.neighbors_within(&pts, Point::new(0.1, 0.1), 0.05).collect();
/// assert_eq!(near.len(), 2); // the two clustered points, not the far one
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UniformGrid {
    bounds: Rect,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
    /// `entries[bucket_offsets[c] .. bucket_offsets[c + 1]]` lists the indices
    /// of the points in cell `c` (row-major), ascending by point index.
    bucket_offsets: Vec<u32>,
    /// Concatenated per-cell point-index lists.
    entries: Vec<u32>,
    len: usize,
}

impl UniformGrid {
    /// Builds a grid over `bounds` containing every point of `points`.
    ///
    /// `cell_side` is a *lower bound* on the side length of a grid cell; the
    /// actual side is `bounds.side / cols` with
    /// `cols ≤ floor(bounds.side / cell_side)`, so the grid tiles the bounds
    /// exactly and radius-`r` queries are complete whenever `cell_side ≥ r`.
    ///
    /// The total cell count is capped at `max(1024, 4·points.len())`: when
    /// `cell_side` is far below the point spacing the grid uses fewer, larger
    /// cells rather than allocating memory proportional to `1 / cell_side²`.
    /// Larger cells keep queries complete (only their cost degrades, and only
    /// in the regime where the graph is empty anyway).
    ///
    /// # Panics
    ///
    /// Panics if `cell_side` is not strictly positive or not finite, or if
    /// `points.len()` exceeds `u32::MAX` (entries are stored as `u32`).
    pub fn build(bounds: Rect, points: &[Point], cell_side: f64) -> Self {
        assert!(
            cell_side.is_finite() && cell_side > 0.0,
            "grid cell side must be positive and finite"
        );
        assert!(
            points.len() <= u32::MAX as usize,
            "grid entries are stored as u32"
        );
        let mut cols = ((bounds.width() / cell_side).floor() as usize).max(1);
        let mut rows = ((bounds.height() / cell_side).floor() as usize).max(1);
        let cap = MIN_CELL_CAP.max(4 * points.len());
        if cols.saturating_mul(rows) > cap {
            // Shrink both axes by the same factor so cells stay near-square;
            // fewer cells means larger cells, which preserves completeness.
            let scale = (cap as f64 / (cols as f64 * rows as f64)).sqrt();
            cols = ((cols as f64 * scale).floor() as usize).max(1);
            rows = ((rows as f64 * scale).floor() as usize).max(1);
            // For extremely anisotropic bounds the sqrt shrink can clamp one
            // axis at 1 while the other still exceeds the cap; enforce the
            // invariant axis-by-axis so `cols × rows ≤ cap` always holds.
            cols = cols.min(cap);
            rows = rows.min((cap / cols).max(1));
        }
        let cell_w = bounds.width() / cols as f64;
        let cell_h = bounds.height() / rows as f64;

        // Counting sort: per-cell counts, exclusive prefix sum, then scatter.
        // Scattering in point order leaves every bucket ascending by index.
        let cell_count = cols * rows;
        let mut bucket_offsets = vec![0u32; cell_count + 1];
        for &p in points {
            bucket_offsets[bounds.grid_index_of(p, cols, rows) + 1] += 1;
        }
        for c in 0..cell_count {
            bucket_offsets[c + 1] += bucket_offsets[c];
        }
        let mut cursor: Vec<u32> = bucket_offsets[..cell_count].to_vec();
        let mut entries = vec![0u32; points.len()];
        for (i, &p) in points.iter().enumerate() {
            let cell = bounds.grid_index_of(p, cols, rows);
            entries[cursor[cell] as usize] = i as u32;
            cursor[cell] += 1;
        }

        UniformGrid {
            bounds,
            cols,
            rows,
            cell_w,
            cell_h,
            bucket_offsets,
            entries,
            len: points.len(),
        }
    }

    /// Number of points indexed by the grid.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid indexes no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of cells (`cols × rows`); bounded by
    /// `max(1024, 4·len)` — the construction invariant that keeps tiny radii
    /// from allocating unbounded memory.
    pub fn cell_count(&self) -> usize {
        self.cols * self.rows
    }

    /// The bounding rectangle the grid was built over.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The concatenated per-cell point-index lists, cell-major: the slot
    /// range of cell `(col, row)` is [`UniformGrid::cell_range`]. Callers
    /// that stream candidates (the graph build) mirror the *positions* into
    /// this order once, so distance checks read memory sequentially instead
    /// of gathering `points[j]` per candidate.
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// Slot range (into [`UniformGrid::entries`]) of cell `(col, row)`.
    #[inline]
    pub fn cell_range(&self, col: usize, row: usize) -> std::ops::Range<usize> {
        let cell = row * self.cols + col;
        self.bucket_offsets[cell] as usize..self.bucket_offsets[cell + 1] as usize
    }

    /// The point indices bucketed in cell `(col, row)`, ascending.
    #[inline]
    fn cell_points(&self, col: usize, row: usize) -> &[u32] {
        &self.entries[self.cell_range(col, row)]
    }

    /// Column of the cell containing x-coordinate `x`, *unclamped*: queries
    /// left of the bounds yield negative values, queries right of the bounds
    /// yield values `≥ cols`. Uses the same normalisation as
    /// [`Rect::grid_index_of`] so in-bounds points agree with their bucket.
    #[inline]
    fn col_of_unclamped(&self, x: f64) -> isize {
        (((x - self.bounds.min().x) / self.bounds.width()) * self.cols as f64).floor() as isize
    }

    /// Row counterpart of [`UniformGrid::col_of_unclamped`].
    #[inline]
    fn row_of_unclamped(&self, y: f64) -> isize {
        (((y - self.bounds.min().y) / self.bounds.height()) * self.rows as f64).floor() as isize
    }

    /// Calls `f` with the entry-slot range ([`UniformGrid::entries`] /
    /// [`UniformGrid::cell_range`]) of every cell that can contain a point
    /// within Euclidean distance `radius` of `query`.
    ///
    /// The candidate block is exact (`±ceil(r / cell_side)` cells around the
    /// query's unclamped cell, clipped to the grid), so an in-range query
    /// visits at most a 3×3 block when the grid was built with
    /// `cell_side ≥ radius`. Out-of-bounds queries are handled without
    /// clamping slack: the block is computed from the query's virtual cell.
    #[inline]
    pub fn for_each_candidate_range(
        &self,
        query: Point,
        radius: f64,
        mut f: impl FnMut(std::ops::Range<usize>),
    ) {
        let (row_lo, row_end) = clip_window(
            self.row_of_unclamped(query.y),
            (radius / self.cell_h).ceil() as isize,
            self.rows,
        );
        let (col_lo, col_end) = clip_window(
            self.col_of_unclamped(query.x),
            (radius / self.cell_w).ceil() as isize,
            self.cols,
        );
        if col_lo >= col_end {
            return;
        }
        for row in row_lo..row_end {
            // Adjacent columns of one grid row are adjacent slot ranges, so
            // the whole row of candidate cells is a single contiguous range.
            f(self.cell_range(col_lo, row).start..self.cell_range(col_end - 1, row).end);
        }
    }

    /// Calls `f` with the entry-slot range of every cell that can contain a
    /// point within *wrapped* (torus) distance `radius` of `query`, visiting
    /// each cell **at most once**.
    ///
    /// Wrapped cell coordinates are enumerated directly (`(qcol + d) mod
    /// cols`) instead of querying periodic images of the point, so a bucket —
    /// and therefore a point — can never be reported through two images: the
    /// per-row dedup of torus adjacency holds by construction, even at radii
    /// approaching `1/2`. The grid must have been built over the unit square
    /// (the only surface the torus metric is defined on).
    #[inline]
    pub fn for_each_candidate_range_torus(
        &self,
        query: Point,
        radius: f64,
        mut f: impl FnMut(std::ops::Range<usize>),
    ) {
        debug_assert!(
            self.bounds.min() == Point::new(0.0, 0.0) && self.bounds.max() == Point::new(1.0, 1.0),
            "torus queries require a unit-square grid"
        );
        let col_span = (radius / self.cell_w).ceil() as isize;
        let row_span = (radius / self.cell_h).ceil() as isize;
        let qcol = self.col_of_unclamped(query.x);
        let qrow = self.row_of_unclamped(query.y);
        let cols = self.cols as isize;
        let rows = self.rows as isize;
        let row_iters = (2 * row_span + 1).min(rows);
        let col_iters = (2 * col_span + 1).min(cols);
        for dr in 0..row_iters {
            let row = wrap_window(qrow, row_span, rows, dr);
            for dc in 0..col_iters {
                let col = wrap_window(qcol, col_span, cols, dc);
                f(self.cell_range(col, row));
            }
        }
    }

    /// Iterates over the indices of all points within Euclidean distance
    /// `radius` of `query` (excluding points at distance strictly greater than
    /// `radius`; a point coincident with `query` *is* reported).
    ///
    /// `points` must be the same slice the grid was built from.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `points.len()` differs from the length the
    /// grid was built with.
    pub fn neighbors_within<'a>(
        &'a self,
        points: &'a [Point],
        query: Point,
        radius: f64,
    ) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(
            points.len(),
            self.len,
            "grid built over a different point set"
        );
        let r2 = radius * radius;
        let (row_lo, row_end) = clip_window(
            self.row_of_unclamped(query.y),
            (radius / self.cell_h).ceil() as isize,
            self.rows,
        );
        let (col_lo, col_end) = clip_window(
            self.col_of_unclamped(query.x),
            (radius / self.cell_w).ceil() as isize,
            self.cols,
        );
        (row_lo..row_end)
            .flat_map(move |row| {
                (col_lo..col_end).flat_map(move |col| self.cell_points(col, row).iter().copied())
            })
            .map(|i| i as usize)
            .filter(move |&i| points[i].distance_squared(query) <= r2)
    }

    /// Iterates over the indices of all points within *wrapped* (torus)
    /// distance `radius` of `query`, each reported exactly once.
    ///
    /// `points` must be the same slice the grid was built from, and the grid
    /// must span the unit square.
    pub fn neighbors_within_torus<'a>(
        &'a self,
        points: &'a [Point],
        query: Point,
        radius: f64,
    ) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(
            points.len(),
            self.len,
            "grid built over a different point set"
        );
        let r2 = radius * radius;
        let (qcol, qrow) = (
            self.col_of_unclamped(query.x),
            self.row_of_unclamped(query.y),
        );
        let (col_span, row_span) = (
            (radius / self.cell_w).ceil() as isize,
            (radius / self.cell_h).ceil() as isize,
        );
        let (cols, rows) = (self.cols as isize, self.rows as isize);
        let row_iters = (2 * row_span + 1).min(rows);
        let col_iters = (2 * col_span + 1).min(cols);
        (0..row_iters)
            .flat_map(move |dr| {
                let row = wrap_window(qrow, row_span, rows, dr);
                (0..col_iters).flat_map(move |dc| {
                    let col = wrap_window(qcol, col_span, cols, dc);
                    self.cell_points(col, row).iter().copied()
                })
            })
            .map(|i| i as usize)
            .filter(move |&i| {
                let dx = wrap_delta(points[i].x - query.x);
                let dy = wrap_delta(points[i].y - query.y);
                dx * dx + dy * dy <= r2
            })
    }

    /// Returns the index of the point nearest to `query` under the Euclidean
    /// metric, or `None` when the grid is empty.
    ///
    /// This is the primitive behind both greedy geographic routing ("node
    /// nearest to the random target position") and leader election ("sensor
    /// closest to the center of the square", Definition 1 of the paper). The
    /// search expands ring by ring outward from the query's cell, so the cost
    /// is proportional to the local point density rather than `n`.
    pub fn nearest(&self, points: &[Point], query: Point) -> Option<usize> {
        debug_assert_eq!(
            points.len(),
            self.len,
            "grid built over a different point set"
        );
        if self.len == 0 {
            return None;
        }
        let qc = self.bounds.grid_index_of(query, self.cols, self.rows);
        let (qcol, qrow) = (qc % self.cols, qc / self.cols);
        let mut best: Option<(usize, f64)> = None;
        let max_ring = self.cols.max(self.rows);
        for ring in 0..=max_ring {
            // Once a candidate is found, one extra ring is enough to be exact:
            // any closer point must lie within `best_dist` of the query, and a
            // ring at Chebyshev distance `ring` is at Euclidean distance at
            // least `(ring - 1) * min(cell_w, cell_h)` from the query point.
            if let Some((_, best_d2)) = best {
                let ring_clearance = (ring as f64 - 1.0).max(0.0) * self.cell_w.min(self.cell_h);
                if ring_clearance * ring_clearance > best_d2 {
                    break;
                }
            }
            for (col, row) in ring_cells(qcol, qrow, ring, self.cols, self.rows) {
                for &i in self.cell_points(col, row) {
                    let d2 = points[i as usize].distance_squared(query);
                    if best.is_none_or(|(_, bd)| d2 < bd) {
                        best = Some((i as usize, d2));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Returns the index of the point nearest to `query` under the *wrapped*
    /// (torus) metric, or `None` when the grid is empty.
    ///
    /// Rings wrap around the grid instead of being clipped at its edges, so a
    /// query near the seam finds its true wrapped-nearest point. The same
    /// clearance argument as [`UniformGrid::nearest`] applies: a cell at
    /// wrapped Chebyshev ring `k` is first visited at ring `k`, and its points
    /// are at wrapped distance at least `(k − 1)·min(cell_w, cell_h)`.
    pub fn nearest_torus(&self, points: &[Point], query: Point) -> Option<usize> {
        debug_assert_eq!(
            points.len(),
            self.len,
            "grid built over a different point set"
        );
        if self.len == 0 {
            return None;
        }
        let qc = self.bounds.grid_index_of(query, self.cols, self.rows);
        let (qcol, qrow) = (qc % self.cols, qc / self.cols);
        let mut best: Option<(usize, f64)> = None;
        // Every cell is within wrapped Chebyshev distance ceil(extent / 2).
        let max_ring = self.cols.max(self.rows).div_ceil(2);
        for ring in 0..=max_ring {
            if let Some((_, best_d2)) = best {
                let ring_clearance = (ring as f64 - 1.0).max(0.0) * self.cell_w.min(self.cell_h);
                if ring_clearance * ring_clearance > best_d2 {
                    break;
                }
            }
            for (col, row) in ring_cells_torus(qcol, qrow, ring, self.cols, self.rows) {
                for &i in self.cell_points(col, row) {
                    let dx = wrap_delta(points[i as usize].x - query.x);
                    let dy = wrap_delta(points[i as usize].y - query.y);
                    let d2 = dx * dx + dy * dy;
                    if best.is_none_or(|(_, bd)| d2 < bd) {
                        best = Some((i as usize, d2));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Convenience wrapper around [`UniformGrid::nearest`] returning a
    /// [`NodeId`].
    pub fn nearest_node(&self, points: &[Point], query: Point) -> Option<NodeId> {
        self.nearest(points, query).map(NodeId)
    }
}

/// Clips the window `base ± span` to `[0, extent)`, returned as a half-open
/// `(lo, end)` range (empty as `(0, 0)` when the window misses the axis).
#[inline]
fn clip_window(base: isize, span: isize, extent: usize) -> (usize, usize) {
    let lo = (base - span).max(0);
    let end = (base + span + 1).min(extent as isize);
    if end <= lo {
        (0, 0)
    } else {
        (lo as usize, end as usize)
    }
}

/// The `d`-th coordinate of the wrapped window `base ± span` on an axis of
/// `extent` cells. When the window covers the whole axis the caller iterates
/// `d ∈ 0..extent` and coordinates are taken verbatim; otherwise the window
/// (width `< extent`) wraps, so every produced coordinate is distinct — the
/// structural guarantee that a torus query reports each cell at most once.
#[inline]
fn wrap_window(base: isize, span: isize, extent: isize, d: isize) -> usize {
    if 2 * span + 1 >= extent {
        d as usize
    } else {
        (base + d - span).rem_euclid(extent) as usize
    }
}

/// Cells at Chebyshev distance exactly `ring` from `(qcol, qrow)`, clipped to
/// the grid.
fn ring_cells(
    qcol: usize,
    qrow: usize,
    ring: usize,
    cols: usize,
    rows: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let (qcol, qrow, ring) = (qcol as isize, qrow as isize, ring as isize);
    let in_bounds =
        |c: isize, r: isize| c >= 0 && r >= 0 && (c as usize) < cols && (r as usize) < rows;
    if ring == 0 {
        if in_bounds(qcol, qrow) {
            out.push((qcol as usize, qrow as usize));
        }
        return out;
    }
    for dc in -ring..=ring {
        for &dr in &[-ring, ring] {
            if in_bounds(qcol + dc, qrow + dr) {
                out.push(((qcol + dc) as usize, (qrow + dr) as usize));
            }
        }
    }
    for dr in (-ring + 1)..ring {
        for &dc in &[-ring, ring] {
            if in_bounds(qcol + dc, qrow + dr) {
                out.push(((qcol + dc) as usize, (qrow + dr) as usize));
            }
        }
    }
    out
}

/// Cells at Chebyshev distance exactly `ring` from `(qcol, qrow)` with
/// wrap-around, deduplicated (wrapping can fold several ring positions onto
/// one cell once `2·ring + 1` exceeds an axis extent).
fn ring_cells_torus(
    qcol: usize,
    qrow: usize,
    ring: usize,
    cols: usize,
    rows: usize,
) -> Vec<(usize, usize)> {
    if ring == 0 {
        return vec![(qcol, qrow)];
    }
    let mut out = Vec::new();
    let (qcol, qrow, ring) = (qcol as isize, qrow as isize, ring as isize);
    let (cols, rows) = (cols as isize, rows as isize);
    let mut push = |c: isize, r: isize| {
        out.push((c.rem_euclid(cols) as usize, r.rem_euclid(rows) as usize));
    };
    for dc in -ring..=ring {
        push(qcol + dc, qrow - ring);
        push(qcol + dc, qrow + ring);
    }
    for dr in (-ring + 1)..ring {
        push(qcol - ring, qrow + dr);
        push(qcol + ring, qrow + dr);
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::sample_unit_square;
    use crate::topology::Topology;
    use crate::unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn brute_force_within(points: &[Point], q: Point, r: f64) -> Vec<usize> {
        let mut v: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(q) <= r)
            .map(|(i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    fn brute_force_within_torus(points: &[Point], q: Point, r: f64) -> Vec<usize> {
        let mut v: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| Topology::Torus.distance(**p, q) <= r)
            .map(|(i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn neighbors_match_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pts = sample_unit_square(500, &mut rng);
        let grid = UniformGrid::build(unit_square(), &pts, 0.08);
        for &q in pts.iter().step_by(37) {
            let mut got: Vec<usize> = grid.neighbors_within(&pts, q, 0.08).collect();
            got.sort_unstable();
            assert_eq!(got, brute_force_within(&pts, q, 0.08));
        }
    }

    #[test]
    fn torus_neighbors_match_brute_force_and_never_duplicate() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let pts = sample_unit_square(400, &mut rng);
        for radius in [0.03, 0.11, 0.3, 0.49] {
            let grid = UniformGrid::build(unit_square(), &pts, radius);
            for &q in pts.iter().step_by(29) {
                let got: Vec<usize> = grid.neighbors_within_torus(&pts, q, radius).collect();
                let mut sorted = got.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), got.len(), "duplicate reports at r={radius}");
                assert_eq!(sorted, brute_force_within_torus(&pts, q, radius));
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let pts = sample_unit_square(300, &mut rng);
        let grid = UniformGrid::build(unit_square(), &pts, 0.05);
        for &q in &[
            Point::new(0.5, 0.5),
            Point::new(0.01, 0.99),
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.3333, 0.7777),
        ] {
            let got = grid.nearest(&pts, q).unwrap();
            let want = pts
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.distance_squared(q)
                        .partial_cmp(&b.1.distance_squared(q))
                        .unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            assert!(
                (pts[got].distance(q) - pts[want].distance(q)).abs() < 1e-12,
                "nearest mismatch at {q}"
            );
        }
    }

    #[test]
    fn nearest_torus_matches_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let pts = sample_unit_square(300, &mut rng);
        let grid = UniformGrid::build(unit_square(), &pts, 0.05);
        for &q in &[
            Point::new(0.005, 0.5),
            Point::new(0.995, 0.5),
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.5, 0.001),
            Point::new(0.62, 0.97),
        ] {
            let got = grid.nearest_torus(&pts, q).unwrap();
            let want = pts
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    Topology::Torus
                        .distance_squared(*a.1, q)
                        .partial_cmp(&Topology::Torus.distance_squared(*b.1, q))
                        .unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            assert!(
                (Topology::Torus.distance(pts[got], q) - Topology::Torus.distance(pts[want], q))
                    .abs()
                    < 1e-12,
                "wrapped nearest mismatch at {q}"
            );
        }
    }

    #[test]
    fn empty_grid_has_no_nearest() {
        let grid = UniformGrid::build(unit_square(), &[], 0.1);
        assert!(grid.nearest(&[], Point::new(0.5, 0.5)).is_none());
        assert!(grid.nearest_torus(&[], Point::new(0.5, 0.5)).is_none());
        assert!(grid.is_empty());
    }

    #[test]
    fn single_point_is_always_nearest() {
        let pts = vec![Point::new(0.25, 0.75)];
        let grid = UniformGrid::build(unit_square(), &pts, 0.1);
        assert_eq!(grid.nearest(&pts, Point::new(0.9, 0.1)), Some(0));
        assert_eq!(
            grid.nearest_node(&pts, Point::new(0.9, 0.1)),
            Some(NodeId(0))
        );
    }

    #[test]
    fn grid_dimensions_respect_cell_side() {
        let grid = UniformGrid::build(unit_square(), &[], 0.26);
        // floor(1.0 / 0.26) = 3 columns/rows of side 1/3 >= 0.26.
        assert_eq!(grid.cols(), 3);
        assert_eq!(grid.rows(), 3);
        assert_eq!(grid.cell_count(), 9);
    }

    #[test]
    fn tiny_cell_side_is_capped_at_order_n_cells() {
        // Without the cap this would request ~10^14 cells and abort.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let pts = sample_unit_square(100, &mut rng);
        let grid = UniformGrid::build(unit_square(), &pts, 1e-7);
        assert!(
            grid.cell_count() <= 1024,
            "cap violated: {} cells",
            grid.cell_count()
        );
        // Queries remain complete despite the coarser cells.
        let q = pts[17];
        let got: Vec<usize> = grid.neighbors_within(&pts, q, 1e-7).collect();
        assert_eq!(got, brute_force_within(&pts, q, 1e-7));
    }

    #[test]
    fn cap_holds_for_anisotropic_bounds() {
        // The sqrt shrink alone can clamp one axis at 1 while the other still
        // exceeds the cap; the axis-by-axis clamp must keep the invariant.
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 1e-4));
        let grid = UniformGrid::build(bounds, &[], 1e-9);
        assert!(
            grid.cell_count() <= 1024,
            "cap violated: {} cells",
            grid.cell_count()
        );
    }

    #[test]
    fn cap_scales_with_point_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let pts = sample_unit_square(2000, &mut rng);
        let grid = UniformGrid::build(unit_square(), &pts, 1e-9);
        assert!(grid.cell_count() <= 4 * pts.len());
        assert!(grid.cell_count() > 1024);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_cell_side() {
        let _ = UniformGrid::build(unit_square(), &[], 0.0);
    }

    #[test]
    fn ring_cells_cover_square_annulus() {
        let cells = ring_cells(5, 5, 2, 11, 11);
        // A full ring at Chebyshev distance 2 has 16 cells.
        assert_eq!(cells.len(), 16);
        assert!(cells.iter().all(|&(c, r)| {
            let dc = (c as isize - 5).abs();
            let dr = (r as isize - 5).abs();
            dc.max(dr) == 2
        }));
    }

    #[test]
    fn torus_ring_cells_wrap_and_dedup() {
        // Full ring away from the seam: same 16 cells as the clipped version.
        let cells = ring_cells_torus(5, 5, 2, 11, 11);
        assert_eq!(cells.len(), 16);
        // Ring at the corner wraps instead of clipping: still 16 distinct.
        let wrapped = ring_cells_torus(0, 0, 2, 11, 11);
        assert_eq!(wrapped.len(), 16);
        // Ring wider than the grid folds onto itself without duplicates.
        let folded = ring_cells_torus(1, 1, 2, 3, 3);
        let mut sorted = folded.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(folded.len(), sorted.len());
        assert!(folded.iter().all(|&(c, r)| c < 3 && r < 3));
    }
}
