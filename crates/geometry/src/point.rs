//! Points in the plane.
//!
//! Sensor positions are points of the unit square; everything that needs a
//! Euclidean distance (radio connectivity, greedy geographic routing, leader
//! election by "closest to cell center") goes through [`Point`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the plane (typically inside the unit square).
///
/// `Point` is a small `Copy` value type; distance helpers are provided both in
/// plain and squared form so hot loops (graph construction, routing) can avoid
/// the square root.
///
/// # Example
///
/// ```
/// use geogossip_geometry::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Example
    ///
    /// ```
    /// use geogossip_geometry::Point;
    /// let p = Point::new(0.25, 0.75);
    /// assert_eq!(p.x, 0.25);
    /// ```
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub fn origin() -> Self {
        Point { x: 0.0, y: 0.0 }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::distance`] inside loops that only compare
    /// distances: it avoids the square root and is exact for comparisons.
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Midpoint of the segment between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Returns `true` when both coordinates are finite (not NaN or infinite).
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Componentwise clamp of the point into `[0,1]²`.
    ///
    /// Used when perturbed positions must be pushed back into the unit square.
    pub fn clamp_unit(self) -> Point {
        Point::new(self.x.clamp(0.0, 1.0), self.y.clamp(0.0, 1.0))
    }
}

impl Default for Point {
    fn default() -> Self {
        Point::origin()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

/// Index of a sensor/node in the network.
///
/// All crates in the workspace identify sensors by their index into the
/// position vector produced at placement time; the newtype prevents mixing
/// node indices with other integers (cell indices, hop counts, ...).
///
/// # Example
///
/// ```
/// use geogossip_geometry::point::NodeId;
/// let a = NodeId(3);
/// assert_eq!(a.index(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(0.1, 0.9);
        let b = Point::new(0.7, 0.2);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-15);
    }

    #[test]
    fn distance_zero_to_self() {
        let a = Point::new(0.3, 0.4);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn squared_distance_matches_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.6, 0.8);
        assert!((a.distance_squared(b) - 1.0).abs() < 1e-12);
        assert!((a.distance(b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        let m = a.midpoint(b);
        assert!((m.x - 0.5).abs() < 1e-15 && (m.y - 0.5).abs() < 1e-15);
    }

    #[test]
    fn clamp_unit_pushes_back_inside() {
        let p = Point::new(-0.5, 1.5).clamp_unit();
        assert_eq!(p, Point::new(0.0, 1.0));
    }

    #[test]
    fn conversions_round_trip() {
        let p: Point = (0.25, 0.5).into();
        let back: (f64, f64) = p.into();
        assert_eq!(back, (0.25, 0.5));
    }

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "v42");
    }

    #[test]
    fn triangle_inequality_holds() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.5, 0.1);
        let c = Point::new(1.0, 1.0);
        assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-15);
    }
}
