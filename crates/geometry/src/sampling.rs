//! Reproducible random placement of sensors and related sampling helpers.
//!
//! Every experiment in the workspace is seeded, so that the tables in
//! EXPERIMENTS.md can be regenerated bit-for-bit. The helpers here are thin
//! wrappers over [`rand`] that keep the sampling conventions (uniform over the
//! unit square, uniform over a rectangle, exponential inter-arrival times) in
//! one place.

use crate::point::Point;
use crate::rect::Rect;
use rand::Rng;

/// Samples `n` points independently and uniformly at random from the unit
/// square, the placement model of the paper (Section 2).
///
/// # Example
///
/// ```
/// use geogossip_geometry::sampling::sample_unit_square;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// let pts = sample_unit_square(100, &mut ChaCha8Rng::seed_from_u64(1));
/// assert_eq!(pts.len(), 100);
/// assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y)));
/// ```
pub fn sample_unit_square<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// Samples `n` points independently and uniformly at random from `rect`.
pub fn sample_rect<R: Rng + ?Sized>(rect: Rect, n: usize, rng: &mut R) -> Vec<Point> {
    (0..n).map(|_| uniform_point_in(rect, rng)).collect()
}

/// Samples a single point uniformly at random from `rect`.
pub fn uniform_point_in<R: Rng + ?Sized>(rect: Rect, rng: &mut R) -> Point {
    let x = rect.min().x + rng.gen::<f64>() * rect.width();
    let y = rect.min().y + rng.gen::<f64>() * rect.height();
    Point::new(x, y)
}

/// Samples an `Exp(rate)` inter-arrival time.
///
/// The paper models each sensor's clock as a unit-rate Poisson process
/// (Section 2); the simulator draws inter-tick gaps from this helper.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn exponential<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "exponential rate must be positive and finite"
    );
    // Inverse-CDF sampling; `1 - U` avoids ln(0).
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln() / rate
}

/// Draws an index in `0..n` uniformly at random, excluding `excluded`.
///
/// Used when a node must pick "a square other than its own" or "a node other
/// than itself" uniformly at random.
///
/// # Panics
///
/// Panics if `n < 2` or `excluded >= n` (there would be nothing to draw).
pub fn uniform_index_excluding<R: Rng + ?Sized>(n: usize, excluded: usize, rng: &mut R) -> usize {
    assert!(n >= 2, "need at least two alternatives to exclude one");
    assert!(excluded < n, "excluded index out of range");
    let draw = rng.gen_range(0..n - 1);
    if draw >= excluded {
        draw + 1
    } else {
        draw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn unit_square_samples_are_inside() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let pts = sample_unit_square(1000, &mut rng);
        assert!(pts.iter().all(|p| unit_square().contains(*p)));
    }

    #[test]
    fn sampling_is_reproducible_for_same_seed() {
        let a = sample_unit_square(50, &mut ChaCha8Rng::seed_from_u64(9));
        let b = sample_unit_square(50, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn rect_samples_are_inside_rect() {
        let rect = Rect::new(Point::new(0.25, 0.5), Point::new(0.5, 0.75));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let pts = sample_rect(rect, 500, &mut rng);
        assert!(pts.iter().all(|p| rect.contains(*p)));
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(rate, &mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "mean {mean} far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert!((0..1000).all(|_| exponential(1.0, &mut rng) >= 0.0));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn exponential_rejects_bad_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let _ = exponential(0.0, &mut rng);
    }

    #[test]
    fn uniform_index_excluding_never_returns_excluded() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..5000 {
            let x = uniform_index_excluding(7, 3, &mut rng);
            assert!(x < 7 && x != 3);
        }
    }

    #[test]
    fn uniform_index_excluding_hits_everything_else() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut seen = [false; 5];
        for _ in 0..2000 {
            seen[uniform_index_excluding(5, 2, &mut rng)] = true;
        }
        assert_eq!(seen, [true, true, false, true, true]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn uniform_index_excluding_rejects_singleton() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let _ = uniform_index_excluding(1, 0, &mut rng);
    }
}
