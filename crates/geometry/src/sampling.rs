//! Reproducible random placement of sensors and related sampling helpers.
//!
//! Every experiment in the workspace is seeded, so that the tables in
//! EXPERIMENTS.md can be regenerated bit-for-bit. The helpers here are thin
//! wrappers over [`rand`] that keep the sampling conventions (uniform over the
//! unit square, uniform over a rectangle, exponential inter-arrival times) in
//! one place.

use crate::point::Point;
use crate::rect::Rect;
use rand::Rng;

/// Samples `n` points independently and uniformly at random from the unit
/// square, the placement model of the paper (Section 2).
///
/// # Example
///
/// ```
/// use geogossip_geometry::sampling::sample_unit_square;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// let pts = sample_unit_square(100, &mut ChaCha8Rng::seed_from_u64(1));
/// assert_eq!(pts.len(), 100);
/// assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y)));
/// ```
pub fn sample_unit_square<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// Samples `n` points independently and uniformly at random from `rect`.
pub fn sample_rect<R: Rng + ?Sized>(rect: Rect, n: usize, rng: &mut R) -> Vec<Point> {
    (0..n).map(|_| uniform_point_in(rect, rng)).collect()
}

/// Samples a single point uniformly at random from `rect`.
pub fn uniform_point_in<R: Rng + ?Sized>(rect: Rect, rng: &mut R) -> Point {
    let x = rect.min().x + rng.gen::<f64>() * rect.width();
    let y = rect.min().y + rng.gen::<f64>() * rect.height();
    Point::new(x, y)
}

/// Samples `n` points from a clustered deployment: `clusters` cluster centers
/// are drawn uniformly from the unit square, then each sensor picks a center
/// uniformly at random and lands at a uniform offset within `±spread` of it
/// (clamped back into the unit square).
///
/// This models the "sensors dropped in batches" deployments where the uniform
/// placement assumption of the paper is stressed: cell occupancy becomes
/// non-uniform and greedy routing must cross sparse gaps.
///
/// # Panics
///
/// Panics if `clusters` is zero or `spread` is not strictly positive and
/// finite.
pub fn sample_clustered<R: Rng + ?Sized>(
    n: usize,
    clusters: usize,
    spread: f64,
    rng: &mut R,
) -> Vec<Point> {
    assert!(
        clusters > 0,
        "clustered placement needs at least one cluster"
    );
    assert!(
        spread.is_finite() && spread > 0.0,
        "cluster spread must be positive and finite"
    );
    let centers: Vec<Point> = (0..clusters)
        .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    (0..n)
        .map(|_| {
            let c = centers[rng.gen_range(0..clusters)];
            let dx = (2.0 * rng.gen::<f64>() - 1.0) * spread;
            let dy = (2.0 * rng.gen::<f64>() - 1.0) * spread;
            Point::new(c.x + dx, c.y + dy).clamp_unit()
        })
        .collect()
}

/// Samples `n` points uniformly from the unit square **minus** the `hole`
/// rectangle, by rejection.
///
/// The perforated square models an obstacle (a lake, a building) in the
/// deployment area: greedy geographic routing can dead-end on the hole's
/// boundary, which is exactly the failure mode the paper's w.h.p. routing
/// guarantees exclude for the uniform deployment.
///
/// # Panics
///
/// Panics if the hole covers the whole unit square (nothing left to sample)
/// or is so large that rejection sampling becomes pathological (the hole's
/// overlap with the square above 99% of it). A hole extending beyond the unit
/// square is fine — only the overlap matters.
pub fn sample_perforated<R: Rng + ?Sized>(n: usize, hole: Rect, rng: &mut R) -> Vec<Point> {
    let covered = hole.intersection_area(crate::unit_square());
    assert!(
        covered < 0.99,
        "hole covers (almost) the whole unit square; nothing left to sample"
    );
    (0..n)
        .map(|_| loop {
            let p = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
            if !hole.contains(p) {
                break p;
            }
        })
        .collect()
}

/// Samples an `Exp(rate)` inter-arrival time.
///
/// The paper models each sensor's clock as a unit-rate Poisson process
/// (Section 2); the simulator draws inter-tick gaps from this helper.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn exponential<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "exponential rate must be positive and finite"
    );
    // Inverse-CDF sampling; `1 - U` avoids ln(0).
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).ln() / rate
}

/// Draws an index in `0..n` uniformly at random, excluding `excluded`.
///
/// Used when a node must pick "a square other than its own" or "a node other
/// than itself" uniformly at random.
///
/// # Panics
///
/// Panics if `n < 2` or `excluded >= n` (there would be nothing to draw).
pub fn uniform_index_excluding<R: Rng + ?Sized>(n: usize, excluded: usize, rng: &mut R) -> usize {
    assert!(n >= 2, "need at least two alternatives to exclude one");
    assert!(excluded < n, "excluded index out of range");
    let draw = rng.gen_range(0..n - 1);
    if draw >= excluded {
        draw + 1
    } else {
        draw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn unit_square_samples_are_inside() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let pts = sample_unit_square(1000, &mut rng);
        assert!(pts.iter().all(|p| unit_square().contains(*p)));
    }

    #[test]
    fn sampling_is_reproducible_for_same_seed() {
        let a = sample_unit_square(50, &mut ChaCha8Rng::seed_from_u64(9));
        let b = sample_unit_square(50, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn rect_samples_are_inside_rect() {
        let rect = Rect::new(Point::new(0.25, 0.5), Point::new(0.5, 0.75));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let pts = sample_rect(rect, 500, &mut rng);
        assert!(pts.iter().all(|p| rect.contains(*p)));
    }

    #[test]
    fn clustered_samples_stay_inside_and_cluster() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let pts = sample_clustered(500, 3, 0.05, &mut rng);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| unit_square().contains(*p)));
        // With spread 0.05 around 3 centers the points can touch at most
        // 3 · (0.1 + cell)² of the square; most of a 10×10 occupancy grid
        // stays empty, unlike a uniform sample of the same size.
        let mut occupied = [false; 100];
        for p in &pts {
            let col = (p.x * 10.0).min(9.0) as usize;
            let row = (p.y * 10.0).min(9.0) as usize;
            occupied[row * 10 + col] = true;
        }
        let occupied_cells = occupied.iter().filter(|&&c| c).count();
        assert!(
            occupied_cells <= 30,
            "clustered sample touched {occupied_cells}/100 cells"
        );
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn clustered_rejects_zero_clusters() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let _ = sample_clustered(10, 0, 0.1, &mut rng);
    }

    #[test]
    fn perforated_samples_avoid_the_hole() {
        let hole = Rect::new(Point::new(0.4, 0.4), Point::new(0.6, 0.6));
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let pts = sample_perforated(800, hole, &mut rng);
        assert_eq!(pts.len(), 800);
        assert!(pts.iter().all(|p| !hole.contains(*p)));
        assert!(pts.iter().all(|p| unit_square().contains(*p)));
    }

    #[test]
    #[should_panic(expected = "whole unit square")]
    fn perforated_rejects_total_hole() {
        let hole = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let _ = sample_perforated(10, hole, &mut rng);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(rate, &mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "mean {mean} far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert!((0..1000).all(|_| exponential(1.0, &mut rng) >= 0.0));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn exponential_rejects_bad_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let _ = exponential(0.0, &mut rng);
    }

    #[test]
    fn uniform_index_excluding_never_returns_excluded() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..5000 {
            let x = uniform_index_excluding(7, 3, &mut rng);
            assert!(x < 7 && x != 3);
        }
    }

    #[test]
    fn uniform_index_excluding_hits_everything_else() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut seen = [false; 5];
        for _ in 0..2000 {
            seen[uniform_index_excluding(5, 2, &mut rng)] = true;
        }
        assert_eq!(seen, [true, true, false, true, true]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn uniform_index_excluding_rejects_singleton() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let _ = uniform_index_excluding(1, 0, &mut rng);
    }
}
