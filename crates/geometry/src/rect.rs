//! Axis-aligned rectangles, used for the unit square and all its sub-squares.

use crate::point::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
///
/// The hierarchical partition of the paper only ever produces *squares*, but a
/// general rectangle type keeps the arithmetic honest when splitting into a
/// number of columns/rows that does not divide the side length exactly.
///
/// Containment follows the usual half-open convention on the interior edges so
/// that a partition of a rectangle into sub-rectangles assigns every point to
/// exactly one part: a point on a shared edge belongs to the part with the
/// larger coordinates, except on the outer boundary of the parent rectangle
/// which remains inclusive.
///
/// # Example
///
/// ```
/// use geogossip_geometry::{Point, Rect};
/// let r = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
/// assert!(r.contains(Point::new(0.5, 0.5)));
/// assert_eq!(r.area(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    ///
    /// Panics if `min.x > max.x` or `min.y > max.y`, or if any coordinate is
    /// not finite.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.is_finite() && max.is_finite(),
            "rect corners must be finite"
        );
        assert!(
            min.x <= max.x && min.y <= max.y,
            "rect min corner must not exceed max corner"
        );
        Rect { min, max }
    }

    /// The lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// The upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center of the rectangle.
    ///
    /// The paper's leader `s(□)` is the sensor closest to this point
    /// (Definition 1).
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Whether `p` lies inside the rectangle (inclusive of the boundary).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Splits the rectangle into a `cols × rows` grid of sub-rectangles.
    ///
    /// Sub-rectangles are returned in row-major order (left to right, bottom
    /// to top). Their union is exactly `self` and they overlap only on edges.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    pub fn split_grid(&self, cols: usize, rows: usize) -> Vec<Rect> {
        assert!(
            cols > 0 && rows > 0,
            "grid split requires at least one column and one row"
        );
        let mut out = Vec::with_capacity(cols * rows);
        let w = self.width() / cols as f64;
        let h = self.height() / rows as f64;
        for row in 0..rows {
            for col in 0..cols {
                let min = Point::new(self.min.x + col as f64 * w, self.min.y + row as f64 * h);
                // Use the parent's max on the outer edge to avoid floating drift.
                let max_x = if col + 1 == cols {
                    self.max.x
                } else {
                    self.min.x + (col + 1) as f64 * w
                };
                let max_y = if row + 1 == rows {
                    self.max.y
                } else {
                    self.min.y + (row + 1) as f64 * h
                };
                out.push(Rect::new(min, Point::new(max_x, max_y)));
            }
        }
        out
    }

    /// Index (row-major, as produced by [`Rect::split_grid`]) of the grid cell
    /// containing `p`, for a `cols × rows` split of this rectangle.
    ///
    /// Points outside the rectangle are clamped onto it first, so the result
    /// is always a valid index; this mirrors the half-open containment used by
    /// the partition code and guarantees every sensor is assigned to exactly
    /// one sub-square.
    pub fn grid_index_of(&self, p: Point, cols: usize, rows: usize) -> usize {
        assert!(
            cols > 0 && rows > 0,
            "grid index requires at least one column and one row"
        );
        let fx = ((p.x - self.min.x) / self.width()).clamp(0.0, 1.0 - f64::EPSILON);
        let fy = ((p.y - self.min.y) / self.height()).clamp(0.0, 1.0 - f64::EPSILON);
        let col = ((fx * cols as f64) as usize).min(cols - 1);
        let row = ((fy * rows as f64) as usize).min(rows - 1);
        row * cols + col
    }

    /// Area of the overlap between this rectangle and `other` (zero when they
    /// are disjoint).
    ///
    /// # Example
    ///
    /// ```
    /// use geogossip_geometry::{Point, Rect};
    /// let a = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
    /// let b = Rect::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
    /// assert!((a.intersection_area(b) - 0.25).abs() < 1e-12);
    /// ```
    pub fn intersection_area(&self, other: Rect) -> f64 {
        let width = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let height = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        width * height
    }

    /// Euclidean distance from `p` to the closest point of the rectangle
    /// (zero when `p` is inside).
    pub fn distance_to(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.4},{:.4}]x[{:.4},{:.4}]",
            self.min.x, self.max.x, self.min.y, self.max.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn center_of_unit_square() {
        assert_eq!(unit().center(), Point::new(0.5, 0.5));
    }

    #[test]
    fn contains_boundary_points() {
        let r = unit();
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(!r.contains(Point::new(1.0 + 1e-9, 0.5)));
    }

    #[test]
    fn split_grid_covers_area() {
        let parts = unit().split_grid(4, 4);
        assert_eq!(parts.len(), 16);
        let total: f64 = parts.iter().map(Rect::area).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_grid_outer_edges_match_parent() {
        let r = Rect::new(Point::new(0.2, 0.3), Point::new(0.9, 0.8));
        let parts = r.split_grid(3, 2);
        let last = parts.last().unwrap();
        assert_eq!(last.max(), r.max());
        assert_eq!(parts[0].min(), r.min());
    }

    #[test]
    fn grid_index_assigns_every_point_once() {
        let r = unit();
        let parts = r.split_grid(5, 5);
        for &p in &[
            Point::new(0.0, 0.0),
            Point::new(0.999, 0.999),
            Point::new(1.0, 1.0),
            Point::new(0.2, 0.8),
            Point::new(0.5, 0.5),
        ] {
            let idx = r.grid_index_of(p, 5, 5);
            assert!(idx < 25);
            // The indexed cell must actually contain the point (up to the
            // half-open boundary convention, inclusive containment holds).
            assert!(parts[idx].contains(p), "cell {idx} does not contain {p}");
        }
    }

    #[test]
    fn grid_index_matches_split_layout() {
        let r = unit();
        // Point in the second column, first row of a 4x4 split.
        let idx = r.grid_index_of(Point::new(0.3, 0.1), 4, 4);
        assert_eq!(idx, 1);
        // Point in the last column, last row.
        let idx = r.grid_index_of(Point::new(0.99, 0.99), 4, 4);
        assert_eq!(idx, 15);
    }

    #[test]
    fn distance_to_inside_is_zero() {
        assert_eq!(unit().distance_to(Point::new(0.4, 0.4)), 0.0);
    }

    #[test]
    fn distance_to_outside_is_positive() {
        let d = unit().distance_to(Point::new(2.0, 0.5));
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "min corner")]
    fn rejects_inverted_corners() {
        let _ = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn split_grid_rejects_zero() {
        let _ = unit().split_grid(0, 3);
    }
}
