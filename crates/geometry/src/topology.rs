//! Surface topologies for the unit square.
//!
//! The paper places its sensors on the plain unit square, where boundary
//! sensors have asymmetric neighborhoods. Wrapping the square into a torus
//! (periodic boundary conditions) removes the boundary effects, which is the
//! standard trick for isolating bulk behaviour from edge behaviour in
//! geometric-random-graph experiments. [`Topology`] selects the metric; the
//! graph layer threads it through adjacency construction.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// The surface the unit square's points live on, i.e. the metric used for
/// radio connectivity.
///
/// # Example
///
/// ```
/// use geogossip_geometry::{Point, Topology};
/// let a = Point::new(0.05, 0.5);
/// let b = Point::new(0.95, 0.5);
/// assert!((Topology::UnitSquare.distance(a, b) - 0.9).abs() < 1e-12);
/// // On the torus the two points are near-neighbors across the seam.
/// assert!((Topology::Torus.distance(a, b) - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// The plain unit square `[0,1]²` with the Euclidean metric — the paper's
    /// model.
    #[default]
    UnitSquare,
    /// The unit torus: opposite edges identified, distances measured with
    /// per-axis wrap-around. Every point then has a statistically identical
    /// neighborhood.
    Torus,
}

impl Topology {
    /// Squared distance between `a` and `b` under this topology.
    ///
    /// For the torus each axis contributes `min(|d|, 1 − |d|)²`; for points
    /// inside the unit square this is never larger than the Euclidean
    /// distance, so torus neighborhoods are supersets of unit-square
    /// neighborhoods at equal radius (the property test in
    /// `tests/topology_properties.rs` pins this).
    pub fn distance_squared(self, a: Point, b: Point) -> f64 {
        match self {
            Topology::UnitSquare => a.distance_squared(b),
            Topology::Torus => {
                let dx = wrap_delta(a.x - b.x);
                let dy = wrap_delta(a.y - b.y);
                dx * dx + dy * dy
            }
        }
    }

    /// Distance between `a` and `b` under this topology.
    pub fn distance(self, a: Point, b: Point) -> f64 {
        self.distance_squared(a, b).sqrt()
    }

    /// The stable token used in scenario JSON and on the CLI.
    pub fn token(self) -> &'static str {
        match self {
            Topology::UnitSquare => "unit-square",
            Topology::Torus => "torus",
        }
    }

    /// Parses a [`Topology::token`] back into a topology.
    pub fn parse(token: &str) -> Option<Topology> {
        match token {
            "unit-square" => Some(Topology::UnitSquare),
            "torus" => Some(Topology::Torus),
            _ => None,
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.token())
    }
}

/// Wraps a coordinate difference onto the torus: the representative of `d`
/// (mod 1) with the smallest absolute value.
///
/// Exposed so hot loops (grid queries, greedy routing) can form wrapped
/// squared distances from raw coordinate deltas without going through
/// [`Topology::distance_squared`]'s enum dispatch per pair.
#[inline]
pub fn wrap_delta(d: f64) -> f64 {
    let d = d.abs() % 1.0;
    d.min(1.0 - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_distance_never_exceeds_euclidean() {
        for &(ax, ay, bx, by) in &[
            (0.0, 0.0, 1.0, 1.0),
            (0.02, 0.5, 0.98, 0.5),
            (0.5, 0.01, 0.5, 0.99),
            (0.25, 0.25, 0.75, 0.75),
            (0.1, 0.9, 0.9, 0.1),
        ] {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            assert!(
                Topology::Torus.distance(a, b) <= Topology::UnitSquare.distance(a, b) + 1e-15,
                "torus exceeded euclidean for {a} -> {b}"
            );
        }
    }

    #[test]
    fn torus_wraps_the_seam() {
        let a = Point::new(0.01, 0.0);
        let b = Point::new(0.99, 0.0);
        assert!((Topology::Torus.distance(a, b) - 0.02).abs() < 1e-12);
        // Opposite corners are 1/√2·... actually √(0.02² + 0.02²) apart.
        let c = Point::new(0.01, 0.01);
        let d = Point::new(0.99, 0.99);
        let expected = (2.0 * 0.02_f64 * 0.02).sqrt();
        assert!((Topology::Torus.distance(c, d) - expected).abs() < 1e-12);
    }

    #[test]
    fn torus_distance_is_symmetric_and_bounded() {
        let a = Point::new(0.1, 0.7);
        let b = Point::new(0.8, 0.2);
        let ab = Topology::Torus.distance(a, b);
        let ba = Topology::Torus.distance(b, a);
        assert!((ab - ba).abs() < 1e-15);
        // No two torus points are farther apart than the half-diagonal.
        assert!(ab <= (0.5f64 * 0.5 + 0.5 * 0.5).sqrt() + 1e-15);
    }

    #[test]
    fn unit_square_matches_point_distance() {
        let a = Point::new(0.3, 0.4);
        let b = Point::new(0.6, 0.8);
        assert_eq!(Topology::UnitSquare.distance(a, b), a.distance(b));
    }

    #[test]
    fn tokens_round_trip() {
        for topology in [Topology::UnitSquare, Topology::Torus] {
            assert_eq!(Topology::parse(topology.token()), Some(topology));
            assert_eq!(topology.to_string(), topology.token());
        }
        assert_eq!(Topology::parse("klein-bottle"), None);
        assert_eq!(Topology::default(), Topology::UnitSquare);
    }
}
