//! Property-based tests on the gossip protocols themselves (as opposed to the
//! cross-crate properties in the workspace-level test suite): mass
//! conservation and error monotonicity under arbitrary initial values, and
//! validity of the hierarchy for arbitrary network sizes.

use geogossip_core::affine::Hierarchy;
use geogossip_core::prelude::*;
use geogossip_geometry::sampling::sample_unit_square;
use geogossip_geometry::PartitionConfig;
use geogossip_graph::GeometricGraph;
use geogossip_sim::{AsyncEngine, StopCondition};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn network(n: usize, seed: u64) -> GeometricGraph {
    let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
    GeometricGraph::build_at_connectivity_radius(pts, 2.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pairwise gossip conserves the mean for arbitrary initial values and
    /// never increases the relative error (convex updates are contractive).
    #[test]
    fn pairwise_gossip_conserves_mass_for_arbitrary_values(
        seed in 0u64..200,
        values in proptest::collection::vec(-100.0f64..100.0, 64),
    ) {
        let graph = network(64, seed);
        let mut protocol = PairwiseGossip::new(&graph, values).unwrap();
        let before_error = protocol.state().relative_error();
        let _ = AsyncEngine::new(64).run(
            &mut protocol,
            StopCondition::at_epsilon(1e-9).with_max_ticks(5_000),
            &mut ChaCha8Rng::seed_from_u64(seed ^ 0xabcd),
        );
        prop_assert!(protocol.state().mass_drift() < 1e-6);
        prop_assert!(protocol.state().relative_error() <= before_error + 1e-9);
    }

    /// The round-based affine protocol conserves the mean for arbitrary
    /// initial values (affine exchanges are non-convex but sum-preserving).
    #[test]
    fn affine_gossip_conserves_mass_for_arbitrary_values(
        seed in 0u64..100,
        values in proptest::collection::vec(-50.0f64..50.0, 128),
    ) {
        let graph = network(128, seed);
        let mut protocol = RoundBasedAffineGossip::new(
            &graph,
            values,
            RoundBasedConfig::idealized(128),
        )
        .unwrap();
        let _ = protocol.run_until(0.2, &mut ChaCha8Rng::seed_from_u64(seed ^ 0x1234));
        prop_assert!(protocol.state().mass_drift() < 1e-6);
    }

    /// The hierarchy is structurally valid for any network size in a wide
    /// range: every populated cell has a leader who is one of its members, and
    /// every sensor belongs to exactly one leaf.
    #[test]
    fn hierarchy_is_structurally_valid(n in 50usize..400, seed in 0u64..200) {
        let graph = network(n, seed);
        let hierarchy = Hierarchy::build(&graph, PartitionConfig::practical(n)).unwrap();
        let mut leaf_membership = vec![0usize; n];
        for depth in 0..hierarchy.levels() {
            for &cell in hierarchy.populated_cells_at_depth(depth) {
                let leader = hierarchy.leader(cell).unwrap();
                prop_assert!(hierarchy.members(cell).contains(&leader.index()));
            }
        }
        for (idx, cell) in hierarchy.partition().cells().iter().enumerate() {
            if cell.is_leaf() {
                for &m in cell.members() {
                    leaf_membership[m] += 1;
                    prop_assert_eq!(hierarchy.leaf_of(geogossip_geometry::point::NodeId(m)), idx);
                }
            }
        }
        prop_assert!(leaf_membership.iter().all(|&c| c == 1));
    }

    /// Initial conditions always produce vectors of the requested length with
    /// finite entries.
    #[test]
    fn initial_conditions_are_well_formed(n in 0usize..500, seed in 0u64..100) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for condition in InitialCondition::all() {
            let v = condition.generate(n, &mut rng);
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}
