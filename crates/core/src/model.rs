//! The complete-graph models behind Lemma 1 and Lemma 2 of the paper.
//!
//! The hierarchical protocol's convergence rests on an abstract fact about
//! asymmetric affine gossip on the complete graph `K_n` (Appendix A):
//!
//! * **Lemma 1.** With per-node coefficients `α_i ∈ (1/3, 1/2)`, the update
//!   `x_i ← (1−α_i)x_i + α_j x_j`, `x_j ← (1−α_j)x_j + α_i x_i` applied to a
//!   uniformly random pair per clock tick satisfies
//!   `E‖x(t)‖² < (1 − 1/2n)^t ‖x(0)‖²` (for sum-zero `x(0)`).
//! * **Lemma 2.** The same dynamics with bounded additive perturbations
//!   `±n(t)`, `|n(t)| < ε`, stays below
//!   `n^{a/2}((1−1/2n)^{t/2}‖y(0)‖ + 8√2·n^{3/2}·ε)` with probability at least
//!   `1 − 5/n^a`.
//!
//! In the full protocol the "nodes" of these models are the sub-squares of a
//! cell and the perturbations are the residual errors of imperfect local
//! averaging (Section 6). Experiments E1 and E2 check both statements
//! directly against these reference implementations.

use crate::error::ProtocolError;
use geogossip_geometry::sampling::uniform_index_excluding;
use geogossip_sim::clock::Tick;
use geogossip_sim::engine::{Activation, Clocking, SquaredError};
use geogossip_sim::metrics::TransmissionCounter;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Lower end of the coefficient range required by Lemma 1.
pub const ALPHA_MIN: f64 = 1.0 / 3.0;
/// Upper end of the coefficient range required by Lemma 1.
pub const ALPHA_MAX: f64 = 0.5;

/// The Lemma-1 dynamics: asymmetric affine gossip on the complete graph.
///
/// # Example
///
/// ```
/// use geogossip_core::model::AffineCompleteGraph;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let mut model = AffineCompleteGraph::with_uniform_alpha(16, 0.4).unwrap();
/// model.set_centered_values((0..16).map(|i| i as f64).collect()).unwrap();
/// let before = model.squared_norm();
/// model.run(1_000, &mut rng);
/// assert!(model.squared_norm() < before);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffineCompleteGraph {
    alphas: Vec<f64>,
    values: Vec<f64>,
    initial_squared_norm: f64,
    ticks: u64,
    /// Cached `‖x‖²`, maintained incrementally by [`Self::step`] (each step
    /// touches only two entries). Kept accurate by the same drift-bound
    /// scheme `GossipState` uses: `drift_bound` accumulates an upper bound on
    /// the absorbed rounding error, and the sum is recomputed exactly
    /// whenever the cached value is no longer guaranteed accurate to ~1e-10
    /// relative. This keeps [`Self::squared_norm`] `O(1)` amortised — the
    /// engine reads it through `Activation::relative_error` on every tick.
    sum_sq: f64,
    drift_bound: f64,
}

/// The cached squared norm is recomputed once it is within this factor of the
/// accumulated drift bound (same guard as `GossipState`).
const NORM_DRIFT_GUARD: f64 = 1e10;

impl AffineCompleteGraph {
    /// Creates the model with explicit per-node coefficients, all of which
    /// must lie in the open interval `(1/3, 1/2)` required by Lemma 1.
    /// Values start at zero; set them with [`Self::set_values`] or
    /// [`Self::set_centered_values`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyNetwork`] for an empty coefficient vector
    /// and [`ProtocolError::InvalidParameter`] when any coefficient is outside
    /// `(1/3, 1/2)`.
    pub fn new(alphas: Vec<f64>) -> Result<Self, ProtocolError> {
        if alphas.is_empty() {
            return Err(ProtocolError::EmptyNetwork);
        }
        if let Some(bad) = alphas
            .iter()
            .find(|a| !a.is_finite() || **a <= ALPHA_MIN || **a >= ALPHA_MAX)
        {
            return Err(ProtocolError::InvalidParameter {
                name: "alpha".into(),
                reason: format!("coefficient {bad} outside the open interval (1/3, 1/2)"),
            });
        }
        let n = alphas.len();
        Ok(AffineCompleteGraph {
            alphas,
            values: vec![0.0; n],
            initial_squared_norm: 0.0,
            ticks: 0,
            sum_sq: 0.0,
            drift_bound: 0.0,
        })
    }

    /// Creates the model with every coefficient equal to `alpha`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn with_uniform_alpha(n: usize, alpha: f64) -> Result<Self, ProtocolError> {
        Self::new(vec![alpha; n])
    }

    /// Creates the model with coefficients drawn independently and uniformly
    /// from the open interval `(1/3, 1/2)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyNetwork`] when `n == 0`.
    pub fn with_random_alphas<R: Rng + ?Sized>(
        n: usize,
        rng: &mut R,
    ) -> Result<Self, ProtocolError> {
        if n == 0 {
            return Err(ProtocolError::EmptyNetwork);
        }
        let width = ALPHA_MAX - ALPHA_MIN;
        let alphas = (0..n)
            .map(|_| ALPHA_MIN + width * (0.001 + 0.998 * rng.gen::<f64>()))
            .collect();
        Self::new(alphas)
    }

    /// Sets the value vector exactly as given.
    ///
    /// Lemma 1's bound concerns sum-zero vectors; use
    /// [`Self::set_centered_values`] when reproducing it.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ValueLengthMismatch`] when the length differs
    /// from the number of nodes.
    pub fn set_values(&mut self, values: Vec<f64>) -> Result<(), ProtocolError> {
        if values.len() != self.alphas.len() {
            return Err(ProtocolError::ValueLengthMismatch {
                nodes: self.alphas.len(),
                values: values.len(),
            });
        }
        self.initial_squared_norm = values.iter().map(|v| v * v).sum();
        self.values = values;
        self.ticks = 0;
        self.sum_sq = self.initial_squared_norm;
        self.drift_bound = f64::EPSILON * self.sum_sq;
        Ok(())
    }

    /// Sets the value vector after subtracting its mean, so the sum is zero as
    /// the paper assumes w.l.o.g. (Section 2.1).
    ///
    /// # Errors
    ///
    /// Same as [`Self::set_values`].
    pub fn set_centered_values(&mut self, mut values: Vec<f64>) -> Result<(), ProtocolError> {
        if !values.is_empty() {
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            for v in &mut values {
                *v -= mean;
            }
        }
        self.set_values(values)
    }

    /// Number of nodes `n`.
    pub fn len(&self) -> usize {
        self.alphas.len()
    }

    /// Whether the model has no nodes (never true for a constructed model).
    pub fn is_empty(&self) -> bool {
        self.alphas.is_empty()
    }

    /// The per-node coefficients.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// The current value vector.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of clock ticks applied since the values were last set.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Current `‖x(t)‖²`, read from the incrementally maintained cache
    /// (`O(1)`; exact to ~1e-10 relative, with exact recomputation whenever
    /// the drift bound degrades past that).
    pub fn squared_norm(&self) -> f64 {
        self.sum_sq.max(0.0)
    }

    /// Folds the change of one squared term pair into the cached norm and
    /// recomputes exactly once the accumulated rounding error could matter.
    fn track_norm_change(&mut self, old_sq: f64, new_sq: f64) {
        self.sum_sq += new_sq - old_sq;
        // Each squaring, the subtraction and the accumulation contribute at
        // most one ulp of their operand's magnitude.
        self.drift_bound += f64::EPSILON * (new_sq + old_sq + self.sum_sq.abs());
        if self.sum_sq < self.drift_bound * NORM_DRIFT_GUARD {
            self.sum_sq = self.values.iter().map(|v| v * v).sum();
            self.drift_bound = f64::EPSILON * self.sum_sq;
        }
    }

    /// Adds `delta` to one value, keeping the cached norm in sync (used by
    /// the perturbed Lemma-2 dynamics).
    fn nudge(&mut self, i: usize, delta: f64) {
        let old = self.values[i];
        let new = old + delta;
        self.values[i] = new;
        self.track_norm_change(old * old, new * new);
    }

    /// `‖x(0)‖²` at the time the values were last set.
    pub fn initial_squared_norm(&self) -> f64 {
        self.initial_squared_norm
    }

    /// Current sum of all values (conserved by the dynamics).
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Applies one clock tick: a uniformly random node `i` contacts a
    /// uniformly random other node `j` and both update with their own
    /// coefficients. Returns the pair `(i, j)`.
    ///
    /// Single-node models are a no-op (there is nobody to contact).
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (usize, usize) {
        self.ticks += 1;
        let n = self.len();
        if n < 2 {
            return (0, 0);
        }
        let i = rng.gen_range(0..n);
        let j = uniform_index_excluding(n, i, rng);
        let (xi, xj) = (self.values[i], self.values[j]);
        let (ai, aj) = (self.alphas[i], self.alphas[j]);
        let (ni, nj) = ((1.0 - ai) * xi + aj * xj, (1.0 - aj) * xj + ai * xi);
        self.values[i] = ni;
        self.values[j] = nj;
        self.track_norm_change(xi * xi + xj * xj, ni * ni + nj * nj);
        (i, j)
    }

    /// Applies `ticks` clock ticks.
    pub fn run<R: Rng + ?Sized>(&mut self, ticks: u64, rng: &mut R) {
        for _ in 0..ticks {
            self.step(rng);
        }
    }

    /// Lemma 1's bound on `E‖x(t)‖²` after `t` ticks: `(1 − 1/2n)^t ‖x(0)‖²`.
    pub fn lemma1_bound(&self, t: u64) -> f64 {
        let n = self.len() as f64;
        (1.0 - 1.0 / (2.0 * n)).powi(t as i32) * self.initial_squared_norm
    }
}

/// Bounded additive perturbations for the Lemma-2 dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PerturbationKind {
    /// Every perturbation is exactly `+magnitude` (worst case in one
    /// direction).
    Constant,
    /// Perturbations are drawn uniformly from `[-magnitude, +magnitude]`.
    UniformSymmetric,
    /// Perturbations alternate sign: `+magnitude, -magnitude, …`.
    Alternating,
}

/// The Lemma-2 dynamics: the Lemma-1 update plus a bounded perturbation
/// `+n(t)` on the caller and `−n(t)` on the callee.
///
/// The perturbation models the residual error of imperfect local averaging
/// inside the cells the two "nodes" stand for (Section 6 of the paper).
///
/// # Example
///
/// ```
/// use geogossip_core::model::{PerturbationKind, PerturbedAffineCompleteGraph};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(2);
/// let mut model = PerturbedAffineCompleteGraph::new(
///     32, 0.4, 1e-6, PerturbationKind::UniformSymmetric,
/// ).unwrap();
/// model.set_centered_values((0..32).map(|i| (i % 5) as f64).collect()).unwrap();
/// model.run(5_000, &mut rng);
/// // The norm stays well below the Lemma-2 envelope for a = 1.
/// assert!(model.norm() <= model.lemma2_bound(5_000, 1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerturbedAffineCompleteGraph {
    inner: AffineCompleteGraph,
    magnitude: f64,
    kind: PerturbationKind,
    initial_norm: f64,
    parity: bool,
}

impl PerturbedAffineCompleteGraph {
    /// Creates the perturbed model with uniform coefficient `alpha`,
    /// perturbation magnitude bound `magnitude` (the `ε` of Lemma 2), and the
    /// chosen perturbation pattern.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`AffineCompleteGraph::new`], plus
    /// [`ProtocolError::InvalidParameter`] when `magnitude` is negative or not
    /// finite.
    pub fn new(
        n: usize,
        alpha: f64,
        magnitude: f64,
        kind: PerturbationKind,
    ) -> Result<Self, ProtocolError> {
        if !magnitude.is_finite() || magnitude < 0.0 {
            return Err(ProtocolError::InvalidParameter {
                name: "magnitude".into(),
                reason: "perturbation bound must be non-negative and finite".into(),
            });
        }
        Ok(PerturbedAffineCompleteGraph {
            inner: AffineCompleteGraph::with_uniform_alpha(n, alpha)?,
            magnitude,
            kind,
            initial_norm: 0.0,
            parity: false,
        })
    }

    /// Sets the value vector after centering it (sum zero), as in Lemma 2's
    /// use inside the protocol.
    ///
    /// # Errors
    ///
    /// Same as [`AffineCompleteGraph::set_values`].
    pub fn set_centered_values(&mut self, values: Vec<f64>) -> Result<(), ProtocolError> {
        self.inner.set_centered_values(values)?;
        self.initial_norm = self.inner.squared_norm().sqrt();
        Ok(())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the model has no nodes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current `‖y(t)‖`.
    pub fn norm(&self) -> f64 {
        self.inner.squared_norm().sqrt()
    }

    /// `‖y(0)‖` at the time the values were last set.
    pub fn initial_norm(&self) -> f64 {
        self.initial_norm
    }

    /// The current value vector.
    pub fn values(&self) -> &[f64] {
        self.inner.values()
    }

    /// Applies one perturbed clock tick.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let noise = match self.kind {
            PerturbationKind::Constant => self.magnitude,
            PerturbationKind::UniformSymmetric => (2.0 * rng.gen::<f64>() - 1.0) * self.magnitude,
            PerturbationKind::Alternating => {
                self.parity = !self.parity;
                if self.parity {
                    self.magnitude
                } else {
                    -self.magnitude
                }
            }
        };
        let (i, j) = self.inner.step(rng);
        if i != j {
            self.inner.nudge(i, noise);
            self.inner.nudge(j, -noise);
        }
    }

    /// Applies `ticks` perturbed clock ticks.
    pub fn run<R: Rng + ?Sized>(&mut self, ticks: u64, rng: &mut R) {
        for _ in 0..ticks {
            self.step(rng);
        }
    }

    /// Lemma 2's high-probability envelope on `‖y(t)‖` for exponent `a`:
    /// `n^{a/2}·((1 − 1/2n)^{t/2}·‖y(0)‖ + 8√2·n^{3/2}·ε)`.
    ///
    /// The bound holds with probability at least `1 − 5/n^a`.
    pub fn lemma2_bound(&self, t: u64, a: f64) -> f64 {
        let n = self.len() as f64;
        let decay = (1.0 - 1.0 / (2.0 * n)).powf(t as f64 / 2.0);
        n.powf(a / 2.0)
            * (decay * self.initial_norm + 8.0 * (2.0_f64).sqrt() * n.powf(1.5) * self.magnitude)
    }

    /// Number of clock ticks applied since the values were last set.
    pub fn ticks(&self) -> u64 {
        self.inner.ticks()
    }
}

/// The Lemma-1 dynamics as a self-paced [`Activation`], so the complete-graph
/// model can run through the scenario registry (`"affine-complete"`) and the
/// contraction experiment E1 can read its trajectory from the engine trace.
///
/// Each engine tick applies one model step and charges 2 (abstract) local
/// transmissions for the pair exchange; the relative error is
/// `‖x(t)‖ / ‖x(0)‖`, so the engine's trace records exactly the normalised
/// norm sequence the Lemma-1 bound is about.
#[derive(Debug, Clone)]
pub struct CompleteGraphActivation {
    model: AffineCompleteGraph,
    initial_norm: f64,
}

impl CompleteGraphActivation {
    /// Wraps a model whose values have already been set.
    pub fn new(model: AffineCompleteGraph) -> Self {
        let initial_norm = model.initial_squared_norm().sqrt();
        CompleteGraphActivation {
            model,
            initial_norm,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &AffineCompleteGraph {
        &self.model
    }
}

impl Activation for CompleteGraphActivation {
    fn on_tick(&mut self, _tick: Tick, tx: &mut TransmissionCounter, rng: &mut dyn RngCore) {
        let (i, j) = self.model.step(rng);
        if i != j {
            tx.charge_local(2);
        }
    }

    fn relative_error(&self) -> f64 {
        if self.initial_norm == 0.0 {
            return 0.0;
        }
        self.model.squared_norm().sqrt() / self.initial_norm
    }

    fn squared_error(&self) -> Option<SquaredError> {
        Some(SquaredError {
            current_sq: self.model.squared_norm(),
            initial: self.initial_norm,
        })
    }

    fn name(&self) -> &str {
        "affine complete graph (Lemma 1)"
    }

    fn metrics(&self) -> Vec<(String, f64)> {
        vec![
            ("squared_norm".into(), self.model.squared_norm()),
            (
                "lemma1_bound".into(),
                self.model.lemma1_bound(self.model.ticks()),
            ),
            ("ticks".into(), self.model.ticks() as f64),
        ]
    }

    fn clocking(&self) -> Clocking {
        Clocking::SelfPaced
    }
}

/// The Lemma-2 perturbed dynamics as a self-paced [`Activation`]
/// (`"perturbed-affine-complete"` in the registry); experiment E2 reads the
/// final norm and the Lemma-2 envelope from [`Activation::metrics`].
#[derive(Debug, Clone)]
pub struct PerturbedCompleteGraphActivation {
    model: PerturbedAffineCompleteGraph,
}

impl PerturbedCompleteGraphActivation {
    /// Wraps a model whose values have already been set.
    pub fn new(model: PerturbedAffineCompleteGraph) -> Self {
        PerturbedCompleteGraphActivation { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &PerturbedAffineCompleteGraph {
        &self.model
    }
}

impl Activation for PerturbedCompleteGraphActivation {
    fn on_tick(&mut self, _tick: Tick, tx: &mut TransmissionCounter, rng: &mut dyn RngCore) {
        self.model.step(rng);
        tx.charge_local(2);
    }

    fn relative_error(&self) -> f64 {
        if self.model.initial_norm() == 0.0 {
            return 0.0;
        }
        self.model.norm() / self.model.initial_norm()
    }

    fn squared_error(&self) -> Option<SquaredError> {
        // The perturbed model tracks the unsquared norm; squaring it here is
        // within the few-ulp contract of the hook (the engine's filter is
        // conservative and confirms crossings exactly).
        let norm = self.model.norm();
        Some(SquaredError {
            current_sq: norm * norm,
            initial: self.model.initial_norm(),
        })
    }

    fn name(&self) -> &str {
        "perturbed affine complete graph (Lemma 2)"
    }

    fn metrics(&self) -> Vec<(String, f64)> {
        vec![
            ("norm".into(), self.model.norm()),
            ("initial_norm".into(), self.model.initial_norm()),
            (
                "lemma2_envelope_a1".into(),
                self.model.lemma2_bound(self.model.ticks(), 1.0),
            ),
            ("ticks".into(), self.model.ticks() as f64),
        ]
    }

    fn clocking(&self) -> Clocking {
        Clocking::SelfPaced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn centered_ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn rejects_out_of_range_alphas() {
        assert!(AffineCompleteGraph::with_uniform_alpha(8, 0.2).is_err());
        assert!(AffineCompleteGraph::with_uniform_alpha(8, 0.6).is_err());
        assert!(AffineCompleteGraph::with_uniform_alpha(8, 1.0 / 3.0).is_err());
        assert!(AffineCompleteGraph::with_uniform_alpha(8, 0.5).is_err());
        assert!(AffineCompleteGraph::with_uniform_alpha(8, 0.4).is_ok());
        assert!(AffineCompleteGraph::new(Vec::new()).is_err());
    }

    #[test]
    fn random_alphas_are_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = AffineCompleteGraph::with_random_alphas(100, &mut rng).unwrap();
        assert!(model
            .alphas()
            .iter()
            .all(|&a| a > ALPHA_MIN && a < ALPHA_MAX));
    }

    #[test]
    fn value_length_must_match() {
        let mut model = AffineCompleteGraph::with_uniform_alpha(4, 0.4).unwrap();
        assert!(matches!(
            model.set_values(vec![1.0; 3]),
            Err(ProtocolError::ValueLengthMismatch {
                nodes: 4,
                values: 3
            })
        ));
    }

    #[test]
    fn centering_makes_the_sum_zero_and_updates_preserve_it() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut model = AffineCompleteGraph::with_random_alphas(32, &mut rng).unwrap();
        model.set_centered_values(centered_ramp(32)).unwrap();
        assert!(model.sum().abs() < 1e-9);
        model.run(2_000, &mut rng);
        assert!(model.sum().abs() < 1e-7, "sum drifted to {}", model.sum());
    }

    #[test]
    fn squared_norm_decays_roughly_as_lemma1_predicts() {
        // Average over independent runs: the empirical mean of ‖x(t)‖² must
        // stay below the Lemma-1 bound (it is an upper bound on the mean).
        let n = 32;
        let t = 2_000u64;
        let trials = 40;
        let mut total = 0.0;
        let mut bound = 0.0;
        for trial in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(100 + trial);
            let mut model = AffineCompleteGraph::with_random_alphas(n, &mut rng).unwrap();
            model.set_centered_values(centered_ramp(n)).unwrap();
            bound = model.lemma1_bound(t);
            model.run(t, &mut rng);
            total += model.squared_norm();
        }
        let mean = total / trials as f64;
        assert!(
            mean <= bound * 1.05,
            "empirical mean {mean} exceeds Lemma-1 bound {bound}"
        );
        assert!(mean > 0.0);
    }

    #[test]
    fn single_node_model_is_a_fixed_point() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut model = AffineCompleteGraph::with_uniform_alpha(1, 0.4).unwrap();
        model.set_values(vec![5.0]).unwrap();
        model.run(10, &mut rng);
        assert_eq!(model.values(), &[5.0]);
        assert_eq!(model.ticks(), 10);
    }

    #[test]
    fn perturbed_model_with_zero_noise_matches_unperturbed() {
        let mut rng_a = ChaCha8Rng::seed_from_u64(4);
        let mut rng_b = ChaCha8Rng::seed_from_u64(4);
        let mut plain = AffineCompleteGraph::with_uniform_alpha(16, 0.4).unwrap();
        plain.set_centered_values(centered_ramp(16)).unwrap();
        let mut noisy =
            PerturbedAffineCompleteGraph::new(16, 0.4, 0.0, PerturbationKind::Constant).unwrap();
        noisy.set_centered_values(centered_ramp(16)).unwrap();
        // The perturbed model consumes the same amount of randomness per step
        // only for the Constant kind (no extra draws), so the trajectories
        // coincide exactly.
        plain.run(500, &mut rng_a);
        noisy.run(500, &mut rng_b);
        for (a, b) in plain.values().iter().zip(noisy.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn perturbed_model_stays_within_lemma2_envelope() {
        let n = 32;
        let t = 3_000u64;
        let eps = 1e-5;
        for (seed, kind) in [
            (5u64, PerturbationKind::Constant),
            (6, PerturbationKind::UniformSymmetric),
            (7, PerturbationKind::Alternating),
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut model = PerturbedAffineCompleteGraph::new(n, 0.45, eps, kind).unwrap();
            model.set_centered_values(centered_ramp(n)).unwrap();
            model.run(t, &mut rng);
            let bound = model.lemma2_bound(t, 1.0);
            assert!(
                model.norm() <= bound,
                "norm {} exceeded Lemma-2 envelope {bound} for {kind:?}",
                model.norm()
            );
        }
    }

    #[test]
    fn perturbation_magnitude_must_be_nonnegative() {
        assert!(
            PerturbedAffineCompleteGraph::new(8, 0.4, -1.0, PerturbationKind::Constant).is_err()
        );
        assert!(
            PerturbedAffineCompleteGraph::new(8, 0.4, f64::NAN, PerturbationKind::Constant)
                .is_err()
        );
    }

    #[test]
    fn cached_norm_tracks_exact_recomputation_over_long_runs() {
        // The drift-bound scheme must keep the O(1) cached norm within
        // ~1e-10 relative of the exact sum even as the norm decays by many
        // orders of magnitude (small n contracts fast) and under the
        // perturbed dynamics' direct value nudges.
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut model =
            PerturbedAffineCompleteGraph::new(16, 0.45, 1e-8, PerturbationKind::UniformSymmetric)
                .unwrap();
        model.set_centered_values(centered_ramp(16)).unwrap();
        for _ in 0..50 {
            model.run(500, &mut rng);
            let cached = model.norm();
            let exact = model.values().iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(
                (cached - exact).abs() <= 1e-9 * exact.max(1e-300),
                "cached {cached} drifted from exact {exact}"
            );
        }
    }

    #[test]
    fn lemma1_bound_decreases_with_time() {
        let mut model = AffineCompleteGraph::with_uniform_alpha(10, 0.4).unwrap();
        model.set_values(vec![1.0; 10]).unwrap();
        assert!(model.lemma1_bound(10) > model.lemma1_bound(100));
    }
}
