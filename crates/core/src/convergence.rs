//! Empirical convergence-rate estimation.
//!
//! Lemma 1 predicts a per-tick contraction factor of `E‖x(t)‖²` below
//! `1 − 1/2n`; the Section-3 argument predicts that `O(√n·log(n/ε))` leader
//! rounds suffice at the top level. The helpers here turn measured norm
//! trajectories into per-step contraction estimates so experiments E1 and E8
//! can compare measurement against prediction.

use serde::{Deserialize, Serialize};

/// Estimates the average per-step contraction factor of a squared-norm
/// trajectory: the geometric mean of `‖x(t+1)‖²/‖x(t)‖²` over the trajectory.
///
/// Steps where the norm is zero (already converged) are skipped. Returns
/// `None` when fewer than two usable samples exist.
///
/// # Example
///
/// ```
/// use geogossip_core::convergence::contraction_rate;
/// // A perfectly geometric decay with ratio 0.9 per step.
/// let traj: Vec<f64> = (0..10).map(|t| 0.9f64.powi(t)).collect();
/// let rate = contraction_rate(&traj).unwrap();
/// assert!((rate - 0.9).abs() < 1e-12);
/// ```
pub fn contraction_rate(squared_norms: &[f64]) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for w in squared_norms.windows(2) {
        if w[0] > 0.0 && w[1] > 0.0 {
            log_sum += (w[1] / w[0]).ln();
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some((log_sum / count as f64).exp())
    }
}

/// Aggregated contraction estimate over several independent trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceEstimate {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Mean per-step contraction factor of `E‖x‖²` across trials.
    pub mean_rate: f64,
    /// Minimum observed per-trial rate.
    pub min_rate: f64,
    /// Maximum observed per-trial rate.
    pub max_rate: f64,
    /// The theoretical bound being compared against (e.g. `1 − 1/2n`).
    pub theoretical_bound: f64,
}

impl ConvergenceEstimate {
    /// Builds the estimate from per-trial contraction rates and a theoretical
    /// bound. Trials that produced no usable rate (`None`) are ignored.
    ///
    /// Returns `None` when no trial produced a rate.
    pub fn from_rates<I>(rates: I, theoretical_bound: f64) -> Option<Self>
    where
        I: IntoIterator<Item = Option<f64>>,
    {
        let usable: Vec<f64> = rates.into_iter().flatten().collect();
        if usable.is_empty() {
            return None;
        }
        let mean_rate = usable.iter().sum::<f64>() / usable.len() as f64;
        Some(ConvergenceEstimate {
            trials: usable.len(),
            mean_rate,
            min_rate: usable.iter().copied().fold(f64::INFINITY, f64::min),
            max_rate: usable.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            theoretical_bound,
        })
    }

    /// Whether the measured mean contraction is at least as fast as the
    /// theoretical bound (smaller factor = faster contraction), within a
    /// multiplicative `tolerance` (e.g. `0.02` allows the measured rate to be
    /// up to 2% slower than the bound before failing).
    pub fn satisfies_bound(&self, tolerance: f64) -> bool {
        self.mean_rate <= self.theoretical_bound * (1.0 + tolerance)
    }
}

/// Predicted number of clock ticks for the Lemma-1 dynamics on `n` nodes to
/// reduce `‖x‖` by a factor `epsilon`: the smallest `t` with
/// `(1 − 1/2n)^{t/2} ≤ epsilon` (Corollary 1 combined with Markov).
///
/// # Panics
///
/// Panics if `epsilon` is not in `(0, 1]` or `n == 0`.
pub fn predicted_ticks_to_epsilon(n: usize, epsilon: f64) -> u64 {
    assert!(n > 0, "need at least one node");
    assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
    let rate = 1.0 - 1.0 / (2.0 * n as f64);
    // (rate)^{t/2} <= eps  ⇔  t >= 2 ln(eps) / ln(rate)
    (2.0 * epsilon.ln() / rate.ln()).ceil().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contraction_rate_of_geometric_decay() {
        let traj: Vec<f64> = (0..20).map(|t| 100.0 * 0.8f64.powi(t)).collect();
        assert!((contraction_rate(&traj).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn contraction_rate_ignores_zero_norm_steps() {
        let traj = vec![4.0, 2.0, 0.0, 0.0, 0.0];
        // Only the 4 → 2 transition is usable.
        assert!((contraction_rate(&traj).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn contraction_rate_needs_two_samples() {
        assert!(contraction_rate(&[]).is_none());
        assert!(contraction_rate(&[1.0]).is_none());
        assert!(contraction_rate(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn estimate_aggregates_rates() {
        let est =
            ConvergenceEstimate::from_rates(vec![Some(0.9), Some(0.8), None, Some(1.0)], 0.95)
                .unwrap();
        assert_eq!(est.trials, 3);
        assert!((est.mean_rate - 0.9).abs() < 1e-12);
        assert_eq!(est.min_rate, 0.8);
        assert_eq!(est.max_rate, 1.0);
        assert!(est.satisfies_bound(0.0));
        assert!(ConvergenceEstimate::from_rates(vec![None, None], 0.9).is_none());
    }

    #[test]
    fn satisfies_bound_respects_tolerance() {
        let est = ConvergenceEstimate::from_rates(vec![Some(0.97)], 0.95).unwrap();
        assert!(!est.satisfies_bound(0.0));
        assert!(est.satisfies_bound(0.05));
    }

    #[test]
    fn predicted_ticks_grow_with_n_and_precision() {
        assert!(predicted_ticks_to_epsilon(100, 0.01) > predicted_ticks_to_epsilon(10, 0.01));
        assert!(predicted_ticks_to_epsilon(100, 0.001) > predicted_ticks_to_epsilon(100, 0.01));
        assert_eq!(predicted_ticks_to_epsilon(10, 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn predicted_ticks_rejects_bad_epsilon() {
        let _ = predicted_ticks_to_epsilon(10, 0.0);
    }
}
