//! Gossip averaging protocols on geometric random graphs.
//!
//! This is the core crate of the workspace: it implements the paper's
//! contribution — **geographic gossip via non-convex affine combinations**
//! (Narayanan, PODC 2007) — together with the two baselines it is compared
//! against and the complete-graph models its analysis rests on.
//!
//! # Protocols
//!
//! * [`pairwise::PairwiseGossip`] — the Boyd et al. baseline: on each clock
//!   tick a sensor averages with a uniformly random *neighbor*. `Õ(n²)`
//!   transmissions to ε-average on `G(n, r)`.
//! * [`geographic::GeographicGossip`] — the Dimakis et al. baseline: on each
//!   tick a sensor greedily routes to the node nearest a uniformly random
//!   position and the two average. `Õ(n^1.5)` transmissions.
//! * [`affine`] — this paper: a hierarchical square partition with per-cell
//!   leaders; leaders exchange values using *affine* (non-convex) coefficients
//!   as large as `Ω(√n)` and then re-average their cells locally, driving the
//!   total cost to `n^{1+o(1)}`. Provided both as an idealised round-based
//!   recursion ([`affine::round_based`]) and as the paper's literal
//!   state-machine protocol ([`affine::state_machine`]).
//! * [`model`] — the Lemma 1 / Lemma 2 complete-graph dynamics used to verify
//!   the contraction and perturbation bounds directly.
//!
//! # Example
//!
//! ```
//! use geogossip_core::prelude::*;
//! use geogossip_geometry::sampling::sample_unit_square;
//! use geogossip_graph::GeometricGraph;
//! use geogossip_sim::{AsyncEngine, SeedStream, StopCondition};
//!
//! let seeds = SeedStream::new(7);
//! let pts = sample_unit_square(256, &mut seeds.stream("placement"));
//! let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
//! let values = InitialCondition::Spike.generate(graph.len(), &mut seeds.stream("values"));
//!
//! let mut protocol = PairwiseGossip::new(&graph, values).expect("valid network");
//! let mut engine = AsyncEngine::new(graph.len());
//! let report = engine.run(
//!     &mut protocol,
//!     StopCondition::at_epsilon(0.1).with_max_ticks(2_000_000),
//!     &mut seeds.stream("run"),
//! );
//! assert!(report.converged());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod convergence;
pub mod error;
pub mod field;
pub mod geographic;
pub mod model;
pub mod pairwise;
pub mod registry;
pub mod state;
pub mod update;

pub use error::ProtocolError;
pub use registry::{builtin_runner, ProtocolRegistry};
pub use state::{GossipState, InitialCondition};

/// Convenient re-exports of the types most callers need.
pub mod prelude {
    pub use crate::affine::round_based::{
        LocalAveraging, RoundBasedActivation, RoundBasedAffineGossip, RoundBasedConfig,
    };
    pub use crate::affine::state_machine::{AffineStateMachine, ScheduleParams};
    pub use crate::convergence::{contraction_rate, ConvergenceEstimate};
    pub use crate::error::ProtocolError;
    pub use crate::field::Field;
    pub use crate::geographic::GeographicGossip;
    pub use crate::model::{AffineCompleteGraph, PerturbedAffineCompleteGraph};
    pub use crate::pairwise::PairwiseGossip;
    pub use crate::registry::{builtin_runner, ProtocolRegistry};
    pub use crate::state::{GossipState, InitialCondition};
    pub use crate::update::{affine_exchange, convex_average, AffineCoefficient};
}
