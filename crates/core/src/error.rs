//! Error type shared by the protocol constructors.
//!
//! The definition moved to [`geogossip_sim::error`] when the scenario API was
//! introduced (spec validation and protocol construction report through the
//! same type, and `geogossip-sim` sits below this crate in the dependency
//! graph); this module re-exports it under the historical path so existing
//! imports keep working.

pub use geogossip_sim::error::ProtocolError;
