//! Error type shared by the protocol constructors.

use std::error::Error;
use std::fmt;

/// Errors reported when constructing or configuring a gossip protocol.
///
/// Protocol constructors validate their inputs (network size, value vector
/// length, coefficient ranges) and return this error instead of panicking, so
/// experiment harnesses can skip invalid configurations gracefully.
///
/// # Example
///
/// ```
/// use geogossip_core::ProtocolError;
/// let err = ProtocolError::EmptyNetwork;
/// assert_eq!(err.to_string(), "network has no sensors");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The network has no sensors.
    EmptyNetwork,
    /// The initial value vector length does not match the number of sensors.
    ValueLengthMismatch {
        /// Number of sensors in the network.
        nodes: usize,
        /// Length of the supplied value vector.
        values: usize,
    },
    /// A numeric parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The hierarchical protocol needs a partition with at least two top-level
    /// cells that contain sensors.
    DegeneratePartition,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::EmptyNetwork => write!(f, "network has no sensors"),
            ProtocolError::ValueLengthMismatch { nodes, values } => write!(
                f,
                "value vector length {values} does not match sensor count {nodes}"
            ),
            ProtocolError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            ProtocolError::DegeneratePartition => {
                write!(
                    f,
                    "hierarchical partition has fewer than two populated top-level cells"
                )
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(ProtocolError, &str)> = vec![
            (ProtocolError::EmptyNetwork, "network has no sensors"),
            (
                ProtocolError::ValueLengthMismatch {
                    nodes: 3,
                    values: 5,
                },
                "value vector length 5 does not match sensor count 3",
            ),
            (
                ProtocolError::InvalidParameter {
                    name: "epsilon",
                    reason: "must be positive".into(),
                },
                "invalid parameter `epsilon`: must be positive",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ProtocolError>();
    }
}
