//! Sensor value vectors and error metrics.
//!
//! A gossip protocol's entire job is to move the value vector `x(t)` towards
//! the constant vector `x̄·1` while conserving the sum. [`GossipState`] holds
//! the vector together with the quantities needed to measure progress:
//! the initial deviation norm `‖x(0) − x̄·1‖` and the (invariant) mean.
//! [`InitialCondition`] generates the initial vectors used across the
//! experiments.

use serde::{Deserialize, Serialize};

/// Initial value assignments used by the experiments.
///
/// The definition moved to [`geogossip_sim::field`] with the scenario API so
/// the runner can materialise fields below the protocol layer; this re-export
/// keeps the historical `geogossip_core::state::InitialCondition` path
/// working.
pub use geogossip_sim::field::InitialCondition;

/// The values held by all sensors, plus the bookkeeping needed to measure
/// convergence.
///
/// The *relative error* tracked throughout the workspace is
/// `‖x(t) − x̄·1‖₂ / ‖x(0) − x̄·1‖₂`, i.e. the paper's `‖x(t)‖/‖x(0)‖` after the
/// usual centering (the paper assumes `∑x_i = 0` w.l.o.g.; centering performs
/// that reduction explicitly).
///
/// # Incremental error tracking
///
/// The centered squared norm `Σ (x_i − x̄)²` is maintained **incrementally**:
/// every [`GossipState::set`] folds `new² − old²` (in centered coordinates)
/// into a cached accumulator, so [`GossipState::deviation`] and
/// [`GossipState::relative_error`] are `O(1)` and the simulation engine can
/// check convergence on every tick instead of every `n` ticks. Floating-point
/// drift is bounded by exact recomputation: alongside the accumulator the
/// state tracks a running bound on the rounding error absorbed so far, and
/// recomputes the norm from scratch whenever the cached value is no longer
/// guaranteed accurate to ~`1e-10` relative (and unconditionally every
/// `REFRESH_EVERY` updates). Because each exact recomputation resets the drift
/// bound, recomputations are logarithmically rare along a converging
/// trajectory and the amortised cost per update stays `O(1)`.
///
/// # Example
///
/// ```
/// use geogossip_core::GossipState;
/// let mut s = GossipState::new(vec![1.0, 0.0, 0.0, 0.0]);
/// assert!((s.mean() - 0.25).abs() < 1e-12);
/// assert!((s.relative_error() - 1.0).abs() < 1e-12);
/// // Perfectly averaging every entry drives the error to zero.
/// for i in 0..4 { s.set(i, 0.25); }
/// assert!(s.relative_error() < 1e-12);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GossipState {
    values: Vec<f64>,
    mean: f64,
    initial_deviation: f64,
    /// Cached `Σ (x_i − x̄)²`, updated incrementally by [`GossipState::set`].
    sum_sq: std::cell::Cell<f64>,
    /// Running upper bound on the rounding error accumulated in `sum_sq`
    /// since the last exact recomputation.
    drift_bound: std::cell::Cell<f64>,
    /// Set when the cache must be rebuilt before the next read (bulk mutation
    /// through [`GossipState::values_mut`], or the periodic refresh tripping).
    stale: std::cell::Cell<bool>,
    /// Incremental updates applied since the last exact recomputation.
    updates_since_refresh: std::cell::Cell<u32>,
}

/// Exact recomputation is forced after this many incremental updates even if
/// the drift bound still looks safe (belt-and-braces against pathological
/// cancellation the bound model misses).
const REFRESH_EVERY: u32 = 1 << 20;

/// The cached squared norm is recomputed once it is within this factor of the
/// accumulated drift bound, i.e. whenever its guaranteed relative accuracy
/// degrades past ~1e-10. Each recomputation resets the bound, so refreshes
/// are rare (the norm must shrink ten orders of magnitude to trigger again).
const DRIFT_GUARD: f64 = 1e10;

impl GossipState {
    /// Wraps an initial value vector.
    ///
    /// An all-equal (or empty) initial vector has zero deviation; its relative
    /// error is defined as 0 so already-converged states report convergence.
    pub fn new(values: Vec<f64>) -> Self {
        let n = values.len();
        let mean = if n == 0 {
            0.0
        } else {
            values.iter().sum::<f64>() / n as f64
        };
        let sum_sq = centered_sum_sq(&values, mean);
        GossipState {
            initial_deviation: sum_sq.sqrt(),
            values,
            mean,
            sum_sq: std::cell::Cell::new(sum_sq),
            drift_bound: std::cell::Cell::new(f64::EPSILON * sum_sq),
            stale: std::cell::Cell::new(false),
            updates_since_refresh: std::cell::Cell::new(0),
        }
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the state holds no sensors.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The current value vector.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value held by sensor `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn value(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Overwrites the value held by sensor `i`, folding the change into the
    /// incrementally maintained centered squared norm in `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, value: f64) {
        let old = self.values[i];
        self.values[i] = value;
        if self.stale.get() {
            return;
        }
        let old_c = old - self.mean;
        let new_c = value - self.mean;
        let old_sq = old_c * old_c;
        let new_sq = new_c * new_c;
        let sum = self.sum_sq.get() + (new_sq - old_sq);
        self.sum_sq.set(sum);
        // Each of the two squarings, the subtraction, and the accumulation
        // contributes at most one ulp of its operand's magnitude.
        self.drift_bound
            .set(self.drift_bound.get() + f64::EPSILON * (new_sq + old_sq + sum.abs()));
        let updates = self.updates_since_refresh.get() + 1;
        self.updates_since_refresh.set(updates);
        if updates >= REFRESH_EVERY {
            self.stale.set(true);
        }
    }

    /// Mutable access to the underlying vector, for protocols that update many
    /// entries at once. The caller is responsible for conserving the sum; the
    /// cached deviation norm is marked stale and rebuilt exactly on the next
    /// read.
    pub fn values_mut(&mut self) -> &mut [f64] {
        self.stale.set(true);
        &mut self.values
    }

    /// The average of the initial values (which every sensor should converge
    /// to). The mean is fixed at construction time: protocols are expected to
    /// conserve it, and [`GossipState::mass_drift`] measures how well they did.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// `‖x(0) − x̄·1‖₂`, the denominator of the relative error.
    pub fn initial_deviation(&self) -> f64 {
        self.initial_deviation
    }

    /// `‖x(t) − x̄·1‖₂` for the current values.
    ///
    /// `O(1)`: reads the incrementally maintained squared norm, recomputing it
    /// exactly first when the cache is stale or its drift bound says the
    /// cached value may have lost more than ~10 digits (see the type-level
    /// docs).
    pub fn deviation(&self) -> f64 {
        self.deviation_sq().sqrt()
    }

    /// `Σ (x_i − x̄)²` — the centered **squared** norm `‖x(t) − x̄·1‖₂²`,
    /// without the final square root.
    ///
    /// Applies exactly the same stale/drift refresh discipline as
    /// [`GossipState::deviation`] (of which it is the pre-sqrt value), so the
    /// engine's squared-domain stop check observes the identical cache
    /// trajectory as the sqrt-based path and per-tick convergence checks cost
    /// no sqrt at all.
    pub fn deviation_sq(&self) -> f64 {
        let sum = self.sum_sq.get();
        if self.stale.get() || sum < self.drift_bound.get() * DRIFT_GUARD {
            self.refresh_deviation();
        }
        self.sum_sq.get().max(0.0)
    }

    /// Recomputes the cached centered squared norm from scratch and resets the
    /// drift bookkeeping.
    fn refresh_deviation(&self) {
        let sum = centered_sum_sq(&self.values, self.mean);
        self.sum_sq.set(sum);
        self.drift_bound.set(f64::EPSILON * sum);
        self.stale.set(false);
        self.updates_since_refresh.set(0);
    }

    /// The relative ℓ₂ error `‖x(t) − x̄·1‖ / ‖x(0) − x̄·1‖`.
    ///
    /// States that started with zero deviation report 0.
    pub fn relative_error(&self) -> f64 {
        if self.initial_deviation == 0.0 {
            0.0
        } else {
            self.deviation() / self.initial_deviation
        }
    }

    /// Absolute drift of the value sum relative to the initial sum, normalised
    /// by `n`: `|mean(x(t)) − mean(x(0))|`.
    ///
    /// Exact conservation gives 0; floating-point rounding gives values on the
    /// order of machine epsilon. Affine updates *do* conserve the sum
    /// analytically, and tests use this to confirm the implementation does
    /// too.
    pub fn mass_drift(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let current = self.values.iter().sum::<f64>() / self.values.len() as f64;
        (current - self.mean).abs()
    }

    /// Maximum absolute deviation of any single sensor from the target mean.
    pub fn max_deviation(&self) -> f64 {
        self.values
            .iter()
            .map(|v| (v - self.mean).abs())
            .fold(0.0, f64::max)
    }
}

/// Semantic equality: two states are equal when their observable content
/// (values, mean, initial deviation) matches; cache bookkeeping is excluded.
impl PartialEq for GossipState {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
            && self.mean == other.mean
            && self.initial_deviation == other.initial_deviation
    }
}

/// `Σ (x_i − m)²` — the exact centered squared norm.
fn centered_sum_sq(values: &[f64], m: f64) -> f64 {
    values
        .iter()
        .map(|v| {
            let d = v - m;
            d * d
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn spike_initial_condition() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v = InitialCondition::Spike.generate(5, &mut rng);
        assert_eq!(v, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn ramp_is_monotone_and_normalised() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let v = InitialCondition::Ramp.generate(11, &mut rng);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[10], 1.0);
        assert!(v.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn bimodal_sums_to_zero_for_even_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v = InitialCondition::Bimodal.generate(10, &mut rng);
        assert_eq!(v.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn uniform_values_are_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let v = InitialCondition::Uniform.generate(100, &mut rng);
        assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn degenerate_sizes_are_handled() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for cond in InitialCondition::all() {
            assert!(cond.generate(0, &mut rng).is_empty());
            assert_eq!(cond.generate(1, &mut rng).len(), 1);
        }
    }

    #[test]
    fn relative_error_starts_at_one_and_reaches_zero() {
        let mut s = GossipState::new(vec![2.0, 0.0]);
        assert!((s.relative_error() - 1.0).abs() < 1e-12);
        s.set(0, 1.0);
        s.set(1, 1.0);
        assert!(s.relative_error() < 1e-12);
        assert!(s.mass_drift() < 1e-12);
    }

    #[test]
    fn constant_vector_reports_zero_error() {
        let s = GossipState::new(vec![3.5; 8]);
        assert_eq!(s.relative_error(), 0.0);
        assert_eq!(s.deviation(), 0.0);
        assert_eq!(s.deviation_sq(), 0.0);
    }

    #[test]
    fn deviation_is_the_square_root_of_deviation_sq() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mut s = GossipState::new(InitialCondition::Uniform.generate(64, &mut rng));
        for step in 0..5_000u32 {
            let i = rng.gen_range(0..64usize);
            let j = (i + 1 + rng.gen_range(0..63usize)) % 64;
            let (a, b) = crate::update::convex_average(s.value(i), s.value(j));
            s.set(i, a);
            s.set(j, b);
            if step % 500 == 0 {
                assert_eq!(s.deviation().to_bits(), s.deviation_sq().sqrt().to_bits());
            }
        }
    }

    #[test]
    fn empty_state_is_converged() {
        let s = GossipState::new(Vec::new());
        assert!(s.is_empty());
        assert_eq!(s.relative_error(), 0.0);
        assert_eq!(s.mass_drift(), 0.0);
    }

    #[test]
    fn mass_drift_detects_violations() {
        let mut s = GossipState::new(vec![1.0, 0.0]);
        s.set(0, 5.0); // breaks conservation
        assert!(s.mass_drift() > 1.0);
    }

    #[test]
    fn max_deviation_tracks_worst_sensor() {
        let s = GossipState::new(vec![0.0, 0.0, 4.0, 0.0]);
        assert!((s.max_deviation() - 3.0).abs() < 1e-12);
    }

    /// The exact centered norm of the current values, bypassing the cache.
    fn exact_relative_error(s: &GossipState) -> f64 {
        let dev = centered_sum_sq(s.values(), s.mean()).sqrt();
        if s.initial_deviation() == 0.0 {
            0.0
        } else {
            dev / s.initial_deviation()
        }
    }

    #[test]
    fn incremental_error_matches_recomputation_over_1e5_exchanges() {
        // 10^5 random pairwise exchanges (mostly contracting convex averages,
        // with occasional non-convex affine kicks that inflate the norm): the
        // incrementally maintained relative error must track a from-scratch
        // recomputation to within 1e-9 at every checkpoint.
        use crate::update::{affine_exchange, convex_average, AffineCoefficient};
        let n = 256;
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut s = GossipState::new(InitialCondition::Uniform.generate(n, &mut rng));
        for step in 0..100_000u32 {
            let i = rng.gen_range(0..n);
            let j = loop {
                let c = rng.gen_range(0..n);
                if c != i {
                    break c;
                }
            };
            let (a, b) = if step % 997 == 0 {
                // Occasional Ω(√n)-scale affine kick, as leader exchanges do.
                affine_exchange(s.value(i), s.value(j), AffineCoefficient::new(6.4))
            } else {
                convex_average(s.value(i), s.value(j))
            };
            s.set(i, a);
            s.set(j, b);
            if step % 10_000 == 0 {
                let incremental = s.relative_error();
                let exact = exact_relative_error(&s);
                assert!(
                    (incremental - exact).abs() <= 1e-9 * exact.max(1.0),
                    "step {step}: incremental {incremental} vs exact {exact}"
                );
            }
        }
        let incremental = s.relative_error();
        let exact = exact_relative_error(&s);
        assert!(
            (incremental - exact).abs() <= 1e-9 * exact.max(1.0),
            "final: incremental {incremental} vs exact {exact}"
        );
    }

    #[test]
    fn incremental_error_survives_deep_convergence() {
        // Pure convex averaging drives the norm down through many orders of
        // magnitude; the drift guard must keep the O(1) estimate honest the
        // whole way (this is where naive incremental tracking loses to
        // catastrophic cancellation).
        let n = 64;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut s = GossipState::new(InitialCondition::Bimodal.generate(n, &mut rng));
        for _ in 0..200_000u32 {
            let i = rng.gen_range(0..n);
            let j = (i + 1 + rng.gen_range(0..n - 1)) % n;
            let (a, b) = crate::update::convex_average(s.value(i), s.value(j));
            s.set(i, a);
            s.set(j, b);
        }
        let incremental = s.relative_error();
        let exact = exact_relative_error(&s);
        assert!(
            exact < 1e-6,
            "test should reach deep convergence, got {exact}"
        );
        assert!(
            (incremental - exact).abs() <= 1e-9 * exact.max(1e-30) + 1e-15,
            "incremental {incremental} vs exact {exact}"
        );
    }

    #[test]
    fn values_mut_invalidates_the_cached_norm() {
        let mut s = GossipState::new(vec![1.0, 0.0]);
        assert!((s.relative_error() - 1.0).abs() < 1e-12);
        s.values_mut().copy_from_slice(&[0.5, 0.5]);
        assert!(s.relative_error() < 1e-12);
        assert!(s.deviation() < 1e-12);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(InitialCondition::Spike.to_string(), "spike");
        assert_eq!(InitialCondition::Bimodal.to_string(), "bimodal");
    }
}
