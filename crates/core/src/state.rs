//! Sensor value vectors and error metrics.
//!
//! A gossip protocol's entire job is to move the value vector `x(t)` towards
//! the constant vector `x̄·1` while conserving the sum. [`GossipState`] holds
//! the vector together with the quantities needed to measure progress:
//! the initial deviation norm `‖x(0) − x̄·1‖` and the (invariant) mean.
//! [`InitialCondition`] generates the initial vectors used across the
//! experiments.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Initial value assignments used by the experiments.
///
/// The paper's guarantee is worst-case over `x(0)`; the experiment suite uses
/// several qualitatively different initial conditions because gossip
/// algorithms converge at visibly different speeds on smooth versus spiky
/// fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitialCondition {
    /// One sensor holds 1, all others 0 — the hardest case for local
    /// protocols ("measure at a single point").
    Spike,
    /// Values drawn i.i.d. uniformly from `[0, 1]`.
    Uniform,
    /// A linear field `x_i = position-independent ramp i/(n−1)` — smooth but
    /// globally spread.
    Ramp,
    /// Half the sensors hold `+1`, the other half `−1` (by index parity) — a
    /// balanced, high-variance field.
    Bimodal,
}

impl InitialCondition {
    /// Generates the value vector for `n` sensors.
    ///
    /// The `rng` is only consulted by the [`InitialCondition::Uniform`]
    /// variant; the others are deterministic.
    ///
    /// # Example
    ///
    /// ```
    /// use geogossip_core::InitialCondition;
    /// use rand::SeedableRng;
    /// use rand_chacha::ChaCha8Rng;
    /// let v = InitialCondition::Spike.generate(4, &mut ChaCha8Rng::seed_from_u64(0));
    /// assert_eq!(v, vec![1.0, 0.0, 0.0, 0.0]);
    /// ```
    pub fn generate<R: Rng + ?Sized>(self, n: usize, rng: &mut R) -> Vec<f64> {
        match self {
            InitialCondition::Spike => {
                let mut v = vec![0.0; n];
                if n > 0 {
                    v[0] = 1.0;
                }
                v
            }
            InitialCondition::Uniform => (0..n).map(|_| rng.gen::<f64>()).collect(),
            InitialCondition::Ramp => {
                if n <= 1 {
                    vec![0.0; n]
                } else {
                    (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
                }
            }
            InitialCondition::Bimodal => (0..n)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
        }
    }

    /// All variants, for experiment sweeps.
    pub fn all() -> [InitialCondition; 4] {
        [
            InitialCondition::Spike,
            InitialCondition::Uniform,
            InitialCondition::Ramp,
            InitialCondition::Bimodal,
        ]
    }
}

impl std::fmt::Display for InitialCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            InitialCondition::Spike => "spike",
            InitialCondition::Uniform => "uniform",
            InitialCondition::Ramp => "ramp",
            InitialCondition::Bimodal => "bimodal",
        };
        write!(f, "{name}")
    }
}

/// The values held by all sensors, plus the bookkeeping needed to measure
/// convergence.
///
/// The *relative error* tracked throughout the workspace is
/// `‖x(t) − x̄·1‖₂ / ‖x(0) − x̄·1‖₂`, i.e. the paper's `‖x(t)‖/‖x(0)‖` after the
/// usual centering (the paper assumes `∑x_i = 0` w.l.o.g.; centering performs
/// that reduction explicitly).
///
/// # Example
///
/// ```
/// use geogossip_core::GossipState;
/// let mut s = GossipState::new(vec![1.0, 0.0, 0.0, 0.0]);
/// assert!((s.mean() - 0.25).abs() < 1e-12);
/// assert!((s.relative_error() - 1.0).abs() < 1e-12);
/// // Perfectly averaging every entry drives the error to zero.
/// for i in 0..4 { s.set(i, 0.25); }
/// assert!(s.relative_error() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GossipState {
    values: Vec<f64>,
    mean: f64,
    initial_deviation: f64,
}

impl GossipState {
    /// Wraps an initial value vector.
    ///
    /// An all-equal (or empty) initial vector has zero deviation; its relative
    /// error is defined as 0 so already-converged states report convergence.
    pub fn new(values: Vec<f64>) -> Self {
        let n = values.len();
        let mean = if n == 0 { 0.0 } else { values.iter().sum::<f64>() / n as f64 };
        let initial_deviation = deviation_norm(&values, mean);
        GossipState {
            values,
            mean,
            initial_deviation,
        }
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the state holds no sensors.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The current value vector.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value held by sensor `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn value(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Overwrites the value held by sensor `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, value: f64) {
        self.values[i] = value;
    }

    /// Mutable access to the underlying vector, for protocols that update many
    /// entries at once. The caller is responsible for conserving the sum.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The average of the initial values (which every sensor should converge
    /// to). The mean is fixed at construction time: protocols are expected to
    /// conserve it, and [`GossipState::mass_drift`] measures how well they did.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// `‖x(0) − x̄·1‖₂`, the denominator of the relative error.
    pub fn initial_deviation(&self) -> f64 {
        self.initial_deviation
    }

    /// `‖x(t) − x̄·1‖₂` for the current values.
    pub fn deviation(&self) -> f64 {
        deviation_norm(&self.values, self.mean)
    }

    /// The relative ℓ₂ error `‖x(t) − x̄·1‖ / ‖x(0) − x̄·1‖`.
    ///
    /// States that started with zero deviation report 0.
    pub fn relative_error(&self) -> f64 {
        if self.initial_deviation == 0.0 {
            0.0
        } else {
            self.deviation() / self.initial_deviation
        }
    }

    /// Absolute drift of the value sum relative to the initial sum, normalised
    /// by `n`: `|mean(x(t)) − mean(x(0))|`.
    ///
    /// Exact conservation gives 0; floating-point rounding gives values on the
    /// order of machine epsilon. Affine updates *do* conserve the sum
    /// analytically, and tests use this to confirm the implementation does
    /// too.
    pub fn mass_drift(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let current = self.values.iter().sum::<f64>() / self.values.len() as f64;
        (current - self.mean).abs()
    }

    /// Maximum absolute deviation of any single sensor from the target mean.
    pub fn max_deviation(&self) -> f64 {
        self.values
            .iter()
            .map(|v| (v - self.mean).abs())
            .fold(0.0, f64::max)
    }
}

/// `‖x − m·1‖₂`.
fn deviation_norm(values: &[f64], m: f64) -> f64 {
    values
        .iter()
        .map(|v| {
            let d = v - m;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn spike_initial_condition() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v = InitialCondition::Spike.generate(5, &mut rng);
        assert_eq!(v, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn ramp_is_monotone_and_normalised() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let v = InitialCondition::Ramp.generate(11, &mut rng);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[10], 1.0);
        assert!(v.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn bimodal_sums_to_zero_for_even_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v = InitialCondition::Bimodal.generate(10, &mut rng);
        assert_eq!(v.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn uniform_values_are_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let v = InitialCondition::Uniform.generate(100, &mut rng);
        assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn degenerate_sizes_are_handled() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for cond in InitialCondition::all() {
            assert!(cond.generate(0, &mut rng).is_empty());
            assert_eq!(cond.generate(1, &mut rng).len(), 1);
        }
    }

    #[test]
    fn relative_error_starts_at_one_and_reaches_zero() {
        let mut s = GossipState::new(vec![2.0, 0.0]);
        assert!((s.relative_error() - 1.0).abs() < 1e-12);
        s.set(0, 1.0);
        s.set(1, 1.0);
        assert!(s.relative_error() < 1e-12);
        assert!(s.mass_drift() < 1e-12);
    }

    #[test]
    fn constant_vector_reports_zero_error() {
        let s = GossipState::new(vec![3.5; 8]);
        assert_eq!(s.relative_error(), 0.0);
        assert_eq!(s.deviation(), 0.0);
    }

    #[test]
    fn empty_state_is_converged() {
        let s = GossipState::new(Vec::new());
        assert!(s.is_empty());
        assert_eq!(s.relative_error(), 0.0);
        assert_eq!(s.mass_drift(), 0.0);
    }

    #[test]
    fn mass_drift_detects_violations() {
        let mut s = GossipState::new(vec![1.0, 0.0]);
        s.set(0, 5.0); // breaks conservation
        assert!(s.mass_drift() > 1.0);
    }

    #[test]
    fn max_deviation_tracks_worst_sensor() {
        let s = GossipState::new(vec![0.0, 0.0, 4.0, 0.0]);
        assert!((s.max_deviation() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(InitialCondition::Spike.to_string(), "spike");
        assert_eq!(InitialCondition::Bimodal.to_string(), "bimodal");
    }
}
