//! The Boyd et al. baseline: pairwise gossip with a random neighbor.
//!
//! On each clock tick the activated sensor `s` sends its value to a neighbor
//! `v` chosen uniformly at random from its adjacency list, receives `v`'s
//! value, and both set their value to the average (Section 1.1 of the paper,
//! citing Boyd et al. [1]). One round costs 2 transmissions. On a geometric
//! random graph at the connectivity radius the number of transmissions to
//! ε-average scales as `Õ(n²)` — the quantity experiment E4 measures.

use crate::error::ProtocolError;
use crate::state::GossipState;
use crate::update::convex_average;
use geogossip_geometry::point::NodeId;
use geogossip_graph::GeometricGraph;
use geogossip_sim::batch::{BatchActivation, ResolvedPlan, TickPlan};
use geogossip_sim::clock::Tick;
use geogossip_sim::engine::{Activation, SquaredError};
use geogossip_sim::fault::{FaultContext, FaultSupport};
use geogossip_sim::metrics::TransmissionCounter;
use rand::{Rng, RngCore};

/// The pairwise (nearest-neighbor) gossip protocol.
///
/// Holds a reference to the network it runs on; the network never changes
/// during a run.
///
/// # Example
///
/// ```
/// use geogossip_core::prelude::*;
/// use geogossip_graph::GeometricGraph;
/// use geogossip_geometry::sampling::sample_unit_square;
/// use geogossip_sim::{AsyncEngine, StopCondition};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(3);
/// let pts = sample_unit_square(128, &mut rng);
/// let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
/// let values = InitialCondition::Bimodal.generate(graph.len(), &mut rng);
/// let mut gossip = PairwiseGossip::new(&graph, values)?;
/// let report = AsyncEngine::new(graph.len())
///     .run(&mut gossip, StopCondition::at_epsilon(0.2).with_max_ticks(500_000), &mut rng);
/// assert!(report.converged());
/// # Ok::<(), geogossip_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PairwiseGossip<'a> {
    graph: &'a GeometricGraph,
    state: GossipState,
    exchanges: u64,
    isolated_activations: u64,
}

impl<'a> PairwiseGossip<'a> {
    /// Creates the protocol over `graph` with the given initial values.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyNetwork`] for an empty graph and
    /// [`ProtocolError::ValueLengthMismatch`] when the value vector length
    /// does not match the node count.
    pub fn new(graph: &'a GeometricGraph, initial_values: Vec<f64>) -> Result<Self, ProtocolError> {
        if graph.is_empty() {
            return Err(ProtocolError::EmptyNetwork);
        }
        if initial_values.len() != graph.len() {
            return Err(ProtocolError::ValueLengthMismatch {
                nodes: graph.len(),
                values: initial_values.len(),
            });
        }
        Ok(PairwiseGossip {
            graph,
            state: GossipState::new(initial_values),
            exchanges: 0,
            isolated_activations: 0,
        })
    }

    /// The current gossip state.
    pub fn state(&self) -> &GossipState {
        &self.state
    }

    /// Number of completed neighbor exchanges.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Number of activations of sensors that had no neighbor to talk to.
    pub fn isolated_activations(&self) -> u64 {
        self.isolated_activations
    }

    /// One tick of the protocol — the zero-cost generic hot path. The
    /// object-safe [`Activation::on_tick`] forwards here with a `dyn` RNG;
    /// monomorphised callers (benchmarks, custom drivers) keep full inlining.
    #[inline]
    pub fn step<R: Rng + ?Sized>(&mut self, tick: Tick, tx: &mut TransmissionCounter, rng: &mut R) {
        let s = tick.node.index();
        let neighbors = self.graph.neighbors(tick.node);
        if neighbors.is_empty() {
            // An isolated sensor can only wait; the paper's connectivity
            // assumption makes this a measure-zero event at the standard
            // radius, but we count it rather than panic.
            self.isolated_activations += 1;
            return;
        }
        let v = neighbors[rng.gen_range(0..neighbors.len())] as usize;
        let (new_s, new_v) = convex_average(self.state.value(s), self.state.value(v));
        self.state.set(s, new_s);
        self.state.set(v, new_v);
        // One packet each way.
        tx.charge_local(2);
        self.exchanges += 1;
    }

    /// One tick under fault injection. A dead partner is never selected (the
    /// uniform choice is over *live* neighbors only); a dropped exchange still
    /// costs its two packets but applies no averaging; a stale endpoint keeps
    /// its old value while its partner updates normally — which is exactly
    /// what makes stale sensors drag the achievable error floor.
    pub fn step_faulty<R: Rng + ?Sized>(
        &mut self,
        tick: Tick,
        tx: &mut TransmissionCounter,
        rng: &mut R,
        faults: &FaultContext<'_>,
    ) {
        let s = tick.node.index();
        let neighbors = self.graph.neighbors(tick.node);
        let v = if faults.any_dead() {
            let live = neighbors
                .iter()
                .filter(|&&v| faults.is_alive(v as usize))
                .count();
            if live == 0 {
                self.isolated_activations += 1;
                return;
            }
            let pick = rng.gen_range(0..live);
            neighbors
                .iter()
                .copied()
                .filter(|&v| faults.is_alive(v as usize))
                .nth(pick)
                .expect("pick < live neighbor count") as usize
        } else {
            if neighbors.is_empty() {
                self.isolated_activations += 1;
                return;
            }
            neighbors[rng.gen_range(0..neighbors.len())] as usize
        };
        // The packets travel either way: a dropped exchange is cost without
        // progress.
        tx.charge_local(2);
        if faults.dropped {
            return;
        }
        let (new_s, new_v) = convex_average(self.state.value(s), self.state.value(v));
        if !faults.is_stale(s) {
            self.state.set(s, new_s);
        }
        if !faults.is_stale(v) {
            self.state.set(v, new_v);
        }
        self.exchanges += 1;
    }
}

impl Activation for PairwiseGossip<'_> {
    fn on_tick(&mut self, tick: Tick, tx: &mut TransmissionCounter, rng: &mut dyn RngCore) {
        self.step(tick, tx, rng);
    }

    fn as_batch(&mut self) -> Option<&mut dyn BatchActivation> {
        Some(self)
    }

    fn fault_support(&self) -> FaultSupport {
        FaultSupport::all()
    }

    fn on_tick_faulty(
        &mut self,
        tick: Tick,
        tx: &mut TransmissionCounter,
        rng: &mut dyn RngCore,
        faults: &FaultContext<'_>,
    ) {
        self.step_faulty(tick, tx, rng, faults);
    }

    fn relative_error(&self) -> f64 {
        self.state.relative_error()
    }

    fn squared_error(&self) -> Option<SquaredError> {
        Some(SquaredError {
            current_sq: self.state.deviation_sq(),
            initial: self.state.initial_deviation(),
        })
    }

    fn name(&self) -> &str {
        "pairwise (Boyd)"
    }

    fn metrics(&self) -> Vec<(String, f64)> {
        vec![
            ("exchanges".into(), self.exchanges as f64),
            (
                "isolated_activations".into(),
                self.isolated_activations as f64,
            ),
        ]
    }
}

impl BatchActivation for PairwiseGossip<'_> {
    fn network(&self) -> &GeometricGraph {
        self.graph
    }

    fn draw_plan(&self, tick: Tick, rng: &mut dyn RngCore) -> TickPlan {
        let neighbors = self.graph.neighbors(tick.node);
        if neighbors.is_empty() {
            return TickPlan::Skip { isolated: true };
        }
        let v = neighbors[rng.gen_range(0..neighbors.len())] as usize;
        TickPlan::Pair { partner: NodeId(v) }
    }

    fn commit_plan(&mut self, tick: Tick, resolved: &ResolvedPlan, tx: &mut TransmissionCounter) {
        match *resolved {
            ResolvedPlan::Skip { isolated: true } => self.isolated_activations += 1,
            ResolvedPlan::Skip { isolated: false } => {}
            ResolvedPlan::Pair { partner } => {
                let s = tick.node.index();
                let v = partner.index();
                let (new_s, new_v) = convex_average(self.state.value(s), self.state.value(v));
                self.state.set(s, new_s);
                self.state.set(v, new_v);
                tx.charge_local(2);
                self.exchanges += 1;
            }
            ResolvedPlan::Route { .. } => {
                unreachable!("pairwise gossip never plans a routed round")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::InitialCondition;
    use geogossip_geometry::sampling::sample_unit_square;
    use geogossip_geometry::Point;
    use geogossip_sim::engine::{AsyncEngine, StopCondition};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize, seed: u64) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        GeometricGraph::build_at_connectivity_radius(pts, 2.0)
    }

    #[test]
    fn construction_validates_inputs() {
        let g = graph(10, 1);
        assert!(PairwiseGossip::new(&g, vec![0.0; 10]).is_ok());
        assert!(matches!(
            PairwiseGossip::new(&g, vec![0.0; 9]),
            Err(ProtocolError::ValueLengthMismatch { .. })
        ));
        let empty = GeometricGraph::build(Vec::new(), 0.1);
        assert!(matches!(
            PairwiseGossip::new(&empty, Vec::new()),
            Err(ProtocolError::EmptyNetwork)
        ));
    }

    #[test]
    fn converges_on_a_connected_graph() {
        let g = graph(128, 2);
        assert!(g.is_connected());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let values = InitialCondition::Bimodal.generate(g.len(), &mut rng);
        let mut gossip = PairwiseGossip::new(&g, values).unwrap();
        let report = AsyncEngine::new(g.len()).run(
            &mut gossip,
            StopCondition::at_epsilon(0.05).with_max_ticks(2_000_000),
            &mut rng,
        );
        assert!(
            report.converged(),
            "stopped with error {}",
            report.final_error
        );
        // Every exchange costs exactly 2 local transmissions.
        assert_eq!(report.transmissions.total(), 2 * gossip.exchanges());
        assert_eq!(report.transmissions.routing(), 0);
    }

    #[test]
    fn conserves_the_mean() {
        let g = graph(64, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let values = InitialCondition::Uniform.generate(g.len(), &mut rng);
        let mut gossip = PairwiseGossip::new(&g, values).unwrap();
        let _ = AsyncEngine::new(g.len()).run(
            &mut gossip,
            StopCondition::at_epsilon(0.1).with_max_ticks(500_000),
            &mut rng,
        );
        assert!(gossip.state().mass_drift() < 1e-9);
    }

    #[test]
    fn isolated_sensors_are_counted_not_fatal() {
        // Two sensors far apart, radius too small to connect them.
        let g = GeometricGraph::build(vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9)], 0.01);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut gossip = PairwiseGossip::new(&g, vec![0.0, 1.0]).unwrap();
        let report = AsyncEngine::new(g.len()).run(
            &mut gossip,
            StopCondition::at_epsilon(0.01).with_max_ticks(100),
            &mut rng,
        );
        assert!(!report.converged());
        assert_eq!(gossip.isolated_activations(), 100);
        assert_eq!(report.transmissions.total(), 0);
    }

    #[test]
    fn faulty_step_matches_plain_step_without_faults() {
        let g = graph(64, 9);
        let mut rng_a = ChaCha8Rng::seed_from_u64(10);
        let mut rng_b = rng_a.clone();
        let values = InitialCondition::Bimodal.generate(g.len(), &mut rng_a);
        let _ = InitialCondition::Bimodal.generate(g.len(), &mut rng_b);
        let mut plain = PairwiseGossip::new(&g, values.clone()).unwrap();
        let mut faulty = PairwiseGossip::new(&g, values).unwrap();
        let mut clock_a = geogossip_sim::GlobalPoissonClock::new(g.len());
        let mut clock_b = geogossip_sim::GlobalPoissonClock::new(g.len());
        let mut tx_a = TransmissionCounter::new();
        let mut tx_b = TransmissionCounter::new();
        let none = FaultContext::new(false, &[], &[]);
        for _ in 0..2_000 {
            let ta = clock_a.next_tick(&mut rng_a);
            let tb = clock_b.next_tick(&mut rng_b);
            plain.step(ta, &mut tx_a, &mut rng_a);
            faulty.step_faulty(tb, &mut tx_b, &mut rng_b, &none);
        }
        assert_eq!(plain.state().values(), faulty.state().values());
        assert_eq!(tx_a.total(), tx_b.total());
        assert_eq!(plain.exchanges(), faulty.exchanges());
    }

    #[test]
    fn dropped_exchanges_cost_packets_but_change_nothing() {
        let g = graph(32, 11);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let values = InitialCondition::Bimodal.generate(g.len(), &mut rng);
        let mut gossip = PairwiseGossip::new(&g, values).unwrap();
        let mut clock = geogossip_sim::GlobalPoissonClock::new(g.len());
        let mut tx = TransmissionCounter::new();
        let before = gossip.state().values().to_vec();
        let dropped = FaultContext::new(true, &[], &[]);
        for _ in 0..100 {
            let tick = clock.next_tick(&mut rng);
            gossip.step_faulty(tick, &mut tx, &mut rng, &dropped);
        }
        assert_eq!(gossip.state().values(), &before[..]);
        assert_eq!(gossip.exchanges(), 0);
        assert_eq!(tx.total(), 200, "drops still cost two packets each");
    }

    #[test]
    fn dead_neighbors_are_never_selected_and_stale_nodes_never_move() {
        // Line graph 0–1–2: node 1 dead, node 2 stale.
        let g = GeometricGraph::build(
            vec![
                Point::new(0.1, 0.5),
                Point::new(0.2, 0.5),
                Point::new(0.3, 0.5),
            ],
            0.12,
        );
        let alive = [true, false, true];
        let stale = [false, false, true];
        let mut gossip = PairwiseGossip::new(&g, vec![0.0, 10.0, 1.0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut tx = TransmissionCounter::new();
        let ctx = FaultContext::new(false, &alive, &stale);
        // Node 0's only neighbor (1) is dead: isolated, nothing charged.
        gossip.step_faulty(
            Tick {
                index: 1,
                time: 0.1,
                node: 0.into(),
            },
            &mut tx,
            &mut rng,
            &ctx,
        );
        assert_eq!(gossip.isolated_activations(), 1);
        assert_eq!(tx.total(), 0);
        assert_eq!(gossip.state().value(0), 0.0);
        // Node 2 is stale: its activation averages the partner but keeps its
        // own value. Its only live... node 1 is its only neighbor and dead.
        gossip.step_faulty(
            Tick {
                index: 2,
                time: 0.2,
                node: 2.into(),
            },
            &mut tx,
            &mut rng,
            &ctx,
        );
        assert_eq!(gossip.isolated_activations(), 2);
        // Revive node 1, keep node 2 stale: 2's activation must select 1
        // (its only neighbor), move 1 toward the average, and keep 2 fixed.
        let all_alive = [true, true, true];
        let ctx = FaultContext::new(false, &all_alive, &stale);
        gossip.step_faulty(
            Tick {
                index: 3,
                time: 0.3,
                node: 2.into(),
            },
            &mut tx,
            &mut rng,
            &ctx,
        );
        assert_eq!(gossip.state().value(2), 1.0, "stale sensors never update");
        assert_eq!(
            gossip.state().value(1),
            5.5,
            "the live partner still averages"
        );
        assert_eq!(gossip.exchanges(), 1);
    }

    #[test]
    fn draw_and_commit_replay_the_sequential_step_bit_for_bit() {
        let g = graph(96, 14);
        let mut rng_seq = ChaCha8Rng::seed_from_u64(15);
        let mut rng_batch = rng_seq.clone();
        let values = InitialCondition::Bimodal.generate(g.len(), &mut rng_seq);
        let _ = InitialCondition::Bimodal.generate(g.len(), &mut rng_batch);
        let mut seq = PairwiseGossip::new(&g, values.clone()).unwrap();
        let mut batch = PairwiseGossip::new(&g, values).unwrap();
        let mut clock_seq = geogossip_sim::GlobalPoissonClock::new(g.len());
        let mut clock_batch = clock_seq.clone();
        let mut tx_seq = TransmissionCounter::new();
        let mut tx_batch = TransmissionCounter::new();
        for _ in 0..3_000 {
            let ta = clock_seq.next_tick(&mut rng_seq);
            seq.step(ta, &mut tx_seq, &mut rng_seq);
            let tb = clock_batch.next_tick(&mut rng_batch);
            let plan = batch.draw_plan(tb, &mut rng_batch);
            let resolved = geogossip_sim::batch::resolve_plan(&g, tb.node, &plan);
            batch.commit_plan(tb, &resolved, &mut tx_batch);
            // The RNG streams must stay in lockstep after every tick.
            assert_eq!(rng_seq.next_u64(), rng_batch.next_u64());
        }
        assert_eq!(seq.state().values(), batch.state().values());
        assert_eq!(tx_seq.total(), tx_batch.total());
        assert_eq!(seq.exchanges(), batch.exchanges());
        assert_eq!(seq.isolated_activations(), batch.isolated_activations());
    }

    #[test]
    fn error_is_monotonically_nonincreasing_under_convex_updates() {
        let g = graph(64, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let values = InitialCondition::Spike.generate(g.len(), &mut rng);
        let mut gossip = PairwiseGossip::new(&g, values).unwrap();
        let mut clock = geogossip_sim::GlobalPoissonClock::new(g.len());
        let mut tx = TransmissionCounter::new();
        let mut prev = gossip.relative_error();
        for _ in 0..5_000 {
            let tick = clock.next_tick(&mut rng);
            gossip.on_tick(tick, &mut tx, &mut rng);
            let cur = gossip.relative_error();
            assert!(cur <= prev + 1e-12, "convex averaging increased the error");
            prev = cur;
        }
    }
}
