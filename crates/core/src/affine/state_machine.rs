//! The paper's asynchronous protocol, literally (Section 4.2).
//!
//! Every sensor keeps a `local.state`, leaders additionally keep a
//! `global.state` and a `counter` for each square they lead. On a sensor's own
//! clock tick:
//!
//! * a **level-0 sensor** whose `local.state` is `on` runs `Near`: it averages
//!   (convexly) with a random neighbor inside its leaf square;
//! * a **leader** whose `global.state` is `on`
//!   * re-activates its square when its counter is 0 (`Activate.square`:
//!     flooding `local.state := on` for leaf squares, switching child leaders'
//!     `global.state` on for higher squares),
//!   * with a small probability runs `Far`: it picks another square of the
//!     same depth (a sibling) uniformly at random, routes its value to that
//!     square's leader geographically, and both leaders apply the **affine**
//!     update `x ← x + (2/5)·E#(□)·(x' − x)`; both counters reset so both
//!     squares re-average afterwards,
//!   * participates in `Near` like everyone else while its leaf square is
//!     active, and
//!   * deactivates its square once the counter passes the square's latency.
//!
//! The rates come from a [`ScheduleParams`]: [`ScheduleParams::practical`]
//! derives runnable latencies/probabilities from the hierarchy (preserving the
//! structural property that long-range exchanges are much rarer than local
//! averaging periods), while [`ScheduleParams::from_paper_schedule`] plugs in
//! the literal — astronomically conservative — formulas of Section 4.1 for
//! small demonstrations. See DESIGN.md §2, substitution 3.

use crate::affine::hierarchy::Hierarchy;
use crate::affine::round_based::CoefficientRule;
use crate::affine::schedule::PaperSchedule;
use crate::error::ProtocolError;
use crate::state::GossipState;
use crate::update::{affine_exchange, convex_average};
use geogossip_geometry::point::NodeId;
use geogossip_geometry::PartitionConfig;
use geogossip_graph::GeometricGraph;
use geogossip_routing::flood::flood_cell;
use geogossip_routing::greedy::route_terminus_to_node;
use geogossip_sim::clock::Tick;
use geogossip_sim::engine::{Activation, SquaredError};
use geogossip_sim::fault::{FaultContext, FaultSupport};
use geogossip_sim::metrics::TransmissionCounter;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Per-depth scheduling parameters for the asynchronous protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleParams {
    /// How many of its own clock ticks a depth-`r` leader keeps its square
    /// active (averaging locally) before deactivating it.
    pub latency_by_depth: Vec<u64>,
    /// Probability that a depth-`r` leader attempts a long-range exchange on
    /// one of its own clock ticks.
    pub far_probability_by_depth: Vec<f64>,
}

impl ScheduleParams {
    /// Derives runnable parameters from the hierarchy.
    ///
    /// * Leaf squares stay active for `⌈m·ln(m+2)⌉` leader ticks (`m` =
    ///   expected leaf population) — enough for pairwise gossip to average a
    ///   poly-log-sized, internally well-connected cell.
    /// * A depth-`r` square with `k` children stays active long enough for its
    ///   children to perform `Θ(k·log k)` long-range exchanges at their own
    ///   far rate.
    /// * The far probability at depth `r` is `1/(far_factor · latency_r)`, so
    ///   a square is w.h.p. dormant (already deactivated) when its leader
    ///   engages in a long-range exchange — the structural property the
    ///   paper's `n^{-a}` factor exists to guarantee.
    /// * The root never deactivates and never goes long-range (it has no
    ///   sibling).
    ///
    /// # Panics
    ///
    /// Panics if `far_factor < 1`.
    pub fn practical(hierarchy: &Hierarchy, far_factor: f64) -> Self {
        assert!(far_factor >= 1.0, "far_factor must be at least 1");
        let levels = hierarchy.levels();
        let mut latency = vec![u64::MAX; levels];
        let mut far_prob = vec![0.0_f64; levels];

        // Expected population and child count per depth (averages over
        // populated cells).
        for depth in (0..levels).rev() {
            let cells = hierarchy.populated_cells_at_depth(depth);
            if cells.is_empty() {
                latency[depth] = 1;
                far_prob[depth] = 0.0;
                continue;
            }
            let avg_members: f64 = cells
                .iter()
                .map(|&c| hierarchy.members(c).len() as f64)
                .sum::<f64>()
                / cells.len() as f64;
            let avg_children: f64 = cells
                .iter()
                .map(|&c| hierarchy.populated_children(c).len() as f64)
                .sum::<f64>()
                / cells.len() as f64;

            let is_leaf_depth = avg_children < 2.0;
            let lat = if is_leaf_depth {
                (avg_members.max(2.0) * (avg_members + 2.0).ln()).ceil()
            } else {
                // Children exchange at rate k·far_prob[depth+1] per unit time;
                // we need Θ(k·ln k) exchanges.
                let k = avg_children.max(2.0);
                let child_far = far_prob
                    .get(depth + 1)
                    .copied()
                    .filter(|p| *p > 0.0)
                    .unwrap_or(1.0);
                ((k.ln() + 2.0) / child_far).ceil()
            };
            if depth == 0 {
                latency[0] = u64::MAX;
                far_prob[0] = 0.0;
            } else {
                latency[depth] = lat.min(1e15) as u64;
                far_prob[depth] = 1.0 / (far_factor * lat.max(1.0));
            }
        }
        ScheduleParams {
            latency_by_depth: latency,
            far_probability_by_depth: far_prob,
        }
    }

    /// Converts the paper's literal cascade into schedule parameters
    /// (saturating latencies at `u64::MAX`). Only useful for demonstrations —
    /// the latencies exceed any realistic simulation budget.
    pub fn from_paper_schedule(schedule: &PaperSchedule) -> Self {
        let levels = schedule.levels();
        let mut latency = Vec::with_capacity(levels);
        let mut far_prob = Vec::with_capacity(levels);
        for depth in 0..levels {
            let lat = schedule.latency_at(depth);
            latency.push(if lat >= u64::MAX as f64 {
                u64::MAX
            } else {
                lat.ceil() as u64
            });
            far_prob.push(schedule.far_probability_at(depth).clamp(0.0, 1.0));
        }
        ScheduleParams {
            latency_by_depth: latency,
            far_probability_by_depth: far_prob,
        }
    }

    fn latency(&self, depth: usize) -> u64 {
        self.latency_by_depth
            .get(depth)
            .copied()
            .unwrap_or(u64::MAX)
    }

    fn far_probability(&self, depth: usize) -> f64 {
        self.far_probability_by_depth
            .get(depth)
            .copied()
            .unwrap_or(0.0)
    }
}

/// Counters describing the state machine's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateMachineStats {
    /// Completed `Near` exchanges.
    pub near_exchanges: u64,
    /// Completed `Far` (long-range affine) exchanges.
    pub far_exchanges: u64,
    /// `Activate.square` invocations.
    pub activations: u64,
    /// `Deactivate.square` invocations.
    pub deactivations: u64,
    /// Leader routings that dead-ended before their destination.
    pub failed_routes: u64,
}

/// The asynchronous affine-gossip state machine.
///
/// Drives through [`geogossip_sim::AsyncEngine`] like the baselines; the
/// engine's clock tick is exactly the paper's "clock of `s` ticks" event.
///
/// # Example
///
/// ```no_run
/// use geogossip_core::prelude::*;
/// use geogossip_graph::GeometricGraph;
/// use geogossip_geometry::sampling::sample_unit_square;
/// use geogossip_sim::{AsyncEngine, StopCondition};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(21);
/// let pts = sample_unit_square(256, &mut rng);
/// let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
/// let values = InitialCondition::Spike.generate(graph.len(), &mut rng);
/// let mut protocol = AffineStateMachine::practical(&graph, values)?;
/// let report = AsyncEngine::new(graph.len()).run(
///     &mut protocol,
///     StopCondition::at_epsilon(0.2).with_max_ticks(3_000_000),
///     &mut rng,
/// );
/// assert!(report.converged());
/// # Ok::<(), geogossip_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AffineStateMachine<'a> {
    graph: &'a GeometricGraph,
    hierarchy: Hierarchy,
    state: GossipState,
    schedule: ScheduleParams,
    coefficient: CoefficientRule,
    /// `local.state` per sensor.
    local_state: Vec<bool>,
    /// `global.state` per cell (indexed by partition arena index).
    global_state: Vec<bool>,
    /// `counter` per cell.
    counter: Vec<u64>,
    /// Cells led by each sensor.
    led_cells: Vec<Vec<usize>>,
    /// Sibling (same parent, populated, excluding self) cells per cell.
    siblings: Vec<Vec<usize>>,
    stats: StateMachineStats,
}

impl<'a> AffineStateMachine<'a> {
    /// Creates the protocol with an explicit hierarchy configuration,
    /// schedule, and coefficient rule.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Hierarchy::build`] and the usual
    /// size checks.
    pub fn new(
        graph: &'a GeometricGraph,
        initial_values: Vec<f64>,
        partition: PartitionConfig,
        schedule_factory: impl FnOnce(&Hierarchy) -> ScheduleParams,
        coefficient: CoefficientRule,
    ) -> Result<Self, ProtocolError> {
        if graph.is_empty() {
            return Err(ProtocolError::EmptyNetwork);
        }
        if initial_values.len() != graph.len() {
            return Err(ProtocolError::ValueLengthMismatch {
                nodes: graph.len(),
                values: initial_values.len(),
            });
        }
        let hierarchy = Hierarchy::build(graph, partition)?;
        let schedule = schedule_factory(&hierarchy);
        let num_cells = hierarchy.partition().num_cells();

        let mut led_cells = vec![Vec::new(); graph.len()];
        let mut siblings = vec![Vec::new(); num_cells];
        for (idx, cell) in hierarchy.partition().cells().iter().enumerate() {
            if let Some(leader) = cell.leader() {
                led_cells[leader.index()].push(idx);
            }
            siblings[idx] = hierarchy
                .partition()
                .siblings(idx)
                .into_iter()
                .filter(|&s| !hierarchy.members(s).is_empty())
                .collect();
        }

        let mut machine = AffineStateMachine {
            graph,
            hierarchy,
            state: GossipState::new(initial_values),
            schedule,
            coefficient,
            local_state: vec![false; graph.len()],
            global_state: vec![false; num_cells],
            counter: vec![0; num_cells],
            led_cells,
            siblings,
            stats: StateMachineStats::default(),
        };
        // Initialisation: the root square's global.state is on, everything
        // else off (Section 4.2, "During initialization").
        machine.global_state[0] = true;
        Ok(machine)
    }

    /// Creates the protocol with the practical partition, practical schedule
    /// (far factor 2) and the paper's coefficient rule.
    ///
    /// # Errors
    ///
    /// Same as [`AffineStateMachine::new`].
    pub fn practical(
        graph: &'a GeometricGraph,
        initial_values: Vec<f64>,
    ) -> Result<Self, ProtocolError> {
        Self::new(
            graph,
            initial_values,
            PartitionConfig::practical(graph.len()),
            |h| ScheduleParams::practical(h, 2.0),
            CoefficientRule::paper(),
        )
    }

    /// The current gossip state.
    pub fn state(&self) -> &GossipState {
        &self.state
    }

    /// The hierarchy the protocol runs on.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Activity statistics.
    pub fn stats(&self) -> StateMachineStats {
        self.stats
    }

    /// Whether the square at arena index `cell` is currently enabled
    /// (`global.state = on`). Exposed for tests and experiments.
    pub fn square_enabled(&self, cell: usize) -> bool {
        self.global_state[cell]
    }

    /// `Near(s)`: average with a uniformly random neighbor inside `s`'s leaf
    /// square (Section 4.2). A dropped exchange still costs its two packets
    /// but applies no averaging; stale endpoints keep their old value.
    fn near<R: Rng + ?Sized>(
        &mut self,
        s: usize,
        tx: &mut TransmissionCounter,
        rng: &mut R,
        faults: &FaultContext<'_>,
    ) {
        let leaf = self.hierarchy.leaf_of(NodeId(s));
        let members = self.hierarchy.members(leaf);
        // Candidate partners: graph neighbors that share the leaf square.
        let candidates: Vec<usize> = self
            .graph
            .neighbors(NodeId(s))
            .iter()
            .map(|&v| v as usize)
            .filter(|v| members.contains(v))
            .collect();
        if candidates.is_empty() {
            return;
        }
        let v = candidates[rng.gen_range(0..candidates.len())];
        tx.charge_local(2);
        if faults.dropped {
            return;
        }
        let (ns, nv) = convex_average(self.state.value(s), self.state.value(v));
        if !faults.is_stale(s) {
            self.state.set(s, ns);
        }
        if !faults.is_stale(v) {
            self.state.set(v, nv);
        }
        self.stats.near_exchanges += 1;
    }

    /// `Far(s)` for the square at arena index `cell`: affine exchange with the
    /// leader of a uniformly random sibling square (Section 4.2). A dropped
    /// exchange pays the full round trip but applies no affine update and
    /// resets no counter; stale leaders keep their own value.
    fn far<R: Rng + ?Sized>(
        &mut self,
        cell: usize,
        tx: &mut TransmissionCounter,
        rng: &mut R,
        faults: &FaultContext<'_>,
    ) {
        if self.siblings[cell].is_empty() {
            return;
        }
        let target_cell = self.siblings[cell][rng.gen_range(0..self.siblings[cell].len())];
        let (Some(s), Some(s_prime)) = (
            self.hierarchy.leader(cell),
            self.hierarchy.leader(target_cell),
        ) else {
            return;
        };
        let (out, out_delivered) = route_terminus_to_node(self.graph, s, s_prime);
        let (back, back_delivered) = route_terminus_to_node(self.graph, s_prime, s);
        if !out_delivered {
            self.stats.failed_routes += 1;
        }
        if !back_delivered {
            self.stats.failed_routes += 1;
        }
        tx.charge_routing((out.hops + back.hops) as u64);
        if faults.dropped {
            // The packet was lost in flight: no affine update lands, and
            // neither counter resets — the squares just keep averaging.
            return;
        }

        // Scale the coefficient by the smaller realized population of the two
        // squares (see `CoefficientRule` for why the paper's E#-based value is
        // replaced by the realized count at simulation scale).
        let population = self
            .hierarchy
            .members(cell)
            .len()
            .min(self.hierarchy.members(target_cell).len()) as f64;
        let alpha = self.coefficient.coefficient(population);
        let (xs, xp) = (
            self.state.value(s.index()),
            self.state.value(s_prime.index()),
        );
        let (ns, np) = affine_exchange(xs, xp, alpha);
        if !faults.is_stale(s.index()) {
            self.state.set(s.index(), ns);
        }
        if !faults.is_stale(s_prime.index()) {
            self.state.set(s_prime.index(), np);
        }
        self.stats.far_exchanges += 1;

        // Both squares must re-average: reset both counters so the next tick
        // of each leader re-activates its square (paper step 5 of the round,
        // and `counter ← 0` in Far).
        self.counter[cell] = 0;
        self.counter[target_cell] = 0;
    }

    /// `Activate.square(s)` (Section 4.2): switch the square's interior on.
    fn activate_square(&mut self, cell: usize, tx: &mut TransmissionCounter) {
        let children = self.hierarchy.populated_children(cell);
        if children.len() < 2 {
            // Leaf square (level-1 leader): flood local.state := on.
            let members: Vec<usize> = self.hierarchy.members(cell).to_vec();
            if let Some(leader) = self.hierarchy.leader(cell) {
                let outcome = flood_cell(self.graph, &members, leader);
                tx.charge_control(outcome.transmissions as u64);
                for node in outcome.reached {
                    self.local_state[node.index()] = true;
                }
            }
        } else {
            // Higher square: switch the child leaders' global.state on by
            // routing a control packet to each of them.
            if let Some(leader) = self.hierarchy.leader(cell) {
                for child in children {
                    if let Some(child_leader) = self.hierarchy.leader(child) {
                        let (route, delivered) =
                            route_terminus_to_node(self.graph, leader, child_leader);
                        if !delivered {
                            self.stats.failed_routes += 1;
                        }
                        tx.charge_control(route.hops as u64);
                        self.global_state[child] = true;
                    }
                }
            }
        }
        self.stats.activations += 1;
    }

    /// `Deactivate.square(s)` (Section 4.2): switch the square's interior off.
    fn deactivate_square(&mut self, cell: usize, tx: &mut TransmissionCounter) {
        let children = self.hierarchy.populated_children(cell);
        if children.len() < 2 {
            let members: Vec<usize> = self.hierarchy.members(cell).to_vec();
            if let Some(leader) = self.hierarchy.leader(cell) {
                let outcome = flood_cell(self.graph, &members, leader);
                tx.charge_control(outcome.transmissions as u64);
                for node in outcome.reached {
                    self.local_state[node.index()] = false;
                }
            }
        } else if let Some(leader) = self.hierarchy.leader(cell) {
            for child in children {
                if let Some(child_leader) = self.hierarchy.leader(child) {
                    let (route, delivered) =
                        route_terminus_to_node(self.graph, leader, child_leader);
                    if !delivered {
                        self.stats.failed_routes += 1;
                    }
                    tx.charge_control(route.hops as u64);
                    self.global_state[child] = false;
                }
            }
        }
        self.stats.deactivations += 1;
    }

    /// The leader-side protocol for one square on one clock tick of its leader
    /// (Section 4.2, the "Level greater than 0" branch).
    ///
    /// The paper sets the long-range rate `n^{-a}/time(…)` so low that w.h.p.
    /// no `Far` ever happens while the leader's own square is still active
    /// (Section 6). Running with practical rates we enforce that correctness
    /// condition *structurally* instead of probabilistically: a leader only
    /// attempts `Far` once its square's averaging window has elapsed (counter
    /// at or past the latency). Without this guard a second long-range kick
    /// can land before the first one has been spread over the square, and the
    /// non-convex coefficient then amplifies the residual — the instability
    /// the paper's rate separation exists to rule out.
    fn square_tick<R: Rng + ?Sized>(
        &mut self,
        cell: usize,
        tx: &mut TransmissionCounter,
        rng: &mut R,
        faults: &FaultContext<'_>,
    ) {
        let depth = self.hierarchy.partition().cell(cell).depth();
        if !self.global_state[cell] {
            return;
        }
        if self.counter[cell] == 0 {
            self.activate_square(cell, tx);
        }
        let latency = self.schedule.latency(depth);
        if self.counter[cell] < latency {
            // Averaging window: let the square's interior work; switch it off
            // exactly once when the window ends.
            self.counter[cell] += 1;
            if self.counter[cell] == latency {
                self.deactivate_square(cell, tx);
            }
        } else {
            // Quiescent: the square is deactivated, so a long-range exchange
            // cannot interfere with its internal averaging. A successful Far
            // resets the counter, which re-activates the square on the
            // leader's next tick.
            let p_far = self.schedule.far_probability(depth);
            if p_far > 0.0 && !self.siblings[cell].is_empty() && rng.gen::<f64>() < p_far {
                self.far(cell, tx, rng, faults);
            }
        }
    }
}

impl AffineStateMachine<'_> {
    /// One tick of the protocol — the zero-cost generic hot path. The
    /// object-safe [`Activation::on_tick`] forwards here with a `dyn` RNG.
    #[inline]
    pub fn step<R: Rng + ?Sized>(&mut self, tick: Tick, tx: &mut TransmissionCounter, rng: &mut R) {
        let none = FaultContext::new(false, &[], &[]);
        self.step_faulty(tick, tx, rng, &none);
    }

    /// One tick under fault injection: data-plane exchanges (`Near`, `Far`)
    /// honour drops and stale sensors, while the control plane
    /// (`Activate.square` / `Deactivate.square`) is assumed reliable — losing
    /// control floods would wedge the state machine rather than degrade it,
    /// which is a different failure model than lossy data transmission.
    pub fn step_faulty<R: Rng + ?Sized>(
        &mut self,
        tick: Tick,
        tx: &mut TransmissionCounter,
        rng: &mut R,
        faults: &FaultContext<'_>,
    ) {
        let s = tick.node.index();
        // Leader duties for every square this sensor leads (usually at most
        // one; ties at small n are handled by iterating).
        let led = self.led_cells[s].clone();
        for cell in led {
            self.square_tick(cell, tx, rng, faults);
        }
        // Everyone — leaders included — participates in local averaging while
        // their leaf square is active.
        if self.local_state[s] {
            self.near(s, tx, rng, faults);
        }
    }
}

impl Activation for AffineStateMachine<'_> {
    fn on_tick(&mut self, tick: Tick, tx: &mut TransmissionCounter, rng: &mut dyn RngCore) {
        self.step(tick, tx, rng);
    }

    fn fault_support(&self) -> FaultSupport {
        // Churn is out of scope for the hierarchical protocol: killing a
        // leader would orphan its square, which needs leader re-election to
        // degrade gracefully — not silently wrong behavior.
        FaultSupport::loss_and_stale()
    }

    fn on_tick_faulty(
        &mut self,
        tick: Tick,
        tx: &mut TransmissionCounter,
        rng: &mut dyn RngCore,
        faults: &FaultContext<'_>,
    ) {
        self.step_faulty(tick, tx, rng, faults);
    }

    fn relative_error(&self) -> f64 {
        self.state.relative_error()
    }

    fn squared_error(&self) -> Option<SquaredError> {
        Some(SquaredError {
            current_sq: self.state.deviation_sq(),
            initial: self.state.initial_deviation(),
        })
    }

    fn name(&self) -> &str {
        "affine (state machine)"
    }

    fn metrics(&self) -> Vec<(String, f64)> {
        let stats = self.stats();
        vec![
            ("far_exchanges".into(), stats.far_exchanges as f64),
            ("near_exchanges".into(), stats.near_exchanges as f64),
            ("activations".into(), stats.activations as f64),
            ("deactivations".into(), stats.deactivations as f64),
            ("failed_routes".into(), stats.failed_routes as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::InitialCondition;
    use geogossip_geometry::sampling::sample_unit_square;
    use geogossip_sim::engine::{AsyncEngine, StopCondition};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize, seed: u64) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        GeometricGraph::build_at_connectivity_radius(pts, 2.0)
    }

    #[test]
    fn construction_validates_inputs() {
        let g = graph(100, 1);
        assert!(AffineStateMachine::practical(&g, vec![0.0; 100]).is_ok());
        assert!(AffineStateMachine::practical(&g, vec![0.0; 7]).is_err());
        let empty = GeometricGraph::build(Vec::new(), 0.1);
        assert!(AffineStateMachine::practical(&empty, Vec::new()).is_err());
    }

    #[test]
    fn practical_schedule_orders_rates_correctly() {
        let g = graph(400, 2);
        let hierarchy = Hierarchy::build(&g, PartitionConfig::practical(400)).unwrap();
        let sched = ScheduleParams::practical(&hierarchy, 2.0);
        // The root never goes long-range and never deactivates.
        assert_eq!(sched.far_probability_by_depth[0], 0.0);
        assert_eq!(sched.latency_by_depth[0], u64::MAX);
        // Non-root levels go long-range much more rarely than once per
        // latency period.
        for depth in 1..hierarchy.levels() {
            let p = sched.far_probability_by_depth[depth];
            let lat = sched.latency_by_depth[depth] as f64;
            assert!(p > 0.0);
            assert!(p <= 1.0 / lat + 1e-12, "far rate too high at depth {depth}");
        }
    }

    #[test]
    fn paper_schedule_params_are_enormous() {
        let g = graph(256, 3);
        let hierarchy = Hierarchy::build(&g, PartitionConfig::practical(256)).unwrap();
        let paper = PaperSchedule::new(256, hierarchy.levels(), 1e-3, 1e-2, 1.0);
        let sched = ScheduleParams::from_paper_schedule(&paper);
        assert!(sched.latency_by_depth[0] > 1_000_000_000);
        assert!(sched.far_probability_by_depth[1] < 1e-9);
    }

    #[test]
    fn state_machine_converges_on_a_small_network() {
        // A spike can only be averaged by moving mass between squares, so this
        // exercises the full Near/Far/Activate/Deactivate cycle: purely local
        // averaging bottoms out around 0.25 for these cell sizes and the 0.2
        // target needs long-range exchanges.
        let g = graph(224, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let values = InitialCondition::Spike.generate(g.len(), &mut rng);
        let mut protocol = AffineStateMachine::practical(&g, values).unwrap();
        let report = AsyncEngine::new(g.len()).run(
            &mut protocol,
            StopCondition::at_epsilon(0.2).with_max_ticks(6_000_000),
            &mut rng,
        );
        assert!(
            report.converged(),
            "state machine stuck at error {} after {} ticks (far {}, near {})",
            report.final_error,
            report.ticks,
            protocol.stats().far_exchanges,
            protocol.stats().near_exchanges
        );
        let stats = protocol.stats();
        assert!(stats.far_exchanges > 0, "no long-range exchanges happened");
        assert!(stats.near_exchanges > 0, "no local exchanges happened");
        assert!(stats.activations > 0);
    }

    #[test]
    fn dropped_data_exchanges_leave_values_untouched_but_the_control_plane_runs() {
        let g = graph(224, 10);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let values = InitialCondition::Spike.generate(g.len(), &mut rng);
        let mut protocol = AffineStateMachine::practical(&g, values).unwrap();
        let before = protocol.state().values().to_vec();
        let mut clock = geogossip_sim::GlobalPoissonClock::new(g.len());
        let mut tx = TransmissionCounter::new();
        let dropped = FaultContext::new(true, &[], &[]);
        for _ in 0..50_000 {
            let tick = clock.next_tick(&mut rng);
            protocol.step_faulty(tick, &mut tx, &mut rng, &dropped);
        }
        assert_eq!(protocol.state().values(), &before[..]);
        let stats = protocol.stats();
        assert_eq!(stats.near_exchanges, 0);
        assert_eq!(stats.far_exchanges, 0);
        assert!(stats.activations > 0, "the control plane keeps running");
        assert!(tx.total() > 0, "dropped exchanges still cost transmissions");
    }

    #[test]
    fn mass_is_conserved_by_the_state_machine() {
        let g = graph(224, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let values = InitialCondition::Uniform.generate(g.len(), &mut rng);
        let mut protocol = AffineStateMachine::practical(&g, values).unwrap();
        let _ = AsyncEngine::new(g.len()).run(
            &mut protocol,
            StopCondition::at_epsilon(0.3).with_max_ticks(1_500_000),
            &mut rng,
        );
        assert!(protocol.state().mass_drift() < 1e-9);
    }

    #[test]
    fn root_square_is_enabled_at_start_and_children_get_enabled() {
        let g = graph(300, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let values = InitialCondition::Spike.generate(g.len(), &mut rng);
        let mut protocol = AffineStateMachine::practical(&g, values).unwrap();
        assert!(protocol.square_enabled(0));
        // Run a short burst; the root leader's first tick activates children.
        let _ = AsyncEngine::new(g.len()).run(
            &mut protocol,
            StopCondition::at_epsilon(1e-12).with_max_ticks(20_000),
            &mut rng,
        );
        let enabled_children = protocol
            .hierarchy()
            .populated_children(0)
            .iter()
            .filter(|&&c| protocol.square_enabled(c))
            .count();
        assert!(
            enabled_children >= 2,
            "children of the root were never enabled"
        );
    }
}
