//! The paper's contribution: hierarchical geographic gossip via affine
//! combinations.
//!
//! The construction has three ingredients (Sections 3 and 4):
//!
//! 1. **A hierarchical square partition** of the unit square into cells whose
//!    expected population shrinks by a square root per level
//!    ([`hierarchy::Hierarchy`], built on
//!    [`geogossip_geometry::SquarePartition`]). Each cell has a *leader*, the
//!    sensor closest to its center.
//! 2. **Non-convex affine exchanges between leaders** of sibling cells, with
//!    coefficient `(2/5)·E#(□)` — about `2√n/5` at the top level. After the
//!    two cells are re-averaged internally, the *cell sums* evolve exactly as
//!    the Lemma-1 dynamics on a complete graph over the cells
//!    ([`crate::update::cell_sum_exchange`]).
//! 3. **A schedule** that keeps local averaging and long-range exchanges from
//!    interfering: each leader activates its cell, lets it average locally,
//!    deactivates it, and only then (at a much lower rate) engages in
//!    long-range exchanges ([`state_machine`], with the paper's literal rate
//!    formulas in [`schedule`]).
//!
//! Two implementations are provided:
//!
//! * [`round_based::RoundBasedAffineGossip`] — the idealised recursion of the
//!   Section-3 overview, which drives the scaling experiments (E3, E4, E8).
//! * [`state_machine::AffineStateMachine`] — the literal asynchronous protocol
//!   of Section 4.2 (`Near` / `Far` / `Activate.square` / `Deactivate.square`
//!   with `local.state` / `global.state` / `counter`), runnable with practical
//!   schedule parameters and, for small instances, with the paper's own
//!   constants.

pub mod hierarchy;
pub mod round_based;
pub mod schedule;
pub mod state_machine;

pub use hierarchy::Hierarchy;
pub use round_based::{CoefficientRule, LocalAveraging, RoundBasedAffineGossip, RoundBasedConfig};
pub use schedule::PaperSchedule;
pub use state_machine::{AffineStateMachine, ScheduleParams};
