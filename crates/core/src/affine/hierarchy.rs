//! The hierarchical partition coupled to a concrete geometric graph.
//!
//! [`geogossip_geometry::SquarePartition`] knows about cells, members and
//! leaders purely from positions; [`Hierarchy`] couples it to the
//! [`GeometricGraph`] the protocol actually runs on, validates that the
//! partition is usable (at least two populated top-level cells, every
//! populated cell has a leader), and provides the cell-level queries the
//! protocols need (siblings, populated children, leader lookups, level of a
//! node).

use crate::error::ProtocolError;
use geogossip_geometry::point::NodeId;
use geogossip_geometry::{PartitionConfig, SquarePartition};
use geogossip_graph::GeometricGraph;
use serde::{Deserialize, Serialize};

/// The hierarchical square partition bound to a geometric graph.
///
/// # Example
///
/// ```
/// use geogossip_core::affine::Hierarchy;
/// use geogossip_geometry::{PartitionConfig, sampling::sample_unit_square};
/// use geogossip_graph::GeometricGraph;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let pts = sample_unit_square(512, &mut ChaCha8Rng::seed_from_u64(1));
/// let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
/// let hierarchy = Hierarchy::build(&graph, PartitionConfig::practical(512)).unwrap();
/// assert!(hierarchy.levels() >= 2);
/// assert!(hierarchy.populated_children(0).len() >= 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hierarchy {
    partition: SquarePartition,
    /// Arena indices of populated (non-empty) cells per depth.
    populated_by_depth: Vec<Vec<usize>>,
}

impl Hierarchy {
    /// Builds the hierarchy for `graph` under the given partition
    /// configuration.
    ///
    /// # Errors
    ///
    /// * [`ProtocolError::EmptyNetwork`] when the graph has no nodes.
    /// * [`ProtocolError::DegeneratePartition`] when the top level has fewer
    ///   than two populated cells (the protocol needs someone to exchange
    ///   with). This happens only for very small `n` or pathological
    ///   configurations.
    pub fn build(graph: &GeometricGraph, config: PartitionConfig) -> Result<Self, ProtocolError> {
        if graph.is_empty() {
            return Err(ProtocolError::EmptyNetwork);
        }
        let partition = SquarePartition::build(graph.positions(), config);
        let mut populated_by_depth = vec![Vec::new(); partition.levels()];
        for (idx, cell) in partition.cells().iter().enumerate() {
            if !cell.members().is_empty() {
                populated_by_depth[cell.depth()].push(idx);
            }
        }
        let hierarchy = Hierarchy {
            partition,
            populated_by_depth,
        };
        if hierarchy.levels() >= 2 && hierarchy.populated_cells_at_depth(1).len() < 2 {
            return Err(ProtocolError::DegeneratePartition);
        }
        Ok(hierarchy)
    }

    /// The underlying square partition.
    pub fn partition(&self) -> &SquarePartition {
        &self.partition
    }

    /// Number of levels `ℓ` of the hierarchy (1 = no split happened).
    pub fn levels(&self) -> usize {
        self.partition.levels()
    }

    /// Arena indices of populated cells at `depth`.
    pub fn populated_cells_at_depth(&self, depth: usize) -> &[usize] {
        self.populated_by_depth
            .get(depth)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Arena indices of the populated children of cell `cell_idx`.
    pub fn populated_children(&self, cell_idx: usize) -> Vec<usize> {
        self.partition
            .cell(cell_idx)
            .children()
            .iter()
            .copied()
            .filter(|&c| !self.partition.cell(c).members().is_empty())
            .collect()
    }

    /// The leader of cell `cell_idx`, if the cell is populated.
    pub fn leader(&self, cell_idx: usize) -> Option<NodeId> {
        self.partition.cell(cell_idx).leader()
    }

    /// The expected population `E#(□)` of cell `cell_idx` under uniform
    /// placement — the quantity the paper's affine coefficient is based on.
    pub fn expected_count(&self, cell_idx: usize) -> f64 {
        self.partition.cell(cell_idx).expected_count()
    }

    /// The actual members of cell `cell_idx`.
    pub fn members(&self, cell_idx: usize) -> &[usize] {
        self.partition.cell(cell_idx).members()
    }

    /// The paper's level of a node (0 for ordinary sensors, `ℓ` for the root
    /// leader).
    pub fn level_of(&self, node: NodeId) -> usize {
        self.partition.level_of(node)
    }

    /// Arena index of the leaf cell containing `node`.
    pub fn leaf_of(&self, node: NodeId) -> usize {
        self.partition.leaf_of(node)
    }

    /// Maximum observed relative deviation `|#(□)/E#(□) − 1|` over the
    /// populated cells at `depth` — the Chernoff-concentration quantity of
    /// Section 3 (experiment E7 reports it for depth 1).
    pub fn max_occupancy_deviation(&self, depth: usize) -> f64 {
        self.partition
            .cells_at_depth(depth)
            .map(|(_, c)| {
                let expected = c.expected_count();
                if expected == 0.0 {
                    0.0
                } else {
                    (c.members().len() as f64 / expected - 1.0).abs()
                }
            })
            .fold(0.0, f64::max)
    }

    /// Number of sensors that lead more than one square (zero w.h.p. per the
    /// paper's separation argument; reported by experiment E10).
    pub fn leader_conflicts(&self) -> usize {
        self.partition.leader_conflicts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geogossip_geometry::sampling::sample_unit_square;
    use geogossip_geometry::Point;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(n: usize, seed: u64) -> (GeometricGraph, Hierarchy) {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
        let hierarchy = Hierarchy::build(&graph, PartitionConfig::practical(n)).unwrap();
        (graph, hierarchy)
    }

    #[test]
    fn empty_graph_is_rejected() {
        let graph = GeometricGraph::build(Vec::new(), 0.1);
        assert!(matches!(
            Hierarchy::build(&graph, PartitionConfig::practical(0)),
            Err(ProtocolError::EmptyNetwork)
        ));
    }

    #[test]
    fn populated_cells_have_leaders() {
        let (_, h) = build(600, 1);
        for depth in 0..h.levels() {
            for &idx in h.populated_cells_at_depth(depth) {
                assert!(
                    h.leader(idx).is_some(),
                    "populated cell {idx} has no leader"
                );
            }
        }
    }

    #[test]
    fn populated_children_are_populated_and_children() {
        let (_, h) = build(900, 2);
        let kids = h.populated_children(0);
        assert!(kids.len() >= 2);
        for k in kids {
            assert!(!h.members(k).is_empty());
            assert_eq!(h.partition().cell(k).parent(), Some(0));
        }
    }

    #[test]
    fn top_level_occupancy_concentrates_at_large_n() {
        // Section 3's Chernoff claim: |#(□_i)/√n − 1| < 1/10 w.h.p. The
        // concentration improves with n; at n = 8192 the deviation should
        // already be well below 1 (it approaches 0.1 only for much larger n,
        // so we assert a looser bound here and report the curve in E7).
        let (_, h) = build(8192, 3);
        assert!(h.max_occupancy_deviation(1) < 1.0);
    }

    #[test]
    fn levels_and_leaf_lookup_are_consistent() {
        let (_, h) = build(700, 4);
        let root_leader = h.leader(0).unwrap();
        assert_eq!(h.level_of(root_leader), h.levels());
        for i in 0..700 {
            let leaf = h.leaf_of(NodeId(i));
            assert!(h.members(leaf).contains(&i));
        }
    }

    #[test]
    fn tiny_clustered_network_is_degenerate() {
        // All sensors in one corner: only one top-level cell is populated.
        let pts: Vec<Point> = (0..20)
            .map(|i| Point::new(0.01 + 0.001 * i as f64, 0.01))
            .collect();
        let graph = GeometricGraph::build(pts, 0.5);
        let result = Hierarchy::build(&graph, PartitionConfig::top_level_only(20));
        assert!(matches!(result, Err(ProtocolError::DegeneratePartition)));
    }
}
