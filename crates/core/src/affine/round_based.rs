//! The idealised round-based form of the hierarchical affine protocol.
//!
//! This implementation follows the Section-3 overview (generalised to the full
//! Section-4 hierarchy) as a *nested round* recursion rather than as the
//! asynchronous state machine:
//!
//! * a **round of a cell** picks two of its populated child cells uniformly at
//!   random, routes a packet between their leaders (greedy geographic
//!   routing, both directions), applies the affine exchange
//!   `x ← x + α(x' − x)` with `α = (2/5)·E#(child)` to the two leader values,
//!   and then re-averages both children internally;
//! * **re-averaging a child** either recurses (rounds of the child's own
//!   children, then pairwise gossip inside leaves) or, in the idealised
//!   [`LocalAveraging::Exact`] mode, sets every member to the child's mean at
//!   a cost of `2·|child|` transmissions (an aggregation/broadcast flood —
//!   the cheapest physically implementable stand-in).
//!
//! The top level runs rounds until the measured global relative error drops
//! below the target, which is what the experiments actually need; inner levels
//! use the paper's `O(ñ·log(ñ/ε_r))` round counts with a configurable
//! constant. The paper's accuracy cascade `ε_{r+1} = ε_r/(25·n^{7/2+a})`
//! (Section 4.1) is replaced by a configurable per-level decay factor —
//! DESIGN.md §2, substitution 3 — because the literal cascade is unreachable
//! in floating point for any interesting `n`.

use crate::affine::hierarchy::Hierarchy;
use crate::error::ProtocolError;
use crate::state::GossipState;
use crate::update::{affine_exchange, convex_average, AffineCoefficient};
use geogossip_geometry::point::NodeId;
use geogossip_geometry::PartitionConfig;
use geogossip_graph::GeometricGraph;
use geogossip_routing::greedy::route_terminus_to_node;
use geogossip_sim::clock::Tick;
use geogossip_sim::engine::{Activation, Clocking, SquaredError};
use geogossip_sim::metrics::{ConvergenceTrace, TracePoint, TransmissionCounter};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// How the affine coefficient of a leader exchange is chosen.
///
/// The paper writes the coefficient as `(2/5)·E#(□)`, the *expected* cell
/// population, because in its regime (`E# ≥ (log n)^8`) the Chernoff bound
/// makes the realized population indistinguishable from the expectation. At
/// simulable sizes the expected leaf population is small (tens), occupancy
/// fluctuates by ±50%, and an `E#`-based coefficient can exceed the realized
/// population — making the effective mixing weight larger than 1 and the
/// exchange divergent. The implementation therefore scales the coefficient by
/// the **realized** population handed in by the caller (DESIGN.md §2,
/// substitution 2); in the paper's regime the two coincide.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoefficientRule {
    /// `α = fraction · #(□)` — the paper uses `fraction = 2/5` (Section 4.2).
    FractionOfPopulation(f64),
    /// A fixed coefficient independent of the cell size; `Fixed(0.5)` is the
    /// convex baseline used in the E8 ablation.
    Fixed(f64),
}

impl CoefficientRule {
    /// The paper's rule `α = (2/5)·#(□)`.
    pub fn paper() -> Self {
        CoefficientRule::FractionOfPopulation(0.4)
    }

    /// The convex-combination rule `α = 1/2` (what previous gossip protocols
    /// use; the ablation baseline).
    pub fn convex() -> Self {
        CoefficientRule::Fixed(0.5)
    }

    /// The coefficient for an exchange between cells of (realized) population
    /// `cell_population`.
    pub fn coefficient(&self, cell_population: f64) -> AffineCoefficient {
        match *self {
            CoefficientRule::FractionOfPopulation(f) => {
                AffineCoefficient::new(f * cell_population.max(1.0))
            }
            CoefficientRule::Fixed(alpha) => AffineCoefficient::new(alpha),
        }
    }
}

/// How a cell is re-averaged internally after its leader took part in a
/// long-range exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LocalAveraging {
    /// Idealised: set every member to the cell mean, charging `2·|cell|`
    /// transmissions (convergecast + broadcast along a flooding tree). Used to
    /// exhibit the paper's asymptotic shape without the polylogarithmic
    /// constants of nested gossip.
    Exact,
    /// Faithful: recurse through the hierarchy and run pairwise gossip inside
    /// leaf cells until the within-cell relative error drops below the
    /// current level's accuracy target. `max_exchanges_factor` caps the
    /// number of pairwise exchanges at `factor · m²` for a leaf of `m`
    /// members (a safety net for internally disconnected leaves).
    Gossip {
        /// Cap on leaf exchanges as a multiple of `m²`.
        max_exchanges_factor: f64,
    },
}

/// Configuration of the round-based protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundBasedConfig {
    /// How the hierarchical partition is built.
    pub partition: PartitionConfig,
    /// Affine coefficient rule for leader exchanges.
    pub coefficient: CoefficientRule,
    /// Local re-averaging mode.
    pub local_averaging: LocalAveraging,
    /// Multiplier on the `m·ln(m/ε)` inner-round count.
    pub rounds_factor: f64,
    /// Per-level accuracy decay: `ε_{r+1} = ε_r · epsilon_decay`.
    pub epsilon_decay: f64,
    /// Safety cap on the number of top-level rounds.
    pub max_top_rounds: u64,
}

impl RoundBasedConfig {
    /// Faithful configuration: paper coefficient, recursive local averaging,
    /// practical partition.
    pub fn practical(n: usize) -> Self {
        RoundBasedConfig {
            partition: PartitionConfig::practical(n),
            coefficient: CoefficientRule::paper(),
            local_averaging: LocalAveraging::Gossip {
                max_exchanges_factor: 8.0,
            },
            rounds_factor: 1.0,
            epsilon_decay: 0.1,
            max_top_rounds: 100_000,
        }
    }

    /// Idealised configuration: paper coefficient, exact (flood-based) local
    /// averaging. Exhibits the `n^{1+o(1)}` shape without nested-gossip
    /// constants.
    pub fn idealized(n: usize) -> Self {
        RoundBasedConfig {
            local_averaging: LocalAveraging::Exact,
            ..Self::practical(n)
        }
    }

    /// The Section-3 overview: a single level of `~√n` cells, exact local
    /// averaging.
    pub fn section3_overview(n: usize) -> Self {
        RoundBasedConfig {
            partition: PartitionConfig::top_level_only(n),
            local_averaging: LocalAveraging::Exact,
            ..Self::practical(n)
        }
    }

    /// Replaces the coefficient rule (used by the E8 ablation).
    pub fn with_coefficient(mut self, rule: CoefficientRule) -> Self {
        self.coefficient = rule;
        self
    }
}

/// Counters describing one run of the round-based protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Number of top-level rounds executed.
    pub top_rounds: u64,
    /// Total number of leader-to-leader affine exchanges (all levels).
    pub long_range_exchanges: u64,
    /// Total number of pairwise exchanges inside leaf cells.
    pub local_exchanges: u64,
    /// Number of leader routings that dead-ended before their destination.
    pub failed_routes: u64,
    /// Number of leaf-averaging passes that hit their exchange cap before
    /// reaching the accuracy target (internally disconnected leaves).
    pub stalled_local_passes: u64,
}

/// Result of [`RoundBasedAffineGossip::run_until`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundBasedReport {
    /// Whether the global error target was reached.
    pub converged: bool,
    /// Final relative ℓ₂ error.
    pub final_error: f64,
    /// Transmission counters (routing / local / control).
    pub transmissions: TransmissionCounter,
    /// Error-vs-cost trace sampled once per top-level round.
    pub trace: ConvergenceTrace,
    /// Protocol statistics.
    pub stats: RoundStats,
}

/// The round-based hierarchical affine gossip protocol.
///
/// # Example
///
/// ```
/// use geogossip_core::prelude::*;
/// use geogossip_graph::GeometricGraph;
/// use geogossip_geometry::sampling::sample_unit_square;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(11);
/// let pts = sample_unit_square(512, &mut rng);
/// let graph = GeometricGraph::build_at_connectivity_radius(pts, 2.0);
/// let values = InitialCondition::Spike.generate(graph.len(), &mut rng);
/// let mut gossip = RoundBasedAffineGossip::new(
///     &graph, values, RoundBasedConfig::idealized(graph.len()),
/// )?;
/// let report = gossip.run_until(0.01, &mut rng);
/// assert!(report.converged);
/// # Ok::<(), geogossip_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoundBasedAffineGossip<'a> {
    graph: &'a GeometricGraph,
    hierarchy: Hierarchy,
    state: GossipState,
    config: RoundBasedConfig,
    stats: RoundStats,
}

impl<'a> RoundBasedAffineGossip<'a> {
    /// Creates the protocol over `graph` with the given initial values and
    /// configuration.
    ///
    /// # Errors
    ///
    /// * [`ProtocolError::EmptyNetwork`] / [`ProtocolError::ValueLengthMismatch`]
    ///   for malformed inputs.
    /// * [`ProtocolError::DegeneratePartition`] when the partition has fewer
    ///   than two populated top-level cells.
    /// * [`ProtocolError::InvalidParameter`] for non-positive factors.
    pub fn new(
        graph: &'a GeometricGraph,
        initial_values: Vec<f64>,
        config: RoundBasedConfig,
    ) -> Result<Self, ProtocolError> {
        if graph.is_empty() {
            return Err(ProtocolError::EmptyNetwork);
        }
        if initial_values.len() != graph.len() {
            return Err(ProtocolError::ValueLengthMismatch {
                nodes: graph.len(),
                values: initial_values.len(),
            });
        }
        if !config.rounds_factor.is_finite() || config.rounds_factor <= 0.0 {
            return Err(ProtocolError::InvalidParameter {
                name: "rounds_factor".into(),
                reason: "must be strictly positive".into(),
            });
        }
        if !config.epsilon_decay.is_finite()
            || config.epsilon_decay <= 0.0
            || config.epsilon_decay > 1.0
        {
            return Err(ProtocolError::InvalidParameter {
                name: "epsilon_decay".into(),
                reason: "must lie in (0, 1]".into(),
            });
        }
        let hierarchy = Hierarchy::build(graph, config.partition)?;
        Ok(RoundBasedAffineGossip {
            graph,
            hierarchy,
            state: GossipState::new(initial_values),
            config,
            stats: RoundStats::default(),
        })
    }

    /// The current gossip state.
    pub fn state(&self) -> &GossipState {
        &self.state
    }

    /// The hierarchy the protocol runs on.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> RoundStats {
        self.stats
    }

    /// Runs top-level rounds until the global relative error is at or below
    /// `epsilon` (or the round cap is hit) and returns the full report.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]`.
    pub fn run_until<R: Rng + ?Sized>(&mut self, epsilon: f64, rng: &mut R) -> RoundBasedReport {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        let mut tx = TransmissionCounter::new();
        let mut trace = ConvergenceTrace::new();
        trace.push(TracePoint {
            transmissions: 0,
            ticks: 0,
            relative_error: self.state.relative_error(),
        });

        let child_epsilon = (epsilon * self.config.epsilon_decay).max(f64::MIN_POSITIVE);
        let top_children = self.hierarchy.populated_children(0);

        // Pre-averaging pass: the Section-3 argument starts from "A has been
        // run on each subsquare", i.e. every top-level cell is internally
        // averaged before leaders start exchanging.
        if top_children.len() >= 2 {
            self.pre_average_pass(&top_children, child_epsilon, &mut tx, rng);
        }
        trace.push(TracePoint {
            transmissions: tx.total(),
            ticks: self.stats.top_rounds,
            relative_error: self.state.relative_error(),
        });

        // Stall detection: if the error has not improved by at least 1% over a
        // full window of rounds (several complete passes over the top cells),
        // the run has hit the floor imposed by imperfect local averaging and
        // is reported as non-converged rather than looping to the cap.
        let stall_window = (20 * top_children.len().max(2)) as u64;
        let mut best_error = self.state.relative_error();
        let mut rounds_since_improvement = 0u64;

        let mut converged = self.state.relative_error() <= epsilon;
        while !converged && self.stats.top_rounds < self.config.max_top_rounds {
            if top_children.len() < 2 {
                // Nothing to exchange with: local averaging is all we can do,
                // and the pre-averaging pass already did it.
                break;
            }
            self.top_level_round(&top_children, child_epsilon, &mut tx, rng);
            let error = self.state.relative_error();
            converged = error <= epsilon;
            trace.push(TracePoint {
                transmissions: tx.total(),
                ticks: self.stats.top_rounds,
                relative_error: error,
            });
            if error < best_error * 0.99 {
                best_error = error;
                rounds_since_improvement = 0;
            } else {
                rounds_since_improvement += 1;
                if rounds_since_improvement >= stall_window {
                    break;
                }
            }
        }

        RoundBasedReport {
            converged,
            final_error: self.state.relative_error(),
            transmissions: tx,
            trace,
            stats: self.stats,
        }
    }

    /// The Section-3 pre-averaging pass: internally averages every populated
    /// top-level cell. Shared verbatim by [`Self::run_until`] and
    /// [`RoundBasedActivation`], so the two paths consume the RNG in exactly
    /// the same order.
    fn pre_average_pass<R: Rng + ?Sized>(
        &mut self,
        top_children: &[usize],
        child_epsilon: f64,
        tx: &mut TransmissionCounter,
        rng: &mut R,
    ) {
        for &child in top_children {
            self.average_cell(child, child_epsilon, tx, rng);
        }
    }

    /// One top-level round: pick two distinct populated top cells uniformly
    /// at random, exchange their leaders, re-average both, and count the
    /// round. Shared verbatim by [`Self::run_until`] and
    /// [`RoundBasedActivation`] — keeping the draw order in one place is what
    /// holds the two execution paths bit-identical.
    fn top_level_round<R: Rng + ?Sized>(
        &mut self,
        top_children: &[usize],
        child_epsilon: f64,
        tx: &mut TransmissionCounter,
        rng: &mut R,
    ) {
        let m = top_children.len();
        let i = top_children[rng.gen_range(0..m)];
        let j = loop {
            let cand = top_children[rng.gen_range(0..m)];
            if cand != i {
                break cand;
            }
        };
        self.leader_exchange(i, j, tx, rng);
        self.average_cell(i, child_epsilon, tx, rng);
        self.average_cell(j, child_epsilon, tx, rng);
        self.stats.top_rounds += 1;
    }

    /// One leader-to-leader affine exchange between cells `a` and `b`
    /// (which must be populated).
    fn leader_exchange<R: Rng + ?Sized>(
        &mut self,
        a: usize,
        b: usize,
        tx: &mut TransmissionCounter,
        rng: &mut R,
    ) {
        let _ = rng;
        let (Some(la), Some(lb)) = (self.hierarchy.leader(a), self.hierarchy.leader(b)) else {
            return;
        };
        // Route the caller's packet to the callee and the callee's reply back
        // (allocation-free: only hop counts and delivery flags are needed).
        let (out, out_delivered) = route_terminus_to_node(self.graph, la, lb);
        let (back, back_delivered) = route_terminus_to_node(self.graph, lb, la);
        if !out_delivered {
            self.stats.failed_routes += 1;
        }
        if !back_delivered {
            self.stats.failed_routes += 1;
        }
        tx.charge_routing((out.hops + back.hops) as u64);

        // The coefficient is based on the smaller of the two realized cell
        // populations so the effective mixing weight stays below 1 even for
        // under-populated cells (see `CoefficientRule`).
        let population = self
            .hierarchy
            .members(a)
            .len()
            .min(self.hierarchy.members(b).len()) as f64;
        let alpha = self.config.coefficient.coefficient(population);
        let (xa, xb) = (self.state.value(la.index()), self.state.value(lb.index()));
        let (na, nb) = affine_exchange(xa, xb, alpha);
        self.state.set(la.index(), na);
        self.state.set(lb.index(), nb);
        self.stats.long_range_exchanges += 1;
    }

    /// Re-averages cell `cell_idx` internally to accuracy `epsilon_r`.
    fn average_cell<R: Rng + ?Sized>(
        &mut self,
        cell_idx: usize,
        epsilon_r: f64,
        tx: &mut TransmissionCounter,
        rng: &mut R,
    ) {
        let member_count = self.hierarchy.members(cell_idx).len();
        if member_count <= 1 {
            return;
        }
        match self.config.local_averaging {
            LocalAveraging::Exact => self.exact_average(cell_idx, tx),
            LocalAveraging::Gossip { .. } => {
                let children = self.hierarchy.populated_children(cell_idx);
                if children.len() < 2 {
                    self.leaf_gossip(cell_idx, epsilon_r, tx, rng);
                } else {
                    // The affine exchanges are only stable when every child is
                    // already internally averaged ("Suppose that A has been
                    // run on each subsquare", Section 3) — otherwise a child
                    // leader's value does not represent its cell and the
                    // non-convex coefficient amplifies the discrepancy. So
                    // first re-establish that precondition, then run rounds of
                    // child-leader exchanges until the cell's internal spread
                    // is below the accuracy target, capped at the paper's
                    // O(m·log(m/ε)) round count times a safety factor.
                    let m = children.len();
                    let child_epsilon =
                        (epsilon_r * self.config.epsilon_decay).max(f64::MIN_POSITIVE);
                    for &child in &children {
                        self.average_cell(child, child_epsilon, tx, rng);
                    }
                    let planned = (self.config.rounds_factor
                        * m as f64
                        * (m as f64 / epsilon_r).max(std::f64::consts::E).ln())
                    .ceil() as u64;
                    let cap = planned.saturating_mul(4).max(8);
                    let mut rounds = 0u64;
                    while self.cell_spread(cell_idx) > epsilon_r && rounds < cap {
                        let i = children[rng.gen_range(0..m)];
                        let j = loop {
                            let cand = children[rng.gen_range(0..m)];
                            if cand != i {
                                break cand;
                            }
                        };
                        self.leader_exchange(i, j, tx, rng);
                        self.average_cell(i, child_epsilon, tx, rng);
                        self.average_cell(j, child_epsilon, tx, rng);
                        rounds += 1;
                    }
                    if rounds >= cap && self.cell_spread(cell_idx) > epsilon_r {
                        self.stats.stalled_local_passes += 1;
                    }
                }
            }
        }
    }

    /// Relative spread of the values inside a cell: the ℓ₂ deviation of the
    /// members' values around the cell mean, normalised by `max(|mean|, 1)`.
    /// This is the quantity the accuracy cascade `ε_r` of Section 4.1 bounds.
    fn cell_spread(&self, cell_idx: usize) -> f64 {
        let members = self.hierarchy.members(cell_idx);
        if members.len() <= 1 {
            return 0.0;
        }
        let mean = members.iter().map(|&i| self.state.value(i)).sum::<f64>() / members.len() as f64;
        let dev: f64 = members
            .iter()
            .map(|&i| {
                let d = self.state.value(i) - mean;
                d * d
            })
            .sum::<f64>()
            .sqrt();
        dev / mean.abs().max(1.0)
    }

    /// Idealised local averaging: every member takes the cell mean; cost is
    /// one convergecast plus one broadcast over the cell (2 transmissions per
    /// member), charged as control traffic.
    fn exact_average(&mut self, cell_idx: usize, tx: &mut TransmissionCounter) {
        let members = self.hierarchy.members(cell_idx);
        if members.is_empty() {
            return;
        }
        let sum: f64 = members.iter().map(|&m| self.state.value(m)).sum();
        let mean = sum / members.len() as f64;
        let member_list: Vec<usize> = members.to_vec();
        for m in member_list {
            self.state.set(m, mean);
        }
        tx.charge_control(2 * members.len() as u64);
    }

    /// Pairwise gossip restricted to the members of a leaf cell, run until the
    /// within-cell relative deviation drops below `epsilon_r` or the exchange
    /// cap is hit.
    fn leaf_gossip<R: Rng + ?Sized>(
        &mut self,
        cell_idx: usize,
        epsilon_r: f64,
        tx: &mut TransmissionCounter,
        rng: &mut R,
    ) {
        let members: Vec<usize> = self.hierarchy.members(cell_idx).to_vec();
        let m = members.len();
        if m <= 1 {
            return;
        }
        let member_set: std::collections::HashSet<usize> = members.iter().copied().collect();
        let cap = match self.config.local_averaging {
            LocalAveraging::Gossip {
                max_exchanges_factor,
            } => ((max_exchanges_factor * (m * m) as f64).ceil() as u64).max(16),
            LocalAveraging::Exact => unreachable!("leaf_gossip is only called in Gossip mode"),
        };

        if self.cell_spread(cell_idx) <= epsilon_r {
            return;
        }
        let mut attempts = 0u64;
        loop {
            // A batch of exchanges between error checks keeps the check cost
            // (O(m)) amortised. Attempts are counted even when a member has no
            // in-cell neighbor, so internally disconnected leaves cannot spin
            // forever.
            for _ in 0..m {
                attempts += 1;
                let u = members[rng.gen_range(0..m)];
                let in_cell_neighbors: Vec<usize> = self
                    .graph
                    .neighbors(NodeId(u))
                    .iter()
                    .map(|&v| v as usize)
                    .filter(|v| member_set.contains(v))
                    .collect();
                if in_cell_neighbors.is_empty() {
                    continue;
                }
                let v = in_cell_neighbors[rng.gen_range(0..in_cell_neighbors.len())];
                let (nu, nv) = convex_average(self.state.value(u), self.state.value(v));
                self.state.set(u, nu);
                self.state.set(v, nv);
                tx.charge_local(2);
                self.stats.local_exchanges += 1;
            }
            if self.cell_spread(cell_idx) <= epsilon_r {
                return;
            }
            if attempts >= cap {
                self.stats.stalled_local_passes += 1;
                return;
            }
        }
    }
}

/// The round-based protocol as a **self-paced [`Activation`]**, so it can be
/// boxed, registered, and driven by the engine like the tick-driven
/// protocols.
///
/// One engine tick maps to one unit of the protocol's own schedule: the first
/// tick runs the Section-3 pre-averaging pass over the top-level cells, every
/// later tick runs one top-level round. Because the adapter reports
/// [`Clocking::SelfPaced`], the engine draws **no** Poisson clock randomness,
/// so a run through the engine consumes the RNG in exactly the order
/// [`RoundBasedAffineGossip::run_until`] does — the scenario determinism test
/// (`tests/scenario_api.rs`) pins the two paths to bit-identical results.
/// Stalls (no ≥1% improvement over a full window of rounds, or the
/// `max_top_rounds` cap) surface through [`Activation::halted`].
#[derive(Debug, Clone)]
pub struct RoundBasedActivation<'a> {
    inner: RoundBasedAffineGossip<'a>,
    child_epsilon: f64,
    top_children: Vec<usize>,
    stall_window: u64,
    pre_averaged: bool,
    halted: bool,
    best_error: f64,
    rounds_since_improvement: u64,
    effective_alpha_top: f64,
}

impl<'a> RoundBasedActivation<'a> {
    /// Creates the adapter for a run targeting relative error `epsilon`
    /// (the per-level accuracy cascade derives from it).
    ///
    /// # Errors
    ///
    /// Everything [`RoundBasedAffineGossip::new`] reports, plus
    /// [`ProtocolError::InvalidParameter`] when `epsilon` is not strictly
    /// positive and finite.
    pub fn new(
        graph: &'a GeometricGraph,
        initial_values: Vec<f64>,
        config: RoundBasedConfig,
        epsilon: f64,
    ) -> Result<Self, ProtocolError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(ProtocolError::invalid(
                "epsilon",
                "round-based target must be strictly positive and finite",
            ));
        }
        let inner = RoundBasedAffineGossip::new(graph, initial_values, config)?;
        let child_epsilon = (epsilon * config.epsilon_decay).max(f64::MIN_POSITIVE);
        let top_children = inner.hierarchy.populated_children(0);
        let stall_window = (20 * top_children.len().max(2)) as u64;
        let effective_alpha_top = top_children
            .first()
            .map(|&c| {
                let population = inner.hierarchy.members(c).len() as f64;
                config.coefficient.coefficient(population).value()
            })
            .unwrap_or(0.0);
        let best_error = inner.state.relative_error();
        Ok(RoundBasedActivation {
            inner,
            child_epsilon,
            top_children,
            stall_window,
            pre_averaged: false,
            halted: false,
            best_error,
            rounds_since_improvement: 0,
            effective_alpha_top,
        })
    }

    /// The wrapped protocol (hierarchy, state, statistics).
    pub fn inner(&self) -> &RoundBasedAffineGossip<'a> {
        &self.inner
    }
}

impl Activation for RoundBasedActivation<'_> {
    fn on_tick(&mut self, _tick: Tick, tx: &mut TransmissionCounter, rng: &mut dyn RngCore) {
        if self.halted {
            return;
        }
        if !self.pre_averaged {
            // "Suppose that A has been run on each subsquare" (Section 3):
            // every top-level cell is internally averaged before leaders
            // start exchanging.
            if self.top_children.len() >= 2 {
                let top_children = std::mem::take(&mut self.top_children);
                self.inner
                    .pre_average_pass(&top_children, self.child_epsilon, tx, rng);
                self.top_children = top_children;
            } else {
                // Nothing to exchange with: local averaging is all there is,
                // and without it the pre-averaging pass cannot even run.
                self.halted = true;
            }
            self.pre_averaged = true;
            self.best_error = self.inner.state.relative_error();
            self.rounds_since_improvement = 0;
            return;
        }
        if self.inner.stats.top_rounds >= self.inner.config.max_top_rounds {
            self.halted = true;
            return;
        }
        // Borrow-splitting: the cell list is lent to the inner protocol for
        // the duration of the round (no allocation; `top_children` is never
        // empty here, so the placeholder cannot be observed).
        let top_children = std::mem::take(&mut self.top_children);
        self.inner
            .top_level_round(&top_children, self.child_epsilon, tx, rng);
        self.top_children = top_children;

        // Stall detection, exactly as in `run_until`: no ≥1% improvement over
        // a full window of rounds means the run has hit the floor imposed by
        // imperfect local averaging.
        let error = self.inner.state.relative_error();
        if error < self.best_error * 0.99 {
            self.best_error = error;
            self.rounds_since_improvement = 0;
        } else {
            self.rounds_since_improvement += 1;
            if self.rounds_since_improvement >= self.stall_window {
                self.halted = true;
            }
        }
        if self.inner.stats.top_rounds >= self.inner.config.max_top_rounds {
            self.halted = true;
        }
    }

    fn relative_error(&self) -> f64 {
        self.inner.state.relative_error()
    }

    fn squared_error(&self) -> Option<SquaredError> {
        Some(SquaredError {
            current_sq: self.inner.state.deviation_sq(),
            initial: self.inner.state.initial_deviation(),
        })
    }

    fn name(&self) -> &str {
        match self.inner.config.local_averaging {
            LocalAveraging::Exact => "affine (idealized local avg)",
            LocalAveraging::Gossip { .. } => "affine (recursive local avg)",
        }
    }

    fn params(&self) -> Vec<(String, String)> {
        let config = &self.inner.config;
        vec![
            ("coefficient".into(), format!("{:?}", config.coefficient)),
            (
                "local_averaging".into(),
                format!("{:?}", config.local_averaging),
            ),
            ("rounds_factor".into(), format!("{}", config.rounds_factor)),
            ("epsilon_decay".into(), format!("{}", config.epsilon_decay)),
            (
                "max_top_rounds".into(),
                format!("{}", config.max_top_rounds),
            ),
        ]
    }

    fn metrics(&self) -> Vec<(String, f64)> {
        let stats = self.inner.stats;
        vec![
            ("top_rounds".into(), stats.top_rounds as f64),
            (
                "long_range_exchanges".into(),
                stats.long_range_exchanges as f64,
            ),
            ("local_exchanges".into(), stats.local_exchanges as f64),
            ("failed_routes".into(), stats.failed_routes as f64),
            (
                "stalled_local_passes".into(),
                stats.stalled_local_passes as f64,
            ),
            ("effective_alpha_top".into(), self.effective_alpha_top),
        ]
    }

    fn rounds(&self) -> Option<u64> {
        Some(self.inner.stats.top_rounds)
    }

    fn halted(&self) -> bool {
        self.halted
    }

    fn clocking(&self) -> Clocking {
        Clocking::SelfPaced
    }

    fn trace_interval(&self) -> Option<u64> {
        // One trace point per top-level round, exactly like `run_until`'s
        // report trace (the engine's default `n`-tick interval would collapse
        // a sub-`n`-round run to its endpoints).
        Some(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::InitialCondition;
    use geogossip_geometry::sampling::sample_unit_square;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph(n: usize, seed: u64) -> GeometricGraph {
        let pts = sample_unit_square(n, &mut ChaCha8Rng::seed_from_u64(seed));
        GeometricGraph::build_at_connectivity_radius(pts, 2.0)
    }

    #[test]
    fn construction_validates_inputs() {
        let g = graph(100, 1);
        assert!(
            RoundBasedAffineGossip::new(&g, vec![0.0; 100], RoundBasedConfig::practical(100))
                .is_ok()
        );
        assert!(
            RoundBasedAffineGossip::new(&g, vec![0.0; 99], RoundBasedConfig::practical(100))
                .is_err()
        );
        let mut bad = RoundBasedConfig::practical(100);
        bad.rounds_factor = 0.0;
        assert!(RoundBasedAffineGossip::new(&g, vec![0.0; 100], bad).is_err());
        let mut bad = RoundBasedConfig::practical(100);
        bad.epsilon_decay = 0.0;
        assert!(RoundBasedAffineGossip::new(&g, vec![0.0; 100], bad).is_err());
    }

    #[test]
    fn idealized_mode_converges_quickly() {
        let g = graph(512, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let values = InitialCondition::Spike.generate(g.len(), &mut rng);
        let mut gossip =
            RoundBasedAffineGossip::new(&g, values, RoundBasedConfig::idealized(g.len())).unwrap();
        let report = gossip.run_until(0.01, &mut rng);
        assert!(report.converged, "error stuck at {}", report.final_error);
        assert!(report.stats.top_rounds > 0);
        assert!(report.transmissions.routing() > 0);
        assert!(report.transmissions.control() > 0);
    }

    #[test]
    fn recursive_gossip_mode_converges() {
        // n = 384 gives a three-level hierarchy, so this exercises the nested
        // recursion (leaf gossip inside child-leader rounds inside top-level
        // rounds). The target is modest: nested gossip's accuracy floor at
        // this size is governed by the ε_r cascade, and EXPERIMENTS.md E4
        // tracks the achievable accuracy; the unit test only requires solid
        // convergence well below the pre-averaging plateau (~0.4).
        let g = graph(384, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let values = InitialCondition::Bimodal.generate(g.len(), &mut rng);
        let mut gossip =
            RoundBasedAffineGossip::new(&g, values, RoundBasedConfig::practical(g.len())).unwrap();
        let report = gossip.run_until(0.2, &mut rng);
        assert!(report.converged, "error stuck at {}", report.final_error);
        assert!(report.stats.local_exchanges > 0);
        assert!(report.transmissions.local() > 0);
    }

    #[test]
    fn mass_is_conserved() {
        let g = graph(400, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let values = InitialCondition::Uniform.generate(g.len(), &mut rng);
        let mut gossip =
            RoundBasedAffineGossip::new(&g, values, RoundBasedConfig::idealized(g.len())).unwrap();
        let _ = gossip.run_until(0.01, &mut rng);
        assert!(
            gossip.state().mass_drift() < 1e-9,
            "drift {}",
            gossip.state().mass_drift()
        );
    }

    #[test]
    fn section3_overview_converges() {
        let g = graph(512, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let values = InitialCondition::Ramp.generate(g.len(), &mut rng);
        let mut gossip =
            RoundBasedAffineGossip::new(&g, values, RoundBasedConfig::section3_overview(g.len()))
                .unwrap();
        let report = gossip.run_until(0.02, &mut rng);
        assert!(report.converged);
        // Single-level hierarchy: only root rounds, no nested long-range
        // exchanges beyond the top level.
        assert_eq!(gossip.hierarchy().levels(), 2);
    }

    #[test]
    fn convex_coefficient_converges_more_slowly_than_paper_coefficient() {
        // E8's headline: with convex leader exchanges (α = 1/2) each contact
        // moves only ~1/√n of a cell's mass, so many more top-level rounds are
        // needed than with the paper's α = 2√n/5.
        let g = graph(512, 10);
        let values = InitialCondition::Spike.generate(g.len(), &mut ChaCha8Rng::seed_from_u64(11));
        let mut base = RoundBasedConfig::idealized(g.len());
        base.max_top_rounds = 20_000;

        let mut paper = RoundBasedAffineGossip::new(
            &g,
            values.clone(),
            base.with_coefficient(CoefficientRule::paper()),
        )
        .unwrap();
        let paper_report = paper.run_until(0.05, &mut ChaCha8Rng::seed_from_u64(12));

        let mut convex = RoundBasedAffineGossip::new(
            &g,
            values,
            base.with_coefficient(CoefficientRule::convex()),
        )
        .unwrap();
        let convex_report = convex.run_until(0.05, &mut ChaCha8Rng::seed_from_u64(12));

        assert!(paper_report.converged);
        assert!(
            !convex_report.converged
                || convex_report.stats.top_rounds > 2 * paper_report.stats.top_rounds,
            "convex rounds {} vs paper rounds {}",
            convex_report.stats.top_rounds,
            paper_report.stats.top_rounds
        );
    }

    #[test]
    fn trace_is_monotone_in_cost() {
        let g = graph(256, 13);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let values = InitialCondition::Spike.generate(g.len(), &mut rng);
        let mut gossip =
            RoundBasedAffineGossip::new(&g, values, RoundBasedConfig::idealized(g.len())).unwrap();
        let report = gossip.run_until(0.05, &mut rng);
        let pts = report.trace.points();
        assert!(pts
            .windows(2)
            .all(|w| w[0].transmissions <= w[1].transmissions));
    }

    #[test]
    fn activation_adapter_matches_run_until_bit_for_bit() {
        use geogossip_sim::{AsyncEngine, StopCondition};
        let g = graph(384, 21);
        let values = InitialCondition::Spike.generate(g.len(), &mut ChaCha8Rng::seed_from_u64(22));
        let epsilon = 0.05;
        for config in [
            RoundBasedConfig::idealized(g.len()),
            RoundBasedConfig::practical(g.len()),
        ] {
            let mut direct = RoundBasedAffineGossip::new(&g, values.clone(), config).unwrap();
            let direct_report = direct.run_until(epsilon, &mut ChaCha8Rng::seed_from_u64(77));

            let mut adapter =
                RoundBasedActivation::new(&g, values.clone(), config, epsilon).unwrap();
            let engine_report = AsyncEngine::new(g.len()).run(
                &mut adapter,
                StopCondition::at_epsilon(epsilon).with_max_ticks(200_000_000),
                &mut ChaCha8Rng::seed_from_u64(77),
            );

            assert_eq!(engine_report.converged(), direct_report.converged);
            assert_eq!(
                engine_report.transmissions.total(),
                direct_report.transmissions.total()
            );
            assert_eq!(
                adapter.inner().stats().top_rounds,
                direct_report.stats.top_rounds
            );
            assert_eq!(
                engine_report.final_error.to_bits(),
                direct_report.final_error.to_bits(),
                "final errors diverged for {config:?}"
            );
        }
    }

    #[test]
    fn activation_adapter_rejects_bad_epsilon() {
        let g = graph(128, 23);
        let values = vec![0.0; g.len()];
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(RoundBasedActivation::new(
                &g,
                values.clone(),
                RoundBasedConfig::idealized(g.len()),
                bad
            )
            .is_err());
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn run_until_rejects_bad_epsilon() {
        let g = graph(128, 15);
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let values = vec![0.0; g.len()];
        let mut gossip =
            RoundBasedAffineGossip::new(&g, values, RoundBasedConfig::idealized(g.len())).unwrap();
        let _ = gossip.run_until(0.0, &mut rng);
    }
}
