//! The paper's literal scheduling formulas (Section 4.1).
//!
//! The asynchronous protocol needs three cascades of parameters:
//!
//! * accuracy per level: `ε_0 = ε`, `ε_{r+1} = ε_r / (25·n^{7/2 + a})`;
//! * failure probability per level: `δ_0 = δ`, `δ_{r+1} = δ_r / n^{2 a r}`;
//! * latency per level: `time(n, ℓ−1, ε_{ℓ−1}, δ_{ℓ−1}) =
//!   ((log(n/ε_{ℓ−1}))·log(1/δ_{ℓ−1}))^{16}` and, going up,
//!   `time(n, r−1, ·) = time(n, r, ·)·n^a·((log(n_r/ε_r))·log(1/δ_r))^{16}`.
//!
//! These constants exist to make the union bounds of Section 5/6 go through —
//! they are wildly conservative (the exponent 16 alone makes them astronomical
//! for any real `n`), which is why the runnable state machine uses the
//! *practical* schedule derived in
//! [`state_machine::ScheduleParams::practical`](crate::affine::state_machine::ScheduleParams::practical).
//! This module keeps the literal formulas so the experiments can tabulate how
//! far the practical schedule deviates from them (and so a reader can check
//! our reading of the paper against the text).

use serde::{Deserialize, Serialize};

/// The paper's parameter cascade for a given network size, target accuracy,
/// failure probability and constant `a`.
///
/// # Example
///
/// ```
/// use geogossip_core::affine::PaperSchedule;
/// let sched = PaperSchedule::new(1024, 3, 1e-3, 1e-2, 1.0);
/// // Accuracy targets shrink (fast!) as we go down the hierarchy.
/// assert!(sched.epsilon_at(1) < sched.epsilon_at(0));
/// // Latencies shrink as we go down (deeper squares average faster).
/// assert!(sched.latency_at(1) < sched.latency_at(0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperSchedule {
    n: usize,
    levels: usize,
    a: f64,
    epsilons: Vec<f64>,
    deltas: Vec<f64>,
    latencies: Vec<f64>,
}

impl PaperSchedule {
    /// Builds the cascade for `n` sensors, a hierarchy of `levels` levels
    /// (`ℓ` in the paper), top-level accuracy `epsilon`, failure probability
    /// `delta` and the paper's constant `a`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `levels == 0`, or `epsilon`/`delta` are not in
    /// `(0, 1)`.
    pub fn new(n: usize, levels: usize, epsilon: f64, delta: f64, a: f64) -> Self {
        assert!(n > 0, "schedule needs at least one sensor");
        assert!(levels > 0, "schedule needs at least one level");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let n_f = n as f64;

        // ε_{r+1} = ε_r / (25 n^{7/2 + a}),   δ_{r+1} = δ_r / n^{2 a r}.
        let mut epsilons = vec![epsilon];
        let mut deltas = vec![delta];
        for r in 0..levels.saturating_sub(1) {
            let eps_next = epsilons[r] / (25.0 * n_f.powf(3.5 + a));
            let delta_next = deltas[r] / n_f.powf(2.0 * a * (r as f64).max(1.0));
            epsilons.push(eps_next);
            deltas.push(delta_next);
        }

        // Latency at the deepest level, then multiply going up.
        // time(n, ℓ−1) = ((log(n/ε_{ℓ−1}))·log(1/δ_{ℓ−1}))^{16}
        // time(n, r−1) = time(n, r)·n^a·((log(n_r/ε_r))·log(1/δ_r))^{16}
        let deepest = levels - 1;
        let mut latencies = vec![0.0; levels];
        latencies[deepest] =
            (((n_f / epsilons[deepest]).ln()) * (1.0 / deltas[deepest]).ln()).powi(16);
        for r in (0..deepest).rev() {
            let factor = n_f.powf(a)
                * (((n_f / epsilons[r + 1]).ln()) * (1.0 / deltas[r + 1]).ln()).powi(16);
            latencies[r] = latencies[r + 1] * factor;
        }

        PaperSchedule {
            n,
            levels,
            a,
            epsilons,
            deltas,
            latencies,
        }
    }

    /// Number of sensors the schedule was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of hierarchy levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The paper's constant `a`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Accuracy target `ε_r` for depth `r` (0 = whole square).
    ///
    /// # Panics
    ///
    /// Panics if `depth >= levels`.
    pub fn epsilon_at(&self, depth: usize) -> f64 {
        self.epsilons[depth]
    }

    /// Failure probability `δ_r` for depth `r`.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= levels`.
    pub fn delta_at(&self, depth: usize) -> f64 {
        self.deltas[depth]
    }

    /// Latency (expected number of own clock ticks a depth-`r` square stays
    /// active for its internal averaging), `time(n, r, ε_r, δ_r)`.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= levels`.
    pub fn latency_at(&self, depth: usize) -> f64 {
        self.latencies[depth]
    }

    /// The paper's long-range activation probability for a depth-`r` leader on
    /// each of its own clock ticks: `n^{-a}·time(n, r, ε_r, δ_r)^{-1}`
    /// (Section 4.2, step 1(b)).
    ///
    /// # Panics
    ///
    /// Panics if `depth >= levels`.
    pub fn far_probability_at(&self, depth: usize) -> f64 {
        (self.n as f64).powf(-self.a) / self.latencies[depth]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascade_shrinks_epsilon_and_delta() {
        let s = PaperSchedule::new(256, 3, 1e-2, 1e-2, 1.0);
        assert!(s.epsilon_at(1) < s.epsilon_at(0));
        assert!(s.epsilon_at(2) < s.epsilon_at(1));
        assert!(s.delta_at(2) < s.delta_at(0));
    }

    #[test]
    fn latency_grows_towards_the_root() {
        let s = PaperSchedule::new(256, 3, 1e-2, 1e-2, 1.0);
        assert!(s.latency_at(0) > s.latency_at(1));
        assert!(s.latency_at(1) > s.latency_at(2));
        assert!(s.latency_at(2) >= 1.0);
    }

    #[test]
    fn far_probability_is_below_inverse_latency() {
        // The paper's whole point: the long-range rate is lower than the
        // inverse latency by a factor n^a, so squares are inactive when their
        // leader goes long-range.
        let s = PaperSchedule::new(128, 2, 1e-2, 1e-2, 1.0);
        for depth in 0..2 {
            assert!(s.far_probability_at(depth) <= 1.0 / s.latency_at(depth));
            assert!(s.far_probability_at(depth) > 0.0);
        }
    }

    #[test]
    fn literal_constants_are_astronomical() {
        // Even for a modest network the paper's latency at the root exceeds
        // 10^40 ticks — the quantitative justification for the practical
        // schedule substitution documented in DESIGN.md.
        let s = PaperSchedule::new(1024, 3, 1e-3, 1e-2, 1.0);
        assert!(s.latency_at(0) > 1e40);
    }

    #[test]
    fn single_level_schedule_is_valid() {
        let s = PaperSchedule::new(64, 1, 0.1, 0.1, 0.5);
        assert_eq!(s.levels(), 1);
        assert!(s.latency_at(0) > 0.0);
        assert_eq!(s.epsilon_at(0), 0.1);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn rejects_bad_epsilon() {
        let _ = PaperSchedule::new(64, 2, 1.5, 0.1, 1.0);
    }

    #[test]
    fn accessors_expose_inputs() {
        let s = PaperSchedule::new(32, 2, 0.1, 0.05, 2.0);
        assert_eq!(s.n(), 32);
        assert_eq!(s.a(), 2.0);
        assert_eq!(s.delta_at(0), 0.05);
    }
}
