//! Initial measurement fields (absorbed from the bench crate's workload
//! module).
//!
//! [`Field`] extends the position-independent
//! [`InitialCondition`](crate::state::InitialCondition)s with spatially
//! correlated fields; every experiment and scenario describes its `x(0)`
//! through this type. The definition lives in [`geogossip_sim::field`] (the
//! scenario runner materialises fields below the protocol layer); this module
//! is the protocol-facing re-export.

pub use geogossip_sim::field::Field;
