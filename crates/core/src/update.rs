//! Pairwise update rules: convex averaging and affine exchanges.
//!
//! Traditional gossip uses the convex update `x_i, x_j ← (x_i + x_j)/2`. The
//! paper's central idea (Section 1.2) is to allow **affine** combinations
//! `x_i ← x_i + α(x_j − x_i)` with `α` far outside `[0, 1]` — as large as
//! `Ω(√n)` — because when `x_i` and `x_j` are *cell leaders* whose cells will
//! be locally re-averaged afterwards, the non-convex exchange moves the right
//! amount of "mass" between the cells in a single long-range contact.
//!
//! Both update rules conserve the sum `x_i + x_j`, which is the invariant
//! every averaging protocol must keep.

use serde::{Deserialize, Serialize};

/// The coefficient of an affine pairwise exchange.
///
/// The symmetric update applied to a pair `(i, j)` is
///
/// ```text
/// x_i ← x_i + α (x_j − x_i)
/// x_j ← x_j + α (x_i − x_j)      (using the ORIGINAL x_i)
/// ```
///
/// `α = 1/2` is the classical convex average. The paper's `Far(s)` subroutine
/// uses `α = (2/5)·E#(□)` where `E#(□)` is the expected population of the
/// exchanging cells — about `2√n/5` at the top level (Section 3, step 3–4).
///
/// # Example
///
/// ```
/// use geogossip_core::update::AffineCoefficient;
/// let convex = AffineCoefficient::convex();
/// assert_eq!(convex.value(), 0.5);
/// let paper = AffineCoefficient::paper_far(100.0);
/// assert!((paper.value() - 40.0).abs() < 1e-12);
/// assert!(!paper.is_convex());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AffineCoefficient(f64);

impl AffineCoefficient {
    /// Creates a coefficient from a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha.is_finite(), "affine coefficient must be finite");
        AffineCoefficient(alpha)
    }

    /// The classical convex-averaging coefficient `1/2`.
    pub fn convex() -> Self {
        AffineCoefficient(0.5)
    }

    /// The paper's long-range coefficient `(2/5)·E#(□)` for cells of expected
    /// population `expected_cell_population` (Section 4.2, `Far(s)` step 2).
    ///
    /// # Panics
    ///
    /// Panics if `expected_cell_population` is not finite or not positive.
    pub fn paper_far(expected_cell_population: f64) -> Self {
        assert!(
            expected_cell_population.is_finite() && expected_cell_population > 0.0,
            "expected cell population must be positive and finite"
        );
        AffineCoefficient(0.4 * expected_cell_population)
    }

    /// The raw coefficient value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether the coefficient describes a convex combination (`0 ≤ α ≤ 1`).
    pub fn is_convex(self) -> bool {
        (0.0..=1.0).contains(&self.0)
    }
}

/// Applies the convex averaging update to a pair of values, returning the new
/// `(x_i, x_j)` — both equal to the midpoint.
///
/// # Example
///
/// ```
/// use geogossip_core::update::convex_average;
/// assert_eq!(convex_average(1.0, 3.0), (2.0, 2.0));
/// ```
pub fn convex_average(xi: f64, xj: f64) -> (f64, f64) {
    let avg = (xi + xj) / 2.0;
    (avg, avg)
}

/// Applies the symmetric affine exchange with coefficient `alpha`, returning
/// the new `(x_i, x_j)`.
///
/// Both updates use the *original* values, exactly as in the paper's `Far`
/// subroutine and in the Lemma-1 dynamics, so the sum `x_i + x_j` is conserved
/// for every `α`.
///
/// # Example
///
/// ```
/// use geogossip_core::update::{affine_exchange, AffineCoefficient};
/// let (a, b) = affine_exchange(1.0, 0.0, AffineCoefficient::new(2.0));
/// // x_i jumps past x_j (non-convex), but the sum is conserved.
/// assert_eq!((a, b), (-1.0, 2.0));
/// assert_eq!(a + b, 1.0);
/// ```
pub fn affine_exchange(xi: f64, xj: f64, alpha: AffineCoefficient) -> (f64, f64) {
    let a = alpha.value();
    let new_i = xi + a * (xj - xi);
    let new_j = xj + a * (xi - xj);
    (new_i, new_j)
}

/// The cell-sum evolution induced by one leader-level affine exchange
/// (Section 3 of the paper).
///
/// If cell `i` currently has sum `z_i` over `count_i` sensors whose values are
/// (approximately) equal, and its leader performs
/// `x ← x + α(x_j − x_i)` against cell `j`'s leader, then after local
/// re-averaging the *cell sums* evolve as
///
/// ```text
/// z_i ← z_i + α (z_j / count_j − z_i / count_i)
/// z_j ← z_j + α (z_i / count_i − z_j / count_j)
/// ```
///
/// which for `α ≈ (2/5)·count` is the Lemma-1 dynamics with effective
/// coefficients in `(1/3, 1/2)`. The experiment on coefficient ablation (E8)
/// uses this helper directly.
pub fn cell_sum_exchange(
    zi: f64,
    count_i: f64,
    zj: f64,
    count_j: f64,
    alpha: AffineCoefficient,
) -> (f64, f64) {
    assert!(
        count_i > 0.0 && count_j > 0.0,
        "cell populations must be positive"
    );
    let a = alpha.value();
    let delta = a * (zj / count_j - zi / count_i);
    (zi + delta, zj - delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convex_average_is_midpoint() {
        let (a, b) = convex_average(0.0, 1.0);
        assert_eq!(a, 0.5);
        assert_eq!(b, 0.5);
    }

    #[test]
    fn affine_with_half_is_convex_average() {
        let (a, b) = affine_exchange(0.2, 0.8, AffineCoefficient::convex());
        let (c, d) = convex_average(0.2, 0.8);
        assert!((a - c).abs() < 1e-15 && (b - d).abs() < 1e-15);
    }

    #[test]
    fn affine_exchange_conserves_sum_for_extreme_coefficients() {
        for &alpha in &[-3.0, 0.0, 0.5, 1.0, 7.5, 40.0, 1234.5] {
            let (a, b) = affine_exchange(0.37, -2.13, AffineCoefficient::new(alpha));
            assert!(
                ((a + b) - (0.37 - 2.13)).abs() < 1e-12,
                "sum broken for alpha={alpha}"
            );
        }
    }

    #[test]
    fn affine_exchange_is_symmetric_in_roles() {
        let alpha = AffineCoefficient::new(3.0);
        let (a, b) = affine_exchange(1.0, 5.0, alpha);
        let (c, d) = affine_exchange(5.0, 1.0, alpha);
        assert_eq!((a, b), (d, c));
    }

    #[test]
    fn paper_far_coefficient_scale() {
        // With cells of expected population √n, the coefficient is 2√n/5.
        let n = 10_000.0_f64;
        let alpha = AffineCoefficient::paper_far(n.sqrt());
        assert!((alpha.value() - 2.0 * n.sqrt() / 5.0).abs() < 1e-9);
        assert!(!alpha.is_convex());
    }

    #[test]
    fn cell_sum_exchange_conserves_total_mass() {
        let (zi, zj) =
            cell_sum_exchange(10.0, 32.0, -4.0, 30.0, AffineCoefficient::paper_far(31.0));
        assert!(((zi + zj) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn cell_sum_exchange_with_paper_coefficient_contracts_towards_balance() {
        // Two cells of equal size with opposite sums: one exchange with the
        // paper's coefficient moves them most of the way towards each other
        // (effective mixing weight 2·(2/5) = 4/5 of the difference).
        let count = 50.0;
        let (zi, zj) =
            cell_sum_exchange(1.0, count, -1.0, count, AffineCoefficient::paper_far(count));
        assert!(zi.abs() < 1.0 && zj.abs() < 1.0);
        assert!((zi + zj).abs() < 1e-12);
    }

    #[test]
    fn is_convex_detects_range() {
        assert!(AffineCoefficient::new(0.0).is_convex());
        assert!(AffineCoefficient::new(1.0).is_convex());
        assert!(!AffineCoefficient::new(1.01).is_convex());
        assert!(!AffineCoefficient::new(-0.01).is_convex());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_coefficient_rejected() {
        let _ = AffineCoefficient::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn paper_far_rejects_zero_population() {
        let _ = AffineCoefficient::paper_far(0.0);
    }

    #[test]
    #[should_panic(expected = "populations must be positive")]
    fn cell_sum_exchange_rejects_empty_cells() {
        let _ = cell_sum_exchange(1.0, 0.0, 2.0, 3.0, AffineCoefficient::convex());
    }
}
